"""Search history: the record of every evaluation of an autotuning run.

The history is the central data structure of the reproduction: the paper's
figures are all computed from per-evaluation CSV files (timestamps, the
evaluated configuration, the measured objective), and transfer learning
consumes the history of a *previous* run (Algorithm 1's ``H_p``).

:class:`SearchHistory` therefore supports:

* appending :class:`Evaluation` records as the asynchronous search completes
  them,
* the incumbent trajectory (best objective / run time as a function of search
  time) that Fig. 3 plots,
* selection of the top-q% configurations used by the VAE transfer prior, and
* CSV round-tripping compatible with a "one row per evaluation" layout.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.objective import Objective
from repro.core.space import Configuration, SearchSpace

__all__ = ["Evaluation", "SearchHistory"]


@dataclass(frozen=True)
class Evaluation:
    """One completed evaluation.

    Attributes
    ----------
    configuration:
        The evaluated configuration.
    objective:
        The maximised objective value (NaN for failed evaluations).
    runtime:
        The measured workflow run time in seconds (NaN for failures).
    submitted:
        Search time at which the evaluation was submitted to a worker.
    completed:
        Search time at which the result became available.
    worker:
        Identifier of the worker that ran the evaluation.
    eval_id:
        Monotonically increasing identifier within the run.
    """

    configuration: Configuration
    objective: float
    runtime: float
    submitted: float
    completed: float
    worker: int = 0
    eval_id: int = 0

    @property
    def duration(self) -> float:
        """Wall-clock duration of the evaluation (search-time units)."""
        return self.completed - self.submitted

    @property
    def failed(self) -> bool:
        """True when the evaluation produced no valid objective."""
        return not math.isfinite(self.objective)


class SearchHistory:
    """An append-only record of evaluations plus derived views.

    Parameters
    ----------
    space:
        The search space the evaluations belong to (used for CSV round trips
        and transfer learning).
    objective:
        The objective transform (used to convert between objective and
        run-time space).
    """

    def __init__(self, space: SearchSpace, objective: Optional[Objective] = None):
        self.space = space
        self.objective = objective or Objective()
        self._evaluations: List[Evaluation] = []
        # Derived-array caches, invalidated on every append.  The search loop
        # and the analysis layer call objectives()/runtimes() once per
        # completion batch, so rebuilding them from scratch each time would
        # reintroduce the linear-per-iteration cost the columnar pipeline
        # removes elsewhere.
        self._objectives_cache: Optional[np.ndarray] = None
        self._runtimes_cache: Optional[np.ndarray] = None

    # ---------------------------------------------------------------- dunders
    def __len__(self) -> int:
        return len(self._evaluations)

    def __iter__(self) -> Iterator[Evaluation]:
        return iter(self._evaluations)

    def __getitem__(self, idx: int) -> Evaluation:
        return self._evaluations[idx]

    # --------------------------------------------------------------- mutation
    def append(self, evaluation: Evaluation) -> None:
        """Append one completed evaluation."""
        self._evaluations.append(evaluation)
        self._objectives_cache = None
        self._runtimes_cache = None

    def extend(self, evaluations: Iterable[Evaluation]) -> None:
        """Append several completed evaluations."""
        for ev in evaluations:
            self.append(ev)

    def record(
        self,
        configuration: Configuration,
        runtime: float,
        submitted: float,
        completed: float,
        worker: int = 0,
    ) -> Evaluation:
        """Create, append and return an :class:`Evaluation` from a run time."""
        evaluation = Evaluation(
            configuration=dict(configuration),
            objective=self.objective.from_runtime(runtime),
            runtime=float(runtime) if runtime is not None else float("nan"),
            submitted=float(submitted),
            completed=float(completed),
            worker=int(worker),
            eval_id=len(self._evaluations),
        )
        self.append(evaluation)
        return evaluation

    # ------------------------------------------------------------------ views
    @property
    def evaluations(self) -> Tuple[Evaluation, ...]:
        """All evaluations, in completion order of insertion."""
        return tuple(self._evaluations)

    def successful(self) -> List[Evaluation]:
        """Evaluations with a finite objective."""
        return [ev for ev in self._evaluations if not ev.failed]

    def num_failures(self) -> int:
        """Number of failed (NaN) evaluations."""
        return sum(1 for ev in self._evaluations if ev.failed)

    def configurations(self) -> List[Configuration]:
        """All evaluated configurations."""
        return [ev.configuration for ev in self._evaluations]

    def objectives(self) -> np.ndarray:
        """Objective values as an array (NaN for failures).

        The array is cached until the next append and returned read-only.
        """
        if self._objectives_cache is None:
            arr = np.asarray([ev.objective for ev in self._evaluations], dtype=float)
            arr.setflags(write=False)
            self._objectives_cache = arr
        return self._objectives_cache

    def runtimes(self) -> np.ndarray:
        """Measured run times as an array (NaN for failures).

        The array is cached until the next append and returned read-only.
        """
        if self._runtimes_cache is None:
            arr = np.asarray([ev.runtime for ev in self._evaluations], dtype=float)
            arr.setflags(write=False)
            self._runtimes_cache = arr
        return self._runtimes_cache

    def best(self) -> Optional[Evaluation]:
        """The evaluation with the highest objective (None if all failed)."""
        candidates = self.successful()
        if not candidates:
            return None
        return max(candidates, key=lambda ev: ev.objective)

    def best_runtime(self) -> float:
        """Run time of the best configuration found (NaN if none succeeded)."""
        best = self.best()
        return best.runtime if best is not None else float("nan")

    def incumbent_trajectory(self) -> List[Tuple[float, float]]:
        """Best run time as a function of search time.

        Returns a list of ``(completion_time, best_runtime_so_far)`` points,
        one per successful evaluation that improved the incumbent — the series
        plotted in Fig. 3.
        """
        points: List[Tuple[float, float]] = []
        best = float("inf")
        for ev in sorted(self._evaluations, key=lambda e: e.completed):
            if ev.failed:
                continue
            if ev.runtime < best:
                best = ev.runtime
                points.append((ev.completed, best))
        return points

    def best_runtime_at(self, time: float) -> float:
        """Best run time known at a given search time (inf if none yet)."""
        if not self._evaluations:
            return float("inf")
        runtimes = self.runtimes()
        completed = np.asarray([ev.completed for ev in self._evaluations], dtype=float)
        known = np.isfinite(runtimes) & (completed <= time)
        if not np.any(known):
            return float("inf")
        return float(np.min(runtimes[known]))

    # ------------------------------------------------------ transfer learning
    def top_quantile(self, q: float = 0.10) -> List[Configuration]:
        """Configurations in the top ``q`` fraction by objective (Algorithm 1, l.1).

        Parameters
        ----------
        q:
            Fraction of successful evaluations to keep, in (0, 1].
        """
        if not (0.0 < q <= 1.0):
            raise ValueError("q must be in (0, 1]")
        ok = self.successful()
        if not ok:
            return []
        objectives = np.asarray([ev.objective for ev in ok], dtype=float)
        threshold = np.quantile(objectives, 1.0 - q)
        selected = [ev.configuration for ev in ok if ev.objective >= threshold]
        # Always return at least one configuration (the best one).
        if not selected:
            selected = [max(ok, key=lambda ev: ev.objective).configuration]
        return selected

    # -------------------------------------------------------------------- csv
    CSV_META_COLUMNS = ("eval_id", "worker", "submitted", "completed", "runtime", "objective")

    def to_csv(self, path: Union[str, Path, None] = None) -> str:
        """Serialise the history to CSV (one row per evaluation).

        Returns the CSV text; when ``path`` is given the text is also written
        to that file.
        """
        buffer = io.StringIO()
        fieldnames = list(self.CSV_META_COLUMNS) + list(self.space.parameter_names)
        writer = csv.DictWriter(buffer, fieldnames=fieldnames)
        writer.writeheader()
        for ev in self._evaluations:
            row = {
                "eval_id": ev.eval_id,
                "worker": ev.worker,
                "submitted": f"{ev.submitted:.6f}",
                "completed": f"{ev.completed:.6f}",
                "runtime": f"{ev.runtime:.6f}" if math.isfinite(ev.runtime) else "nan",
                "objective": f"{ev.objective:.6f}" if math.isfinite(ev.objective) else "nan",
            }
            for name in self.space.parameter_names:
                row[name] = ev.configuration.get(name, "")
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_csv(
        cls,
        source: Union[str, Path],
        space: SearchSpace,
        objective: Optional[Objective] = None,
    ) -> "SearchHistory":
        """Load a history from CSV text or a CSV file path."""
        text = source
        if isinstance(source, Path) or (
            isinstance(source, str) and "\n" not in source and Path(source).exists()
        ):
            text = Path(source).read_text()
        history = cls(space, objective=objective)
        reader = csv.DictReader(io.StringIO(str(text)))
        for row in reader:
            config = {}
            for param in space:
                raw = row[param.name]
                config[param.name] = _parse_value(raw)
            history.append(
                Evaluation(
                    configuration=config,
                    objective=float(row["objective"]),
                    runtime=float(row["runtime"]),
                    submitted=float(row["submitted"]),
                    completed=float(row["completed"]),
                    worker=int(row["worker"]),
                    eval_id=int(row["eval_id"]),
                )
            )
        return history


def _parse_value(raw: str):
    """Parse a CSV cell back into bool / int / float / str."""
    text = raw.strip()
    if text in ("True", "False"):
        return text == "True"
    try:
        as_int = int(text)
        return as_int
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text
