"""Search history: the record of every evaluation of an autotuning run.

The history is the central data structure of the reproduction: the paper's
figures are all computed from per-evaluation CSV files (timestamps, the
evaluated configuration, the measured objective), and transfer learning
consumes the history of a *previous* run (Algorithm 1's ``H_p``).

Storage is **columnar** (structure of arrays): the per-evaluation metadata
(objective, runtime, submitted, completed, worker, eval_id) lives in
append-only NumPy buffers and every parameter of the owning
:class:`~repro.core.space.SearchSpace` has its own value column.  Row-major
:class:`Evaluation` views are materialised lazily, so the public API is
unchanged — ``history[i]``, iteration, :attr:`SearchHistory.evaluations`,
:meth:`SearchHistory.successful` and the CSV round trip behave exactly as they
did when the history stored a list of dataclasses — while every derived view
(:meth:`SearchHistory.objectives`, :meth:`SearchHistory.incumbent_trajectory`,
:meth:`SearchHistory.top_quantile`, :meth:`SearchHistory.best_runtime_at`) is
a vectorised column operation.  At paper scale (1500+ evaluations per run ×
repetitions × setups) this keeps the analysis layer and the transfer-learning
``H_p`` ingestion linear-algebra-fast instead of Python-loop-slow.

:class:`SearchHistory` supports:

Histories normally own their buffers, but :meth:`SearchHistory.from_columns`
builds a **read-only zero-copy view** over externally owned column arrays —
the campaign journal's memory-mapped files (:class:`repro.core.journal.JournalReader`).
Such a view serves every derived metric straight off the mapped pages;
parameter columns decode lazily on first configuration access, and
:meth:`SearchHistory.copy` thaws the view into an ordinary mutable history.

:class:`SearchHistory` supports:

* appending :class:`Evaluation` records as the asynchronous search completes
  them,
* the incumbent trajectory (best objective / run time as a function of search
  time) that Fig. 3 plots,
* selection of the top-q% configurations used by the VAE transfer prior (both
  as dicts and as a columnar batch), and
* CSV round-tripping compatible with a "one row per evaluation" layout, with
  cell values parsed back against each parameter's declared type.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.core.arrays import grow_buffer as _grow
from repro.core.ioutil import atomic_write_text
from repro.core.objective import Objective
from repro.core.space import (
    ColumnBatch,
    Configuration,
    IntegerParameter,
    Parameter,
    RealParameter,
    SearchSpace,
)

__all__ = ["Evaluation", "SearchHistory"]


#: Sentinel stored in a parameter column when an appended evaluation's
#: configuration does not define that parameter (only possible with
#: hand-constructed :class:`Evaluation` objects; the search loop always
#: records complete configurations).
_MISSING = object()


@dataclass(frozen=True)
class Evaluation:
    """One completed evaluation.

    Attributes
    ----------
    configuration:
        The evaluated configuration.
    objective:
        The maximised objective value (NaN for failed evaluations).
    runtime:
        The measured workflow run time in seconds (NaN for failures).
    submitted:
        Search time at which the evaluation was submitted to a worker.
    completed:
        Search time at which the result became available.
    worker:
        Identifier of the worker that ran the evaluation.
    eval_id:
        Monotonically increasing identifier within the run.
    """

    configuration: Configuration
    objective: float
    runtime: float
    submitted: float
    completed: float
    worker: int = 0
    eval_id: int = 0

    @property
    def duration(self) -> float:
        """Wall-clock duration of the evaluation (search-time units)."""
        return self.completed - self.submitted

    @property
    def failed(self) -> bool:
        """True when the evaluation produced no valid objective."""
        return not math.isfinite(self.objective)


class SearchHistory:
    """An append-only columnar record of evaluations plus derived views.

    Parameters
    ----------
    space:
        The search space the evaluations belong to (defines the parameter
        columns, the CSV layout and the transfer-learning interface).
    objective:
        The objective transform (used to convert between objective and
        run-time space).
    """

    def __init__(self, space: SearchSpace, objective: Optional[Objective] = None):
        self.space = space
        self.objective = objective or Objective()
        self._n = 0
        self._capacity = 0
        # Read-only views (journal-backed) reject mutation; see from_columns.
        self._read_only = False
        # Deferred parameter-column loaders (read-only views only): column
        # name -> () -> object-dtype array, invoked on first _param_bufs use.
        self._param_loaders: Dict[str, Any] = {}
        # Optional per-row loaders (name -> (row) -> value) for read-only
        # views: materialising a single configuration (best()) decodes one
        # value per parameter instead of whole columns.
        self._param_element_loaders: Dict[str, Any] = {}
        # Metadata columns (append-only, capacity-doubling).
        self._objective_buf = np.empty(0, dtype=float)
        self._runtime_buf = np.empty(0, dtype=float)
        self._submitted_buf = np.empty(0, dtype=float)
        self._completed_buf = np.empty(0, dtype=float)
        self._worker_buf = np.empty(0, dtype=np.int64)
        self._eval_id_buf = np.empty(0, dtype=np.int64)
        # One value column per parameter.  Object dtype keeps the exact Python
        # values appended (ints stay ints, bools stay bools, category strings
        # stay strings), so lazily materialised Evaluation views and the CSV
        # text are bit-compatible with the former row-major storage.
        self._param_bufs = {
            name: np.empty(0, dtype=object) for name in space.parameter_names
        }
        # Rare escape hatch for hand-built evaluations whose configuration has
        # extra keys (row index -> extra mapping) or missing parameters.
        self._extras: Dict[int, Dict[str, Any]] = {}
        self._incomplete_rows = False
        # Derived-array caches, invalidated on every append.  The search loop
        # and the analysis layer call objectives()/runtimes() once per
        # completion batch; the cached copies are detached from the buffers so
        # arrays handed out earlier never change under the caller.
        self._objectives_cache: Optional[np.ndarray] = None
        self._runtimes_cache: Optional[np.ndarray] = None
        self._completed_cache: Optional[np.ndarray] = None
        self._submitted_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------- parameter columns
    @property
    def _param_bufs(self) -> Dict[str, np.ndarray]:
        """The object-dtype parameter columns, decoding lazily when deferred.

        Ordinary histories store the columns directly; a journal-backed
        read-only view (:meth:`from_columns`) defers them behind loaders so
        metric sweeps that never touch configurations never decode them.
        """
        store = self._param_store
        if store is None:
            store = self._param_store = {
                name: loader() for name, loader in self._param_loaders.items()
            }
        return store

    @_param_bufs.setter
    def _param_bufs(self, value: Dict[str, np.ndarray]) -> None:
        self._param_store = value

    # ------------------------------------------------------ zero-copy views
    @classmethod
    def from_columns(
        cls,
        space: SearchSpace,
        meta_columns: Dict[str, np.ndarray],
        param_loaders: Dict[str, Any],
        objective: Optional[Objective] = None,
        param_element_loaders: Optional[Dict[str, Any]] = None,
    ) -> "SearchHistory":
        """A read-only history over externally owned column arrays (zero-copy).

        ``meta_columns`` supplies the six metadata columns (``objective``,
        ``runtime``, ``submitted``, ``completed``, ``worker``, ``eval_id``)
        as equal-length arrays — typically ``np.memmap`` views of a campaign
        journal — which become the history's buffers *without copying*.
        ``param_loaders`` maps each parameter name to a zero-argument
        callable returning that parameter's object-dtype value column; the
        loaders run lazily, on the first access that needs configurations
        (``best()``, ``top_quantile``, CSV export), and never for the purely
        columnar metrics.  ``param_element_loaders`` optionally maps each
        parameter name to a ``(row) -> value`` callable; while the full
        columns are still deferred, single-row materialisation (``best()``)
        goes through these instead of forcing every column to decode.

        The view rejects :meth:`append`; :meth:`copy` /:meth:`truncated`
        return ordinary mutable histories (the thaw escape hatch).
        """
        n = int(np.asarray(meta_columns["objective"]).shape[0])
        for name, column in meta_columns.items():
            if column.shape[0] != n:
                raise ValueError(
                    f"metadata column {name!r} has {column.shape[0]} rows, "
                    f"expected {n}"
                )
        missing = [name for name in space.parameter_names if name not in param_loaders]
        if missing:
            raise ValueError(f"param_loaders missing columns for {missing}")
        history = cls(space, objective=objective)
        history._n = n
        history._capacity = n
        history._objective_buf = meta_columns["objective"]
        history._runtime_buf = meta_columns["runtime"]
        history._submitted_buf = meta_columns["submitted"]
        history._completed_buf = meta_columns["completed"]
        history._worker_buf = meta_columns["worker"]
        history._eval_id_buf = meta_columns["eval_id"]
        history._param_store = None
        history._param_loaders = dict(param_loaders)
        history._param_element_loaders = dict(param_element_loaders or {})
        history._read_only = True
        return history

    @property
    def read_only(self) -> bool:
        """Whether this history is an immutable zero-copy view (no appends)."""
        return self._read_only

    # ---------------------------------------------------------------- dunders
    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Evaluation]:
        for i in range(self._n):
            yield self._materialize(i)

    def __getitem__(self, idx: Union[int, slice]) -> Union[Evaluation, List[Evaluation]]:
        n = self._n
        if isinstance(idx, slice):
            return [self._materialize(i) for i in range(*idx.indices(n))]
        idx = int(idx)
        if idx < 0:
            idx += n
        if not (0 <= idx < n):
            raise IndexError("evaluation index out of range")
        return self._materialize(idx)

    # --------------------------------------------------------------- mutation
    def _ensure_row_capacity(self, needed: int) -> None:
        """Grow every column buffer at once (a single capacity governs all)."""
        if needed <= self._capacity:
            return
        self._objective_buf = _grow(self._objective_buf, needed)
        self._runtime_buf = _grow(self._runtime_buf, needed)
        self._submitted_buf = _grow(self._submitted_buf, needed)
        self._completed_buf = _grow(self._completed_buf, needed)
        self._worker_buf = _grow(self._worker_buf, needed)
        self._eval_id_buf = _grow(self._eval_id_buf, needed)
        for name in self._param_bufs:
            self._param_bufs[name] = _grow(self._param_bufs[name], needed)
        self._capacity = self._objective_buf.shape[0]

    def append(self, evaluation: Evaluation) -> None:
        """Append one completed evaluation (decomposed into the columns)."""
        if self._read_only:
            raise TypeError(
                "this SearchHistory is a read-only journal view; "
                "copy() it to obtain a mutable history"
            )
        i = self._n
        self._ensure_row_capacity(i + 1)
        self._objective_buf[i] = float(evaluation.objective)
        self._runtime_buf[i] = float(evaluation.runtime)
        self._submitted_buf[i] = float(evaluation.submitted)
        self._completed_buf[i] = float(evaluation.completed)
        self._worker_buf[i] = int(evaluation.worker)
        self._eval_id_buf[i] = int(evaluation.eval_id)

        config = evaluation.configuration
        matched = 0
        for name, buf in self._param_bufs.items():
            if name in config:
                buf[i] = config[name]
                matched += 1
            else:
                buf[i] = _MISSING
                # Only genuinely missing parameters force the columnar
                # top-quantile batch onto the per-dict fallback; extra keys
                # leave every parameter column complete.
                self._incomplete_rows = True
        if matched != len(config):
            self._extras[i] = {
                k: v for k, v in config.items() if k not in self._param_bufs
            }

        self._n = i + 1
        self._objectives_cache = None
        self._runtimes_cache = None
        self._completed_cache = None
        self._submitted_cache = None

    def extend(self, evaluations: Iterable[Evaluation]) -> None:
        """Append several completed evaluations."""
        for ev in evaluations:
            self.append(ev)

    def record(
        self,
        configuration: Configuration,
        runtime: float,
        submitted: float,
        completed: float,
        worker: int = 0,
    ) -> Evaluation:
        """Create, append and return an :class:`Evaluation` from a run time."""
        evaluation = Evaluation(
            configuration=dict(configuration),
            objective=self.objective.from_runtime(runtime),
            runtime=float(runtime) if runtime is not None else float("nan"),
            submitted=float(submitted),
            completed=float(completed),
            worker=int(worker),
            eval_id=self._n,
        )
        self.append(evaluation)
        return evaluation

    # -------------------------------------------------------- materialisation
    def _config_at(self, i: int) -> Configuration:
        """Materialise row ``i``'s configuration as a plain dict."""
        if self._param_store is None and self._param_element_loaders:
            # Read-only view with its columns still deferred: decode just
            # this row (views never carry _extras or missing parameters).
            return {
                name: loader(i)
                for name, loader in self._param_element_loaders.items()
            }
        config: Configuration = {}
        for name, buf in self._param_bufs.items():
            value = buf[i]
            if value is _MISSING:
                continue
            config[name] = value
        if self._extras:
            extras = self._extras.get(i)
            if extras:
                config.update(extras)
        return config

    def _materialize(self, i: int) -> Evaluation:
        """Materialise row ``i`` as an :class:`Evaluation` view."""
        return Evaluation(
            configuration=self._config_at(i),
            objective=float(self._objective_buf[i]),
            runtime=float(self._runtime_buf[i]),
            submitted=float(self._submitted_buf[i]),
            completed=float(self._completed_buf[i]),
            worker=int(self._worker_buf[i]),
            eval_id=int(self._eval_id_buf[i]),
        )

    # ------------------------------------------------------------------ views
    @property
    def evaluations(self) -> Tuple[Evaluation, ...]:
        """All evaluations, in completion order of insertion."""
        return tuple(self._materialize(i) for i in range(self._n))

    def successful(self) -> List[Evaluation]:
        """Evaluations with a finite objective."""
        finite = np.isfinite(self._objective_buf[: self._n])
        return [self._materialize(int(i)) for i in np.flatnonzero(finite)]

    def num_failures(self) -> int:
        """Number of failed (NaN) evaluations."""
        return int(np.count_nonzero(~np.isfinite(self._objective_buf[: self._n])))

    def configurations(self) -> List[Configuration]:
        """All evaluated configurations."""
        return [self._config_at(i) for i in range(self._n)]

    def _meta_column(self, cache_name: str, buf: np.ndarray) -> np.ndarray:
        cached = getattr(self, cache_name)
        if cached is None:
            # Read-only views never append, so handing out the underlying
            # (memory-mapped) column directly is safe — that zero-copy slice
            # is the whole point of the journal-backed analysis path.
            cached = buf[: self._n] if self._read_only else buf[: self._n].copy()
            cached.setflags(write=False)
            setattr(self, cache_name, cached)
        return cached

    def objectives(self) -> np.ndarray:
        """Objective values as an array (NaN for failures).

        The array is cached until the next append and returned read-only.
        """
        return self._meta_column("_objectives_cache", self._objective_buf)

    def runtimes(self) -> np.ndarray:
        """Measured run times as an array (NaN for failures).

        The array is cached until the next append and returned read-only.
        """
        return self._meta_column("_runtimes_cache", self._runtime_buf)

    def submitted_times(self) -> np.ndarray:
        """Submission times as an array (cached, read-only)."""
        return self._meta_column("_submitted_cache", self._submitted_buf)

    def completed_times(self) -> np.ndarray:
        """Completion times as an array (cached, read-only)."""
        return self._meta_column("_completed_cache", self._completed_buf)

    def workers(self) -> np.ndarray:
        """Worker identifiers as an array."""
        return self._worker_buf[: self._n].copy()

    def eval_ids(self) -> np.ndarray:
        """Evaluation identifiers as an array."""
        return self._eval_id_buf[: self._n].copy()

    def parameter_column(self, name: str) -> np.ndarray:
        """The raw value column of parameter ``name`` (a copy, object dtype)."""
        if name not in self._param_bufs:
            raise KeyError(f"unknown parameter {name!r}")
        return self._param_bufs[name][: self._n].copy()

    @property
    def has_incomplete_rows(self) -> bool:
        """Whether any appended evaluation lacked one of the space's parameters.

        Complete histories (everything the search loop or ``from_csv``
        produces) keep this False; consumers like the transfer-learning
        selection use it to decide between the columnar fast path and a
        row-tolerant fallback.
        """
        return self._incomplete_rows

    def best(self) -> Optional[Evaluation]:
        """The evaluation with the highest objective (None if all failed)."""
        obj = self._objective_buf[: self._n]
        finite = np.flatnonzero(np.isfinite(obj))
        if finite.size == 0:
            return None
        # argmax returns the first maximum, matching max() over insertion order.
        return self._materialize(int(finite[np.argmax(obj[finite])]))

    def best_runtime(self) -> float:
        """Run time of the best configuration found (NaN if none succeeded).

        Computed straight off the objective/runtime columns — unlike
        :meth:`best` no configuration is materialised, so metric sweeps over
        journal-backed views never trigger parameter decoding.
        """
        obj = self._objective_buf[: self._n]
        finite = np.flatnonzero(np.isfinite(obj))
        if finite.size == 0:
            return float("nan")
        return float(self._runtime_buf[: self._n][finite[np.argmax(obj[finite])]])

    def _trajectory_arrays(self, require_objective: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Incumbent (completion_time, best_runtime) points as arrays.

        ``require_objective`` selects which evaluations count: the incumbent
        trajectory skips *failed* evaluations (non-finite objective, even when
        a finite runtime was recorded — e.g. ``runtime=0``), whereas
        :meth:`best_runtime_at` historically considered every finite runtime.
        """
        n = self._n
        if n == 0:
            return np.empty(0), np.empty(0)
        completed = self._completed_buf[:n]
        runtimes = self._runtime_buf[:n]
        # Stable sort matches sorted(..., key=completed) on ties.
        order = np.argsort(completed, kind="stable")
        rt = runtimes[order]
        ct = completed[order]
        ok = np.isfinite(rt)
        if require_objective:
            ok &= np.isfinite(self._objective_buf[:n][order])
        rt, ct = rt[ok], ct[ok]
        if rt.size == 0:
            return np.empty(0), np.empty(0)
        running = np.minimum.accumulate(rt)
        keep = np.empty(rt.size, dtype=bool)
        keep[0] = True
        keep[1:] = running[1:] < running[:-1]
        return ct[keep], running[keep]

    def incumbent_trajectory(self) -> List[Tuple[float, float]]:
        """Best run time as a function of search time.

        Returns a list of ``(completion_time, best_runtime_so_far)`` points,
        one per successful evaluation that improved the incumbent — the series
        plotted in Fig. 3.
        """
        times, values = self._trajectory_arrays(require_objective=True)
        return list(zip(times.tolist(), values.tolist()))

    def incumbent_at(self, times: Union[float, np.ndarray]) -> np.ndarray:
        """Best run time known at each of ``times`` (vectorised).

        Entries before the first finite runtime are ``inf``, matching
        :meth:`best_runtime_at` (which considers every finite runtime, failed
        or not); a whole time grid is resolved with one ``searchsorted``
        instead of one linear scan per grid point.
        """
        grid = np.atleast_1d(np.asarray(times, dtype=float))
        t, v = self._trajectory_arrays(require_objective=False)
        if t.size == 0:
            return np.full(grid.shape, float("inf"))
        pos = np.searchsorted(t, grid, side="right") - 1
        return np.where(pos >= 0, v[np.clip(pos, 0, None)], float("inf"))

    def best_runtime_at(self, time: float) -> float:
        """Best run time known at a given search time (inf if none yet)."""
        if self._n == 0:
            return float("inf")
        return float(self.incumbent_at(float(time))[0])

    # ------------------------------------------------------ transfer learning
    def _top_quantile_indices(self, q: float) -> np.ndarray:
        """Row indices of the top-``q`` fraction by objective (insertion order)."""
        if not (0.0 < q <= 1.0):
            raise ValueError("q must be in (0, 1]")
        obj = self._objective_buf[: self._n]
        finite = np.isfinite(obj)
        if not finite.any():
            return np.empty(0, dtype=np.intp)
        threshold = np.quantile(obj[finite], 1.0 - q)
        selected = np.flatnonzero(finite & (obj >= threshold))
        if selected.size == 0:
            # Always return at least one configuration (the best one).
            finite_idx = np.flatnonzero(finite)
            selected = finite_idx[[int(np.argmax(obj[finite_idx]))]]
        return selected

    def top_quantile(self, q: float = 0.10) -> List[Configuration]:
        """Configurations in the top ``q`` fraction by objective (Algorithm 1, l.1).

        Parameters
        ----------
        q:
            Fraction of successful evaluations to keep, in (0, 1].
        """
        return [self._config_at(int(i)) for i in self._top_quantile_indices(q)]

    def top_quantile_columns(self, q: float = 0.10) -> ColumnBatch:
        """The top-``q`` configurations as a columnar batch (Algorithm 1, l.1).

        This is the hot-path variant of :meth:`top_quantile` used by the
        transfer-learning ``H_p`` ingestion: the selection happens on the
        objective column and the parameter columns are fancy-indexed, without
        materialising one dict per historical evaluation.  Falls back to the
        dict path when the history contains incomplete rows, skipping rows
        that do not define every parameter of the space.
        """
        return self._columns_at(self._top_quantile_indices(q))

    def top_k_columns(self, k: int) -> ColumnBatch:
        """The ``k`` best successful configurations as a columnar batch.

        Selection happens on the objective column (descending, ties broken by
        insertion order); fewer than ``k`` successes return them all.  This
        is the fixed-size sibling of :meth:`top_quantile_columns` used by the
        periodic prior-refresh scenario: a fixed ``k`` keeps the VAE training
        matrices of a whole campaign fleet the same shape, so their refits
        can be fused into one :class:`~repro.core.vae.tvae.VAEFleet` pass.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        obj = self._objective_buf[: self._n]
        finite = np.flatnonzero(np.isfinite(obj))
        if finite.size == 0:
            return self._columns_at(np.empty(0, dtype=np.intp))
        # Descending stable sort: negating keeps equal objectives in
        # insertion order, matching a sequential "best so far" scan.
        order = np.argsort(-obj[finite], kind="stable")
        return self._columns_at(finite[order[:k]])

    def _columns_at(self, idx: np.ndarray) -> ColumnBatch:
        """Fancy-index the parameter columns at ``idx`` (row-tolerant)."""
        if self._incomplete_rows:
            names = self.space.parameter_names
            complete = [
                config
                for config in (self._config_at(int(i)) for i in idx)
                if all(name in config for name in names)
            ]
            return ColumnBatch.from_configurations(self.space, complete)
        return ColumnBatch(
            self.space,
            {name: buf[:self._n][idx] for name, buf in self._param_bufs.items()},
        )

    # ------------------------------------------------------------------- copy
    def copy(self) -> "SearchHistory":
        """An independent snapshot of this history (buffers copied).

        Appending to either history afterwards leaves the other untouched.
        Used by the analysis layer's parsed-CSV cache to hand every caller
        its own history without re-parsing the file.
        """
        return self.truncated(self._n)

    def truncated(self, n: int) -> "SearchHistory":
        """An independent copy holding only the first ``n`` evaluations.

        The campaign journal replays prior refreshes against the exact
        history prefix each refresh originally saw; a truncated copy is that
        prefix without mutating the live history.
        """
        if not 0 <= n <= self._n:
            raise ValueError(f"cannot truncate {self._n} rows to {n}")
        clone = SearchHistory(self.space, objective=self.objective)
        clone._n = n
        clone._capacity = n
        clone._objective_buf = self._objective_buf[:n].copy()
        clone._runtime_buf = self._runtime_buf[:n].copy()
        clone._submitted_buf = self._submitted_buf[:n].copy()
        clone._completed_buf = self._completed_buf[:n].copy()
        clone._worker_buf = self._worker_buf[:n].copy()
        clone._eval_id_buf = self._eval_id_buf[:n].copy()
        clone._param_bufs = {name: buf[:n].copy() for name, buf in self._param_bufs.items()}
        clone._extras = {
            i: dict(extras) for i, extras in self._extras.items() if i < n
        }
        clone._incomplete_rows = self._incomplete_rows
        return clone

    def column_block(self, start: int, stop: int):
        """Raw column views of rows ``[start, stop)`` — the journal's window.

        Returns ``(meta, params)``: the metadata columns keyed by their CSV
        names and the parameter value columns (object dtype) keyed by
        parameter name.  The arrays are *views* into the live buffers —
        consume them before the next append (a capacity-doubling growth would
        reallocate underneath them).
        """
        stop = min(int(stop), self._n)
        start = max(0, int(start))
        meta = {
            "objective": self._objective_buf[start:stop],
            "runtime": self._runtime_buf[start:stop],
            "submitted": self._submitted_buf[start:stop],
            "completed": self._completed_buf[start:stop],
            "worker": self._worker_buf[start:stop],
            "eval_id": self._eval_id_buf[start:stop],
        }
        params = {
            name: buf[start:stop] for name, buf in self._param_bufs.items()
        }
        return meta, params

    # -------------------------------------------------------------------- csv
    CSV_META_COLUMNS = ("eval_id", "worker", "submitted", "completed", "runtime", "objective")

    def to_csv(self, path: Union[str, Path, None] = None) -> str:
        """Serialise the history to CSV (one row per evaluation).

        Returns the CSV text; when ``path`` is given the text is also written
        to that file.
        """
        buffer = io.StringIO()
        names = list(self.space.parameter_names)
        fieldnames = list(self.CSV_META_COLUMNS) + names
        writer = csv.writer(buffer)
        writer.writerow(fieldnames)
        n = self._n
        # Column-wise formatting: each metadata column is formatted once, then
        # rows are emitted by zipping the formatted columns together.
        eval_ids = self._eval_id_buf[:n].tolist()
        workers = self._worker_buf[:n].tolist()
        submitted = [f"{t:.6f}" for t in self._submitted_buf[:n]]
        completed = [f"{t:.6f}" for t in self._completed_buf[:n]]
        runtimes = [
            f"{t:.6f}" if math.isfinite(t) else "nan" for t in self._runtime_buf[:n]
        ]
        objectives = [
            f"{t:.6f}" if math.isfinite(t) else "nan" for t in self._objective_buf[:n]
        ]
        value_columns = [
            ["" if v is _MISSING else v for v in self._param_bufs[name][:n]]
            for name in names
        ]
        for row in zip(
            eval_ids, workers, submitted, completed, runtimes, objectives, *value_columns
        ):
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            # Crash-safe write: a process killed mid-write must not leave a
            # torn CSV for the mtime/size-keyed parsed-history cache to trust.
            atomic_write_text(path, text)
        return text

    @classmethod
    def from_csv(
        cls,
        source: Union[str, Path],
        space: SearchSpace,
        objective: Optional[Objective] = None,
    ) -> "SearchHistory":
        """Load a history from CSV text or a CSV file path.

        Parameter cells are parsed against the owning parameter's declared
        type (see :func:`_parse_typed`), so an integer parameter's ``"1e3"``
        loads as ``1000`` and a *string* category ``"True"`` stays a string
        instead of being guessed into a bool.
        """
        text = source
        if isinstance(source, Path) or (
            isinstance(source, str) and "\n" not in source and Path(source).exists()
        ):
            text = Path(source).read_text()
        history = cls(space, objective=objective)
        reader = csv.DictReader(io.StringIO(str(text)))
        for row in reader:
            config = {}
            for param in space:
                raw = row[param.name]
                config[param.name] = _parse_typed(raw, param)
            history.append(
                Evaluation(
                    configuration=config,
                    objective=float(row["objective"]),
                    runtime=float(row["runtime"]),
                    submitted=float(row["submitted"]),
                    completed=float(row["completed"]),
                    worker=int(row["worker"]),
                    eval_id=int(row["eval_id"]),
                )
            )
        return history


def _parse_typed(raw: str, param: Parameter):
    """Parse a CSV cell against the declared type of its parameter.

    * real parameters parse as ``float``;
    * integer parameters parse as ``int`` (scientific notation like ``"1e3"``
      is accepted and rounded);
    * categorical/ordinal parameters are matched against the string form of
      their domain values, so a string category ``"True"`` is returned as the
      string while a boolean category parses back to ``True``.

    Cells that cannot be interpreted for the declared type fall back to the
    legacy value-guessing parser (:func:`_parse_value`), which keeps CSVs
    written by other tools loadable.
    """
    text = raw.strip()
    if isinstance(param, RealParameter):
        try:
            return float(text)
        except ValueError:
            return _parse_value(raw)
    if isinstance(param, IntegerParameter):
        try:
            return int(text)
        except ValueError:
            try:
                return int(round(float(text)))
            except (ValueError, OverflowError):
                return _parse_value(raw)
    domain = getattr(param, "_domain", None)
    if domain is not None:
        lookup = getattr(param, "_csv_lookup_cache", None)
        if lookup is None:
            lookup = {}
            for value in domain:
                lookup.setdefault(str(value), value)
            param._csv_lookup_cache = lookup
        if text in lookup:
            return lookup[text]
    return _parse_value(raw)


def _parse_value(raw: str):
    """Parse a CSV cell back into bool / int / float / str (legacy fallback).

    Kept for cells that do not match their parameter's declared domain (e.g.
    CSVs produced outside this library); prefer :func:`_parse_typed`, which
    never turns a string-typed ``"True"`` into a bool.
    """
    text = raw.strip()
    if text in ("True", "False"):
        return text == "True"
    try:
        as_int = int(text)
        return as_int
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text
