"""Virtual-clock asynchronous evaluator pool (manager/worker architecture).

The paper runs each search for one hour on 128 Theta nodes: every node is a
*worker* that executes one HEP workflow instance at a time, and the manager
(DeepHyper) asynchronously collects results and submits new configurations.

The reproduction replaces the physical workers with a virtual-clock pool: a
worker that receives a configuration at search time ``t`` produces its result
at ``t + duration``, where ``duration`` is the simulated run time of the
workflow instance (or the kill limit for configurations that time out).  This
preserves the property the paper's asynchronous method exploits — *fast
configurations come back sooner and update the model more often* — while
letting an entire one-hour 128-worker campaign execute in seconds of real
time.

The evaluator also tracks per-worker busy intervals, from which the worker
utilisation metric of Fig. 4 (d)/(f) is computed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.space import Configuration

__all__ = ["PendingEvaluation", "CompletedEvaluation", "WorkerState", "AsyncVirtualEvaluator"]

#: Default duration charged for evaluations that fail/time out (the paper
#: kills a workflow instance after 600 s = 2 × 300 s steps).
DEFAULT_FAILURE_DURATION = 600.0


def resolve_duration(
    config: Configuration,
    runtime: float,
    duration_function: Optional[Callable[[Configuration, float], float]],
    failure_duration: float,
) -> float:
    """Virtual time an evaluation occupies its worker.

    Shared by every evaluation backend so the failure semantics cannot
    drift between them: the measured runtime for finite positive values,
    ``failure_duration`` otherwise, unless ``duration_function`` overrides.
    """
    if duration_function is not None:
        return float(duration_function(config, runtime))
    if math.isfinite(runtime) and runtime > 0:
        return runtime
    return failure_duration


@dataclass
class PendingEvaluation:
    """An evaluation currently running on a worker."""

    configuration: Configuration
    worker: int
    submitted: float
    completes_at: float
    runtime: float


@dataclass(frozen=True)
class CompletedEvaluation:
    """An evaluation whose result has been collected by the manager."""

    configuration: Configuration
    worker: int
    submitted: float
    completed: float
    runtime: float

    @property
    def duration(self) -> float:
        """Time the worker was busy with this evaluation."""
        return self.completed - self.submitted


@dataclass
class WorkerState:
    """Bookkeeping for one worker."""

    index: int
    busy_until: float = 0.0
    busy_time: float = 0.0
    evaluations: int = 0

    @property
    def idle(self) -> bool:
        """Whether the worker currently has no assigned evaluation."""
        return self.evaluations_running == 0

    evaluations_running: int = 0


class AsyncVirtualEvaluator:
    """Asynchronous evaluation of configurations on virtual-time workers.

    Parameters
    ----------
    run_function:
        Callable mapping a configuration to the measured run time in seconds
        (NaN for failed/timed-out evaluations).  This is where the simulated
        HEP workflow (or a surrogate of it) is invoked.
    num_workers:
        Number of parallel workers (128 in the paper's Theta experiments).
    failure_duration:
        Virtual time a failed evaluation occupies its worker.
    duration_function:
        Optional override mapping ``(configuration, runtime)`` to the virtual
        duration of the evaluation; defaults to ``runtime`` for finite values
        and ``failure_duration`` otherwise.
    """

    def __init__(
        self,
        run_function: Callable[[Configuration], float],
        num_workers: int = 128,
        failure_duration: float = DEFAULT_FAILURE_DURATION,
        duration_function: Optional[Callable[[Configuration, float], float]] = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if failure_duration <= 0:
            raise ValueError("failure_duration must be positive")
        self.run_function = run_function
        self.num_workers = int(num_workers)
        self.failure_duration = float(failure_duration)
        self.duration_function = duration_function
        self.workers = [WorkerState(index=i) for i in range(self.num_workers)]
        self._pending: List[PendingEvaluation] = []
        self.now = 0.0
        self.num_submitted = 0
        self.num_collected = 0
        self._started_intervals: List[Tuple[float, float]] = []

    # ------------------------------------------------------------- submission
    def idle_workers(self) -> List[WorkerState]:
        """Workers without a running evaluation."""
        return [w for w in self.workers if w.evaluations_running == 0]

    @property
    def num_idle(self) -> int:
        """Number of idle workers."""
        return len(self.idle_workers())

    @property
    def num_pending(self) -> int:
        """Number of evaluations currently running."""
        return len(self._pending)

    def pending_evaluations(self) -> Tuple[PendingEvaluation, ...]:
        """Snapshot of the evaluations currently running (submission order)."""
        return tuple(self._pending)

    def drain_started_intervals(self) -> List[Tuple[float, float]]:
        """``(submitted, completes_at)`` of evaluations started since the last
        drain, in start order — the busy-interval feed of Fig. 4 (f)."""
        started, self._started_intervals = self._started_intervals, []
        return started

    def submit(
        self,
        configurations: Sequence[Configuration],
        runtimes: Optional[Sequence[float]] = None,
    ) -> int:
        """Assign configurations to idle workers at the current search time.

        Returns the number of configurations actually submitted (bounded by
        the number of idle workers); excess configurations are dropped, which
        mirrors the search only ever asking for as many points as there are
        idle workers.

        ``runtimes`` optionally supplies the measured run time per
        configuration, replacing the ``run_function`` calls — used by batch
        drivers that evaluate many campaigns' submissions in one vectorised
        pass.  Values must equal what ``run_function`` would have returned.
        """
        if runtimes is not None and len(runtimes) != len(configurations):
            raise ValueError("runtimes and configurations must have equal length")
        submitted = 0
        idle = self.idle_workers()
        for i, (config, worker) in enumerate(zip(configurations, idle)):
            runtime = float(
                self.run_function(config) if runtimes is None else runtimes[i]
            )
            duration = self._duration(config, runtime)
            self._pending.append(
                PendingEvaluation(
                    configuration=dict(config),
                    worker=worker.index,
                    submitted=self.now,
                    completes_at=self.now + duration,
                    runtime=runtime,
                )
            )
            worker.evaluations_running += 1
            worker.busy_until = self.now + duration
            worker.busy_time += duration
            worker.evaluations += 1
            submitted += 1
            self.num_submitted += 1
            self._started_intervals.append((self.now, self.now + duration))
        return submitted

    def _duration(self, config: Configuration, runtime: float) -> float:
        return resolve_duration(
            config, runtime, self.duration_function, self.failure_duration
        )

    # -------------------------------------------------------------- collection
    def next_completion_time(self) -> float:
        """Completion time of the earliest pending evaluation (inf if none)."""
        if not self._pending:
            return float("inf")
        return min(p.completes_at for p in self._pending)

    def advance_to(self, time: float) -> None:
        """Move the manager clock forward (never backwards)."""
        if time < self.now:
            raise ValueError(f"cannot move time backwards ({time} < {self.now})")
        self.now = time

    def collect(self, until: Optional[float] = None) -> List[CompletedEvaluation]:
        """Collect every evaluation completed at or before ``until``.

        ``until`` defaults to the current manager time.  The returned list is
        ordered by completion time.
        """
        horizon = self.now if until is None else until
        done = [p for p in self._pending if p.completes_at <= horizon]
        if not done:
            return []
        done.sort(key=lambda p: p.completes_at)
        self._pending = [p for p in self._pending if p.completes_at > horizon]
        completed = []
        for p in done:
            worker = self.workers[p.worker]
            worker.evaluations_running -= 1
            completed.append(
                CompletedEvaluation(
                    configuration=p.configuration,
                    worker=p.worker,
                    submitted=p.submitted,
                    completed=p.completes_at,
                    runtime=p.runtime,
                )
            )
            self.num_collected += 1
        return completed

    def wait_any(self, max_time: float) -> Tuple[float, List[CompletedEvaluation]]:
        """Advance to the next completion (capped at ``max_time``) and collect.

        Returns the new manager time and the collected evaluations (empty if
        the cap was reached before any completion).
        """
        target = min(self.next_completion_time(), max_time)
        if target < self.now:
            target = self.now
        self.advance_to(target)
        return self.now, self.collect()

    # ------------------------------------------------------------------ stats
    def utilization(self, horizon: float) -> float:
        """Fraction of worker time spent evaluating within ``[0, horizon]``.

        Evaluations still running at the horizon contribute only the portion
        before it.
        """
        if horizon <= 0:
            return 0.0
        total_busy = 0.0
        for worker in self.workers:
            # busy_time counts full durations; clip the part beyond the horizon.
            over = max(0.0, worker.busy_until - horizon)
            total_busy += max(0.0, worker.busy_time - over)
        return float(total_busy / (horizon * self.num_workers))
