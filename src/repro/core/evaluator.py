"""Virtual-clock asynchronous evaluator pool (manager/worker architecture).

The paper runs each search for one hour on 128 Theta nodes: every node is a
*worker* that executes one HEP workflow instance at a time, and the manager
(DeepHyper) asynchronously collects results and submits new configurations.

The reproduction replaces the physical workers with a virtual-clock pool: a
worker that receives a configuration at search time ``t`` produces its result
at ``t + duration``, where ``duration`` is the simulated run time of the
workflow instance (or the kill limit for configurations that time out).  This
preserves the property the paper's asynchronous method exploits — *fast
configurations come back sooner and update the model more often* — while
letting an entire one-hour 128-worker campaign execute in seconds of real
time.

The evaluator also tracks per-worker busy intervals, from which the worker
utilisation metric of Fig. 4 (d)/(f) is computed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.space import Configuration
from repro.sim.faults import FaultDecision, FaultPlan, make_fault_plan

__all__ = [
    "PendingEvaluation",
    "CompletedEvaluation",
    "WorkerState",
    "AsyncVirtualEvaluator",
    "EvaluatorStalledError",
]

#: Default duration charged for evaluations that fail/time out (the paper
#: kills a workflow instance after 600 s = 2 × 300 s steps).
DEFAULT_FAILURE_DURATION = 600.0


class EvaluatorStalledError(RuntimeError):
    """No pending or queued evaluation can ever complete.

    Raised by ``wait_any`` instead of looping (or advancing the clock)
    forever when every outstanding evaluation hangs with no deadline to kill
    it, or when queued work can never start because every worker has died.
    Only fault injection can produce either situation; the fault-free
    backends never raise this.
    """


def resolve_duration(
    config: Configuration,
    runtime: float,
    duration_function: Optional[Callable[[Configuration, float], float]],
    failure_duration: float,
) -> float:
    """Virtual time an evaluation occupies its worker.

    Shared by every evaluation backend so the failure semantics cannot
    drift between them: the measured runtime for finite positive values,
    ``failure_duration`` otherwise, unless ``duration_function`` overrides.
    """
    if duration_function is not None:
        return float(duration_function(config, runtime))
    if math.isfinite(runtime) and runtime > 0:
        return runtime
    return failure_duration


def resolve_outcome(
    config: Configuration,
    runtime: float,
    duration_function: Optional[Callable[[Configuration, float], float]],
    failure_duration: float,
    deadline: Optional[float] = None,
    decision: Optional[FaultDecision] = None,
) -> Tuple[float, float]:
    """Effective ``(runtime, duration)`` of an evaluation under faults.

    Extends :func:`resolve_duration` with the two fault-tolerance layers,
    applied in order so both backends agree bit for bit:

    1. the fault decision — a ``fail`` replaces the measured runtime with
       NaN before duration resolution, a straggler multiplies the resolved
       duration, a hang makes it infinite;
    2. the deadline (the paper's 600 s kill limit) — any duration exceeding
       it is cut to the deadline and the measurement becomes NaN (the
       workflow instance was killed, so no result was produced).

    With ``deadline=None`` and a healthy decision this is exactly
    :func:`resolve_duration`; the fault-free path is unchanged.
    """
    if decision is not None and decision.fail:
        runtime = float("nan")
    duration = resolve_duration(config, runtime, duration_function, failure_duration)
    if decision is not None:
        if decision.straggler_factor != 1.0:
            duration *= decision.straggler_factor
        if decision.hang:
            duration = math.inf
    if deadline is not None and duration > deadline:
        duration = deadline
        runtime = float("nan")
    return runtime, duration


@dataclass
class PendingEvaluation:
    """An evaluation currently running on a worker.

    ``seq`` is the evaluator-wide submission sequence number (used to key
    deterministic fault decisions); ``lost``/``crashed`` mark evaluations
    whose results will never reach the manager — at ``completes_at`` the
    worker is freed (``lost``) or dies (``crashed``) without delivering a
    result.  Fault-free evaluations always have ``lost == crashed == False``.
    """

    configuration: Configuration
    worker: int
    submitted: float
    completes_at: float
    runtime: float
    seq: int = -1
    lost: bool = False
    crashed: bool = False


@dataclass(frozen=True)
class CompletedEvaluation:
    """An evaluation whose result has been collected by the manager."""

    configuration: Configuration
    worker: int
    submitted: float
    completed: float
    runtime: float
    seq: int = -1

    @property
    def duration(self) -> float:
        """Time the worker was busy with this evaluation."""
        return self.completed - self.submitted


@dataclass
class WorkerState:
    """Bookkeeping for one worker."""

    index: int
    busy_until: float = 0.0
    busy_time: float = 0.0
    evaluations: int = 0

    @property
    def idle(self) -> bool:
        """Whether the worker currently has no assigned evaluation."""
        return self.evaluations_running == 0 and not self.dead

    evaluations_running: int = 0
    #: A crashed worker never accepts work again (fault injection only).
    dead: bool = False


class AsyncVirtualEvaluator:
    """Asynchronous evaluation of configurations on virtual-time workers.

    Parameters
    ----------
    run_function:
        Callable mapping a configuration to the measured run time in seconds
        (NaN for failed/timed-out evaluations).  This is where the simulated
        HEP workflow (or a surrogate of it) is invoked.
    num_workers:
        Number of parallel workers (128 in the paper's Theta experiments).
    failure_duration:
        Virtual time a failed evaluation occupies its worker.
    duration_function:
        Optional override mapping ``(configuration, runtime)`` to the virtual
        duration of the evaluation; defaults to ``runtime`` for finite values
        and ``failure_duration`` otherwise.
    deadline:
        Optional per-evaluation kill limit: an evaluation whose duration
        would exceed it is cut off at the deadline and reported as failed
        (NaN runtime) — the paper's 600 s kill-limit semantics.
    fault_plan:
        Optional :class:`~repro.sim.faults.FaultPlan` injecting deterministic
        worker crashes, hangs, stragglers and lost results.  ``None`` (or an
        all-zero plan) leaves every path bit-identical to the fault-free
        evaluator.
    """

    def __init__(
        self,
        run_function: Callable[[Configuration], float],
        num_workers: int = 128,
        failure_duration: float = DEFAULT_FAILURE_DURATION,
        duration_function: Optional[Callable[[Configuration, float], float]] = None,
        deadline: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if failure_duration <= 0:
            raise ValueError("failure_duration must be positive")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive")
        self.run_function = run_function
        self.num_workers = int(num_workers)
        self.failure_duration = float(failure_duration)
        self.duration_function = duration_function
        self.deadline = None if deadline is None else float(deadline)
        self.fault_plan = make_fault_plan(fault_plan)
        self.workers = [WorkerState(index=i) for i in range(self.num_workers)]
        self._pending: List[PendingEvaluation] = []
        self.now = 0.0
        self.num_submitted = 0
        self.num_collected = 0
        self.num_lost = 0
        self._next_seq = 0
        self._started_intervals: List[Tuple[float, float]] = []

    # ------------------------------------------------------------- submission
    def idle_workers(self) -> List[WorkerState]:
        """Workers without a running evaluation (dead workers excluded)."""
        return [w for w in self.workers if w.idle]

    @property
    def num_idle(self) -> int:
        """Number of idle workers."""
        return len(self.idle_workers())

    @property
    def num_pending(self) -> int:
        """Number of evaluations currently running."""
        return len(self._pending)

    @property
    def num_dead(self) -> int:
        """Number of workers that crashed and left service permanently."""
        return sum(1 for w in self.workers if w.dead)

    def pending_evaluations(self) -> Tuple[PendingEvaluation, ...]:
        """Snapshot of the evaluations currently running (submission order)."""
        return tuple(self._pending)

    def drain_started_intervals(self) -> List[Tuple[float, float]]:
        """``(submitted, completes_at)`` of evaluations started since the last
        drain, in start order — the busy-interval feed of Fig. 4 (f)."""
        started, self._started_intervals = self._started_intervals, []
        return started

    def submit(
        self,
        configurations: Sequence[Configuration],
        runtimes: Optional[Sequence[float]] = None,
    ) -> int:
        """Assign configurations to idle workers at the current search time.

        Returns the number of configurations actually submitted (bounded by
        the number of idle workers); excess configurations are dropped, which
        mirrors the search only ever asking for as many points as there are
        idle workers.

        ``runtimes`` optionally supplies the measured run time per
        configuration, replacing the ``run_function`` calls — used by batch
        drivers that evaluate many campaigns' submissions in one vectorised
        pass.  Values must equal what ``run_function`` would have returned.
        """
        if runtimes is not None and len(runtimes) != len(configurations):
            raise ValueError("runtimes and configurations must have equal length")
        submitted = 0
        idle = self.idle_workers()
        for i, (config, worker) in enumerate(zip(configurations, idle)):
            runtime = float(
                self.run_function(config) if runtimes is None else runtimes[i]
            )
            seq = self._next_seq
            self._next_seq += 1
            decision = (
                None if self.fault_plan is None else self.fault_plan.decide(seq)
            )
            runtime, duration = resolve_outcome(
                config,
                runtime,
                self.duration_function,
                self.failure_duration,
                self.deadline,
                decision,
            )
            lost = crashed = False
            if decision is not None:
                if decision.crash:
                    # The worker dies part-way through; the evaluation is lost
                    # and the "completion" event is the moment of death.
                    crashed = lost = True
                    duration = decision.crash_fraction * duration
                elif decision.lost:
                    lost = True
            self._pending.append(
                PendingEvaluation(
                    configuration=dict(config),
                    worker=worker.index,
                    submitted=self.now,
                    completes_at=self.now + duration,
                    runtime=runtime,
                    seq=seq,
                    lost=lost,
                    crashed=crashed,
                )
            )
            worker.evaluations_running += 1
            worker.busy_until = self.now + duration
            if math.isfinite(duration):
                worker.busy_time += duration
            worker.evaluations += 1
            submitted += 1
            self.num_submitted += 1
            self._started_intervals.append((self.now, self.now + duration))
        return submitted

    def _duration(self, config: Configuration, runtime: float) -> float:
        return resolve_duration(
            config, runtime, self.duration_function, self.failure_duration
        )

    # -------------------------------------------------------------- collection
    def next_completion_time(self) -> float:
        """Completion time of the earliest pending evaluation (inf if none)."""
        if not self._pending:
            return float("inf")
        return min(p.completes_at for p in self._pending)

    def advance_to(self, time: float) -> None:
        """Move the manager clock forward (never backwards)."""
        if time < self.now:
            raise ValueError(f"cannot move time backwards ({time} < {self.now})")
        self.now = time

    def collect(self, until: Optional[float] = None) -> List[CompletedEvaluation]:
        """Collect every evaluation completed at or before ``until``.

        ``until`` defaults to the current manager time.  The returned list is
        ordered by completion time.
        """
        horizon = self.now if until is None else until
        # A hung evaluation (infinite completion time) never fires, even
        # against an infinite horizon.
        done = [
            p
            for p in self._pending
            if p.completes_at <= horizon and not math.isinf(p.completes_at)
        ]
        if not done:
            return []
        done.sort(key=lambda p: p.completes_at)
        self._pending = [
            p
            for p in self._pending
            if p.completes_at > horizon or math.isinf(p.completes_at)
        ]
        completed = []
        for p in done:
            worker = self.workers[p.worker]
            worker.evaluations_running -= 1
            if p.crashed:
                worker.dead = True
            if p.lost:
                # The result never reaches the manager: the worker is freed
                # (or dead) but nothing is delivered and nothing is retried —
                # retry lives in the service layer's shared pool.
                self.num_lost += 1
                continue
            completed.append(
                CompletedEvaluation(
                    configuration=p.configuration,
                    worker=p.worker,
                    submitted=p.submitted,
                    completed=p.completes_at,
                    runtime=p.runtime,
                    seq=p.seq,
                )
            )
            self.num_collected += 1
        return completed

    def wait_any(self, max_time: float) -> Tuple[float, List[CompletedEvaluation]]:
        """Advance to the next completion (capped at ``max_time``) and collect.

        Returns the new manager time and the collected evaluations (empty if
        the cap was reached before any completion).  Raises
        :class:`EvaluatorStalledError` when evaluations are outstanding but
        none can ever complete (every one of them hangs with no deadline) —
        waiting would otherwise spin the clock forever.
        """
        if self._pending and self.next_completion_time() == math.inf:
            raise EvaluatorStalledError(
                f"{len(self._pending)} pending evaluation(s) will never "
                "complete (hung with no deadline)"
            )
        target = min(self.next_completion_time(), max_time)
        if target < self.now:
            target = self.now
        self.advance_to(target)
        return self.now, self.collect()

    # ------------------------------------------------------------------ stats
    def utilization(self, horizon: float) -> float:
        """Fraction of worker time spent evaluating within ``[0, horizon]``.

        Evaluations still running at the horizon contribute only the portion
        before it.
        """
        if horizon <= 0:
            return 0.0
        total_busy = 0.0
        for worker in self.workers:
            # busy_time counts full durations; clip the part beyond the horizon.
            over = max(0.0, worker.busy_until - horizon)
            if not math.isfinite(over):
                # A hung evaluation (infinite busy_until) contributes nothing
                # beyond what busy_time recorded for its finite predecessors.
                over = 0.0
            total_busy += max(0.0, worker.busy_time - over)
        return float(total_busy / (horizon * self.num_workers))

    # ---------------------------------------------------------- durable state
    def state_dict(self) -> Dict:
        """JSON-serialisable snapshot of the evaluator's full dynamic state.

        Together with the constructor arguments (run function, worker count,
        failure duration, deadline, fault plan) this is sufficient to rebuild
        the evaluator mid-campaign: the pending evaluations, per-worker
        bookkeeping, virtual clock, counters and the fault-decision sequence
        cursor.  Floats survive the JSON round trip bit-exactly (``repr``
        shortest round-trip), which the resume bit-identity contract relies
        on.
        """
        return {
            "now": self.now,
            "num_submitted": self.num_submitted,
            "num_collected": self.num_collected,
            "num_lost": self.num_lost,
            "next_seq": self._next_seq,
            "pending": [
                {
                    "configuration": dict(p.configuration),
                    "worker": p.worker,
                    "submitted": p.submitted,
                    "completes_at": p.completes_at,
                    "runtime": p.runtime,
                    "seq": p.seq,
                    "lost": p.lost,
                    "crashed": p.crashed,
                }
                for p in self._pending
            ],
            "workers": [
                {
                    "busy_until": w.busy_until,
                    "busy_time": w.busy_time,
                    "evaluations": w.evaluations,
                    "evaluations_running": w.evaluations_running,
                    "dead": w.dead,
                }
                for w in self.workers
            ],
            "started_intervals": [list(t) for t in self._started_intervals],
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this evaluator.

        The evaluator must have been constructed with the same structural
        arguments (worker count in particular) as the one that produced the
        snapshot.
        """
        if len(state["workers"]) != self.num_workers:
            raise ValueError(
                f"snapshot has {len(state['workers'])} workers, "
                f"evaluator has {self.num_workers}"
            )
        self.now = float(state["now"])
        self.num_submitted = int(state["num_submitted"])
        self.num_collected = int(state["num_collected"])
        self.num_lost = int(state["num_lost"])
        self._next_seq = int(state["next_seq"])
        self._pending = [
            PendingEvaluation(
                configuration=dict(p["configuration"]),
                worker=int(p["worker"]),
                submitted=float(p["submitted"]),
                completes_at=float(p["completes_at"]),
                runtime=float(p["runtime"]),
                seq=int(p["seq"]),
                lost=bool(p["lost"]),
                crashed=bool(p["crashed"]),
            )
            for p in state["pending"]
        ]
        for worker, w in zip(self.workers, state["workers"]):
            worker.busy_until = float(w["busy_until"])
            worker.busy_time = float(w["busy_time"])
            worker.evaluations = int(w["evaluations"])
            worker.evaluations_running = int(w["evaluations_running"])
            worker.dead = bool(w["dead"])
        self._started_intervals = [
            (float(a), float(b)) for a, b in state["started_intervals"]
        ]
