"""Mixed integer / real / categorical parameter search spaces.

The paper (Eq. 1) formulates autotuning as a black-box mixed-integer nonlinear
program over a vector ``x = (x_I, x_R, x_C)`` of integer, real and categorical
parameters.  This module provides the corresponding space description:

* :class:`IntegerParameter` — ordered integer parameter, uniform or
  log-uniform sampling (e.g. ``WriteBatchSize`` in [1, 2048], log-uniform).
* :class:`RealParameter` — continuous parameter, uniform or log-uniform.
* :class:`CategoricalParameter` — unordered categories
  (e.g. ``ThreadPoolType`` in {fifo, fifo_wait, prio_wait}; booleans are
  categoricals with categories ``(False, True)``).
* :class:`OrdinalParameter` — an explicit ordered list of allowed values
  (e.g. ``PESperNode`` in {1, 2, 4, 8, 16, 32}).
* :class:`SearchSpace` — an ordered collection of parameters with sampling,
  validation, and numeric encodings used by the surrogate models.

Configurations are plain ``dict`` objects mapping parameter names to values
(alias :data:`Configuration`), which keeps the public API ergonomic and makes
CSV round-tripping trivial.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Configuration",
    "Parameter",
    "IntegerParameter",
    "RealParameter",
    "CategoricalParameter",
    "OrdinalParameter",
    "SearchSpace",
]

#: A configuration is a mapping from parameter name to value.
Configuration = Dict[str, Any]


class Parameter(ABC):
    """Abstract base class for a single tunable parameter.

    Parameters are hashable by name and provide three views of their domain:

    * native values (what the evaluated workflow consumes),
    * the unit interval ``[0, 1]`` (what the samplers and the VAE consume),
    * a numeric surrogate encoding (what the regression models consume).
    """

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError(f"parameter name must be a non-empty string, got {name!r}")
        self.name = name

    # ------------------------------------------------------------------- api
    @abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw value(s) from the parameter's default (uninformative) prior."""

    @abstractmethod
    def contains(self, value: Any) -> bool:
        """Whether ``value`` is a legal value for this parameter."""

    @abstractmethod
    def to_unit(self, value: Any) -> float:
        """Map a native value to the unit interval [0, 1]."""

    @abstractmethod
    def from_unit(self, u: float) -> Any:
        """Map a unit-interval position back to a native value."""

    @property
    @abstractmethod
    def cardinality(self) -> float:
        """Number of distinct values (``inf`` for continuous parameters)."""

    # ------------------------------------------------------------- comparison
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Parameter):
            return NotImplemented
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def _log_low_high(low: float, high: float) -> Tuple[float, float]:
    if low <= 0:
        raise ValueError("log-uniform parameters require a strictly positive lower bound")
    return math.log(low), math.log(high)


class RealParameter(Parameter):
    """A continuous parameter on ``[low, high]``.

    Parameters
    ----------
    name:
        Parameter name.
    low, high:
        Inclusive bounds.
    log:
        If True, default sampling is log-uniform on the bounds.
    """

    kind = "real"

    def __init__(self, name: str, low: float, high: float, log: bool = False):
        super().__init__(name)
        if not (high > low):
            raise ValueError(f"{name}: require high > low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self.log = bool(log)
        if self.log:
            _log_low_high(self.low, self.high)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        u = rng.random(size)
        if size is None:
            return self.from_unit(float(u))
        return np.asarray([self.from_unit(float(v)) for v in np.atleast_1d(u)])

    def contains(self, value: Any) -> bool:
        try:
            v = float(value)
        except (TypeError, ValueError):
            return False
        return self.low <= v <= self.high

    def to_unit(self, value: Any) -> float:
        v = float(value)
        if self.log:
            lo, hi = _log_low_high(self.low, self.high)
            return (math.log(max(v, self.low)) - lo) / (hi - lo)
        return (v - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        u = min(1.0, max(0.0, float(u)))
        if self.log:
            lo, hi = _log_low_high(self.low, self.high)
            value = float(math.exp(lo + u * (hi - lo)))
        else:
            value = float(self.low + u * (self.high - self.low))
        # Clamp away floating-point overshoot (exp(log(high)) can exceed high).
        return min(self.high, max(self.low, value))

    @property
    def cardinality(self) -> float:
        return float("inf")

    def __repr__(self) -> str:
        tag = ", log" if self.log else ""
        return f"RealParameter({self.name!r}, [{self.low}, {self.high}]{tag})"


class IntegerParameter(Parameter):
    """An integer parameter on ``[low, high]`` (inclusive).

    Parameters
    ----------
    name:
        Parameter name.
    low, high:
        Inclusive integer bounds.
    log:
        If True, default sampling is log-uniform (rounded to integers), as used
        for batch-size-like parameters in the paper (Fig. 1).
    """

    kind = "integer"

    def __init__(self, name: str, low: int, high: int, log: bool = False):
        super().__init__(name)
        if int(low) != low or int(high) != high:
            raise ValueError(f"{name}: integer bounds required, got [{low}, {high}]")
        if not (high > low):
            raise ValueError(f"{name}: require high > low, got [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)
        self.log = bool(log)
        if self.log:
            _log_low_high(self.low, self.high)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        u = rng.random(size)
        if size is None:
            return self.from_unit(float(u))
        return np.asarray([self.from_unit(float(v)) for v in np.atleast_1d(u)], dtype=int)

    def contains(self, value: Any) -> bool:
        try:
            v = float(value)
        except (TypeError, ValueError):
            return False
        return v == int(v) and self.low <= int(v) <= self.high

    def to_unit(self, value: Any) -> float:
        v = float(value)
        if self.log:
            lo, hi = _log_low_high(self.low, self.high)
            return (math.log(max(v, self.low)) - lo) / (hi - lo)
        return (v - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> int:
        u = min(1.0, max(0.0, float(u)))
        if self.log:
            lo, hi = _log_low_high(self.low, self.high)
            raw = math.exp(lo + u * (hi - lo))
        else:
            raw = self.low + u * (self.high - self.low)
        return int(min(self.high, max(self.low, round(raw))))

    @property
    def cardinality(self) -> float:
        return float(self.high - self.low + 1)

    def __repr__(self) -> str:
        tag = ", log" if self.log else ""
        return f"IntegerParameter({self.name!r}, [{self.low}, {self.high}]{tag})"


class CategoricalParameter(Parameter):
    """An unordered categorical parameter.

    Parameters
    ----------
    name:
        Parameter name.
    categories:
        Sequence of allowed values (order only matters for encoding).
    """

    kind = "categorical"

    def __init__(self, name: str, categories: Sequence[Any]):
        super().__init__(name)
        cats = list(categories)
        if len(cats) < 2:
            raise ValueError(f"{name}: need at least two categories")
        if len(set(map(repr, cats))) != len(cats):
            raise ValueError(f"{name}: duplicate categories {cats!r}")
        self.categories: Tuple[Any, ...] = tuple(cats)

    @classmethod
    def boolean(cls, name: str) -> "CategoricalParameter":
        """Convenience constructor for a True/False parameter."""
        return cls(name, (False, True))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        idx = rng.integers(0, len(self.categories), size=size)
        if size is None:
            return self.categories[int(idx)]
        return np.asarray([self.categories[int(i)] for i in np.atleast_1d(idx)], dtype=object)

    def contains(self, value: Any) -> bool:
        return any(value == c and type(value) is type(c) or value == c for c in self.categories)

    def index_of(self, value: Any) -> int:
        """Index of ``value`` in the category tuple."""
        for i, c in enumerate(self.categories):
            if value == c:
                return i
        raise ValueError(f"{value!r} is not a category of {self.name}")

    def to_unit(self, value: Any) -> float:
        n = len(self.categories)
        return (self.index_of(value) + 0.5) / n

    def from_unit(self, u: float) -> Any:
        u = min(1.0, max(0.0, float(u)))
        n = len(self.categories)
        idx = min(n - 1, int(u * n))
        return self.categories[idx]

    @property
    def cardinality(self) -> float:
        return float(len(self.categories))

    def __repr__(self) -> str:
        return f"CategoricalParameter({self.name!r}, {list(self.categories)!r})"


class OrdinalParameter(Parameter):
    """An ordered discrete parameter with an explicit value list.

    Used for parameters such as ``PESperNode`` whose domain is {1, 2, 4, 8,
    16, 32}: the values have a natural ordering but are not contiguous
    integers.
    """

    kind = "ordinal"

    def __init__(self, name: str, values: Sequence[Any]):
        super().__init__(name)
        vals = list(values)
        if len(vals) < 2:
            raise ValueError(f"{name}: need at least two values")
        if sorted(vals) != vals:
            raise ValueError(f"{name}: ordinal values must be sorted, got {vals!r}")
        if len(set(vals)) != len(vals):
            raise ValueError(f"{name}: duplicate values {vals!r}")
        self.values: Tuple[Any, ...] = tuple(vals)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        idx = rng.integers(0, len(self.values), size=size)
        if size is None:
            return self.values[int(idx)]
        return np.asarray([self.values[int(i)] for i in np.atleast_1d(idx)])

    def contains(self, value: Any) -> bool:
        return any(value == v for v in self.values)

    def index_of(self, value: Any) -> int:
        """Index of ``value`` in the ordered value tuple."""
        for i, v in enumerate(self.values):
            if value == v:
                return i
        raise ValueError(f"{value!r} is not a value of {self.name}")

    def to_unit(self, value: Any) -> float:
        n = len(self.values)
        return (self.index_of(value) + 0.5) / n

    def from_unit(self, u: float) -> Any:
        u = min(1.0, max(0.0, float(u)))
        n = len(self.values)
        idx = min(n - 1, int(u * n))
        return self.values[idx]

    @property
    def cardinality(self) -> float:
        return float(len(self.values))

    def __repr__(self) -> str:
        return f"OrdinalParameter({self.name!r}, {list(self.values)!r})"


class SearchSpace:
    """An ordered collection of :class:`Parameter` objects.

    The space provides:

    * random sampling of configurations (optionally from a
      :class:`~repro.core.priors.JointPrior`),
    * validation of configurations,
    * numeric encodings for the surrogate models (ordinal encoding and
      one-hot encoding), and
    * unit-cube encodings for the VAE and for distance computations.

    Parameters
    ----------
    parameters:
        Iterable of :class:`Parameter`.  Order defines the encoding order.
    name:
        Optional label (e.g. ``"4n-2s-20p"``).
    """

    def __init__(self, parameters: Iterable[Parameter], name: str = ""):
        params = list(parameters)
        if not params:
            raise ValueError("a search space needs at least one parameter")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names: {names}")
        self._params: List[Parameter] = params
        self._by_name: Dict[str, Parameter] = {p.name: p for p in params}
        self.name = name

    # ---------------------------------------------------------------- dunders
    def __len__(self) -> int:
        return len(self._params)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._params)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Parameter:
        return self._by_name[name]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SearchSpace):
            return NotImplemented
        return self._params == other._params

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<SearchSpace{label} n={len(self._params)}>"

    # ------------------------------------------------------------- properties
    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        """The parameters, in encoding order."""
        return tuple(self._params)

    @property
    def parameter_names(self) -> Tuple[str, ...]:
        """Parameter names, in encoding order."""
        return tuple(p.name for p in self._params)

    @property
    def cardinality(self) -> float:
        """Total number of distinct configurations (``inf`` if any real param)."""
        total = 1.0
        for p in self._params:
            total *= p.cardinality
        return total

    # ----------------------------------------------------------------- checks
    def validate(self, config: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` if ``config`` is not a full, legal configuration."""
        missing = [n for n in self.parameter_names if n not in config]
        if missing:
            raise ValueError(f"configuration is missing parameters: {missing}")
        extra = [n for n in config if n not in self._by_name]
        if extra:
            raise ValueError(f"configuration has unknown parameters: {extra}")
        for p in self._params:
            if not p.contains(config[p.name]):
                raise ValueError(
                    f"value {config[p.name]!r} is illegal for parameter {p.name!r} ({p!r})"
                )

    def contains(self, config: Mapping[str, Any]) -> bool:
        """Whether ``config`` is a full, legal configuration of this space."""
        try:
            self.validate(config)
        except ValueError:
            return False
        return True

    # --------------------------------------------------------------- sampling
    def sample(
        self,
        n: int,
        rng: np.random.Generator,
        prior: Optional["JointPriorLike"] = None,
    ) -> List[Configuration]:
        """Draw ``n`` configurations.

        Parameters
        ----------
        n:
            Number of configurations to draw.
        rng:
            NumPy random generator.
        prior:
            Optional joint prior providing ``sample_configurations(n, rng)``.
            When omitted every parameter uses its default (uniform or
            log-uniform) distribution — the "user-defined prior" of the paper.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return []
        if prior is not None:
            configs = prior.sample_configurations(n, rng)
            return [self.clip(c) for c in configs]
        configs = []
        for _ in range(n):
            configs.append({p.name: p.sample(rng) for p in self._params})
        return configs

    def clip(self, config: Mapping[str, Any]) -> Configuration:
        """Project an arbitrary mapping onto the closest legal configuration."""
        out: Configuration = {}
        for p in self._params:
            if p.name not in config:
                raise ValueError(f"configuration is missing parameter {p.name!r}")
            value = config[p.name]
            if p.contains(value):
                out[p.name] = value
                continue
            if isinstance(p, (RealParameter, IntegerParameter)):
                try:
                    v = float(value)
                except (TypeError, ValueError):
                    raise ValueError(
                        f"cannot clip non-numeric value {value!r} for {p.name!r}"
                    ) from None
                v = min(p.high, max(p.low, v))
                out[p.name] = int(round(v)) if isinstance(p, IntegerParameter) else v
            else:
                # Snap to the nearest category/value in unit space.
                out[p.name] = p.from_unit(0.5) if not _snappable(p, value) else _snap(p, value)
        return out

    # -------------------------------------------------------------- encodings
    def to_unit_array(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Encode configurations into the unit hypercube (one row per config)."""
        arr = np.empty((len(configs), len(self._params)), dtype=float)
        for i, config in enumerate(configs):
            for j, p in enumerate(self._params):
                arr[i, j] = p.to_unit(config[p.name])
        return arr

    def from_unit_array(self, arr: np.ndarray) -> List[Configuration]:
        """Decode unit-hypercube rows back into configurations."""
        arr = np.atleast_2d(np.asarray(arr, dtype=float))
        if arr.shape[1] != len(self._params):
            raise ValueError(
                f"expected {len(self._params)} columns, got {arr.shape[1]}"
            )
        configs = []
        for row in arr:
            configs.append(
                {p.name: p.from_unit(float(u)) for p, u in zip(self._params, row)}
            )
        return configs

    def to_numeric_array(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Ordinal numeric encoding used by tree-based surrogates.

        Integer/real parameters map to their value, log-scaled when the
        parameter is log-uniform; categorical and ordinal parameters map to
        their index.
        """
        arr = np.empty((len(configs), len(self._params)), dtype=float)
        for i, config in enumerate(configs):
            for j, p in enumerate(self._params):
                value = config[p.name]
                if isinstance(p, (RealParameter, IntegerParameter)):
                    v = float(value)
                    arr[i, j] = math.log(v) if p.log and v > 0 else v
                elif isinstance(p, CategoricalParameter):
                    arr[i, j] = float(p.index_of(value))
                else:
                    arr[i, j] = float(p.index_of(value))
        return arr

    def one_hot_dimension(self) -> int:
        """Number of columns of the one-hot encoding."""
        dim = 0
        for p in self._params:
            if isinstance(p, CategoricalParameter):
                dim += len(p.categories)
            else:
                dim += 1
        return dim

    def to_one_hot_array(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """One-hot encoding used by the Gaussian-process surrogate.

        Numeric and ordinal parameters occupy one column each (scaled to the
        unit interval); each categorical parameter expands into one column per
        category.
        """
        arr = np.zeros((len(configs), self.one_hot_dimension()), dtype=float)
        for i, config in enumerate(configs):
            col = 0
            for p in self._params:
                value = config[p.name]
                if isinstance(p, CategoricalParameter):
                    arr[i, col + p.index_of(value)] = 1.0
                    col += len(p.categories)
                else:
                    arr[i, col] = p.to_unit(value)
                    col += 1
        return arr

    # ------------------------------------------------------------ composition
    def subspace(self, names: Sequence[str], name: str = "") -> "SearchSpace":
        """A new space restricted to ``names`` (preserving this space's order)."""
        unknown = [n for n in names if n not in self._by_name]
        if unknown:
            raise ValueError(f"unknown parameters: {unknown}")
        selected = [p for p in self._params if p.name in set(names)]
        return SearchSpace(selected, name=name)

    def union(self, other: "SearchSpace", name: str = "") -> "SearchSpace":
        """A space containing this space's parameters plus ``other``'s new ones."""
        params = list(self._params)
        for p in other:
            if p.name not in self._by_name:
                params.append(p)
        return SearchSpace(params, name=name)

    def common_parameters(self, other: "SearchSpace") -> List[str]:
        """Names present in both spaces (used by transfer learning)."""
        return [p.name for p in self._params if p.name in other]

    def new_parameters(self, previous: "SearchSpace") -> List[str]:
        """Names present here but absent from ``previous`` (Algorithm 1, l.3)."""
        return [p.name for p in self._params if p.name not in previous]


def _snappable(param: Parameter, value: Any) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating))


def _snap(param: Parameter, value: Any) -> Any:
    """Snap a numeric value to the nearest allowed discrete value."""
    if isinstance(param, OrdinalParameter):
        vals = [v for v in param.values if isinstance(v, (int, float))]
        if vals:
            return min(vals, key=lambda v: abs(v - float(value)))
    return param.from_unit(0.5)


class JointPriorLike:
    """Structural protocol for joint priors (see :mod:`repro.core.priors`)."""

    def sample_configurations(self, n: int, rng: np.random.Generator) -> List[Configuration]:
        raise NotImplementedError
