"""Mixed integer / real / categorical parameter search spaces.

The paper (Eq. 1) formulates autotuning as a black-box mixed-integer nonlinear
program over a vector ``x = (x_I, x_R, x_C)`` of integer, real and categorical
parameters.  This module provides the corresponding space description:

* :class:`IntegerParameter` — ordered integer parameter, uniform or
  log-uniform sampling (e.g. ``WriteBatchSize`` in [1, 2048], log-uniform).
* :class:`RealParameter` — continuous parameter, uniform or log-uniform.
* :class:`CategoricalParameter` — unordered categories
  (e.g. ``ThreadPoolType`` in {fifo, fifo_wait, prio_wait}; booleans are
  categoricals with categories ``(False, True)``).
* :class:`OrdinalParameter` — an explicit ordered list of allowed values
  (e.g. ``PESperNode`` in {1, 2, 4, 8, 16, 32}).
* :class:`SearchSpace` — an ordered collection of parameters with sampling,
  validation, and numeric encodings used by the surrogate models.

Configurations have two representations:

* plain ``dict`` objects mapping parameter names to values (alias
  :data:`Configuration`) — the ergonomic public form consumed by evaluators
  and CSV round-tripping;
* :class:`ColumnBatch` — a structure-of-arrays (columnar) batch holding one
  NumPy array per parameter.  The hot paths of the optimizer (candidate
  generation, history encoding, dedup keys) operate on columns and only
  materialise dicts for the few configurations that are actually proposed.

All encodings (:meth:`SearchSpace.to_unit_array`,
:meth:`SearchSpace.to_numeric_array`, :meth:`SearchSpace.to_one_hot_array`,
:meth:`SearchSpace.from_unit_array`) are vectorised column-wise through the
per-parameter ``to_unit_vec`` / ``from_unit_vec`` codecs.  The original
per-element loops are kept as ``*_loop`` reference implementations: they are
exercised by the property-based equivalence tests and used by the benchmark
suite to reconstruct the pre-columnar cost profile.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

__all__ = [
    "Configuration",
    "ColumnBatch",
    "Parameter",
    "IntegerParameter",
    "RealParameter",
    "CategoricalParameter",
    "OrdinalParameter",
    "SearchSpace",
]

#: A configuration is a mapping from parameter name to value.
Configuration = Dict[str, Any]


class Parameter(ABC):
    """Abstract base class for a single tunable parameter.

    Parameters are hashable by name and provide three views of their domain:

    * native values (what the evaluated workflow consumes),
    * the unit interval ``[0, 1]`` (what the samplers and the VAE consume),
    * a numeric surrogate encoding (what the regression models consume).

    Scalar codecs (:meth:`to_unit` / :meth:`from_unit`) have vectorised
    counterparts (:meth:`to_unit_vec` / :meth:`from_unit_vec`) operating on
    whole value columns at once; subclasses override them with NumPy
    implementations, the base class falls back to a per-element loop.
    """

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError(f"parameter name must be a non-empty string, got {name!r}")
        self.name = name

    # ------------------------------------------------------------------- api
    @abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw value(s) from the parameter's default (uninformative) prior."""

    @abstractmethod
    def contains(self, value: Any) -> bool:
        """Whether ``value`` is a legal value for this parameter."""

    @abstractmethod
    def to_unit(self, value: Any) -> float:
        """Map a native value to the unit interval [0, 1]."""

    @abstractmethod
    def from_unit(self, u: float) -> Any:
        """Map a unit-interval position back to a native value."""

    def to_unit_vec(self, values: Sequence[Any]) -> np.ndarray:
        """Map a column of native values into the unit interval (vectorised)."""
        return np.asarray([self.to_unit(v) for v in values], dtype=float)

    def from_unit_vec(self, u: np.ndarray) -> np.ndarray:
        """Map a column of unit-interval positions back to native values."""
        return np.asarray([self.from_unit(float(v)) for v in np.asarray(u).ravel()])

    @property
    @abstractmethod
    def cardinality(self) -> float:
        """Number of distinct values (``inf`` for continuous parameters)."""

    # ------------------------------------------------------------- comparison
    def _comparable_dict(self) -> Dict[str, Any]:
        # Lazily-built lookup caches must not affect parameter equality.
        return {k: v for k, v in self.__dict__.items() if not k.endswith("_cache")}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Parameter):
            return NotImplemented
        return type(self) is type(other) and self._comparable_dict() == other._comparable_dict()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def _log_low_high(low: float, high: float) -> Tuple[float, float]:
    if low <= 0:
        raise ValueError("log-uniform parameters require a strictly positive lower bound")
    return math.log(low), math.log(high)


class RealParameter(Parameter):
    """A continuous parameter on ``[low, high]``.

    Parameters
    ----------
    name:
        Parameter name.
    low, high:
        Inclusive bounds.
    log:
        If True, default sampling is log-uniform on the bounds.
    """

    kind = "real"

    def __init__(self, name: str, low: float, high: float, log: bool = False):
        super().__init__(name)
        if not (high > low):
            raise ValueError(f"{name}: require high > low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self.log = bool(log)
        if self.log:
            _log_low_high(self.low, self.high)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        u = rng.random(size)
        if size is None:
            return self.from_unit(float(u))
        return self.from_unit_vec(np.atleast_1d(u))

    def contains(self, value: Any) -> bool:
        try:
            v = float(value)
        except (TypeError, ValueError):
            return False
        return self.low <= v <= self.high

    def to_unit(self, value: Any) -> float:
        v = float(value)
        if self.log:
            lo, hi = _log_low_high(self.low, self.high)
            return (math.log(max(v, self.low)) - lo) / (hi - lo)
        return (v - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        u = min(1.0, max(0.0, float(u)))
        if self.log:
            lo, hi = _log_low_high(self.low, self.high)
            value = float(math.exp(lo + u * (hi - lo)))
        else:
            value = float(self.low + u * (self.high - self.low))
        # Clamp away floating-point overshoot (exp(log(high)) can exceed high).
        return min(self.high, max(self.low, value))

    def to_unit_vec(self, values: Sequence[Any]) -> np.ndarray:
        v = np.asarray(values, dtype=float)
        if self.log:
            lo, hi = _log_low_high(self.low, self.high)
            return (np.log(np.maximum(v, self.low)) - lo) / (hi - lo)
        return (v - self.low) / (self.high - self.low)

    def from_unit_vec(self, u: np.ndarray) -> np.ndarray:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        if self.log:
            lo, hi = _log_low_high(self.low, self.high)
            value = np.exp(lo + u * (hi - lo))
        else:
            value = self.low + u * (self.high - self.low)
        return np.clip(value, self.low, self.high)

    @property
    def cardinality(self) -> float:
        return float("inf")

    def __repr__(self) -> str:
        tag = ", log" if self.log else ""
        return f"RealParameter({self.name!r}, [{self.low}, {self.high}]{tag})"


class IntegerParameter(Parameter):
    """An integer parameter on ``[low, high]`` (inclusive).

    Parameters
    ----------
    name:
        Parameter name.
    low, high:
        Inclusive integer bounds.
    log:
        If True, default sampling is log-uniform (rounded to integers), as used
        for batch-size-like parameters in the paper (Fig. 1).
    """

    kind = "integer"

    def __init__(self, name: str, low: int, high: int, log: bool = False):
        super().__init__(name)
        if int(low) != low or int(high) != high:
            raise ValueError(f"{name}: integer bounds required, got [{low}, {high}]")
        if not (high > low):
            raise ValueError(f"{name}: require high > low, got [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)
        self.log = bool(log)
        if self.log:
            _log_low_high(self.low, self.high)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        u = rng.random(size)
        if size is None:
            return self.from_unit(float(u))
        return self.from_unit_vec(np.atleast_1d(u))

    def contains(self, value: Any) -> bool:
        try:
            v = float(value)
        except (TypeError, ValueError):
            return False
        # Non-finite values are out of domain (int(v) below would raise);
        # clip() then settles them on a bound, matching clip_columns.
        if not math.isfinite(v):
            return False
        return v == int(v) and self.low <= int(v) <= self.high

    def to_unit(self, value: Any) -> float:
        v = float(value)
        if self.log:
            lo, hi = _log_low_high(self.low, self.high)
            return (math.log(max(v, self.low)) - lo) / (hi - lo)
        return (v - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> int:
        u = min(1.0, max(0.0, float(u)))
        if self.log:
            lo, hi = _log_low_high(self.low, self.high)
            raw = math.exp(lo + u * (hi - lo))
        else:
            raw = self.low + u * (self.high - self.low)
        return int(min(self.high, max(self.low, round(raw))))

    def to_unit_vec(self, values: Sequence[Any]) -> np.ndarray:
        v = np.asarray(values, dtype=float)
        if self.log:
            lo, hi = _log_low_high(self.low, self.high)
            return (np.log(np.maximum(v, self.low)) - lo) / (hi - lo)
        return (v - self.low) / (self.high - self.low)

    def from_unit_vec(self, u: np.ndarray) -> np.ndarray:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        if self.log:
            lo, hi = _log_low_high(self.low, self.high)
            raw = np.exp(lo + u * (hi - lo))
        else:
            raw = self.low + u * (self.high - self.low)
        # np.rint rounds half-to-even, matching the scalar round() above.
        return np.clip(np.rint(raw), self.low, self.high).astype(int)

    @property
    def cardinality(self) -> float:
        return float(self.high - self.low + 1)

    def __repr__(self) -> str:
        tag = ", log" if self.log else ""
        return f"IntegerParameter({self.name!r}, [{self.low}, {self.high}]{tag})"


class _IndexedDiscreteMixin:
    """Shared index machinery for categorical and ordinal parameters.

    The value→index map uses first-wins insertion so lookups agree with the
    linear ``==`` scan even for cross-type equal values (``True == 1``);
    unhashable or unknown values fall back to the scan.
    """

    _domain: Tuple[Any, ...]

    def _index_map(self) -> Dict[Any, int]:
        cached = getattr(self, "_index_map_cache", None)
        if cached is None:
            cached = {}
            for i, value in enumerate(self._domain):
                if value not in cached:
                    cached[value] = i
            self._index_map_cache = cached
        return cached

    def _domain_array(self) -> np.ndarray:
        cached = getattr(self, "_domain_array_cache", None)
        if cached is None:
            cached = np.empty(len(self._domain), dtype=object)
            for i, value in enumerate(self._domain):
                cached[i] = value
            self._domain_array_cache = cached
        return cached

    def index_of(self, value: Any) -> int:
        """Index of ``value`` in the domain tuple."""
        try:
            idx = self._index_map().get(value)
        except TypeError:  # unhashable value
            idx = None
        if idx is not None:
            return idx
        for i, v in enumerate(self._domain):
            if value == v:
                return i
        raise ValueError(f"{value!r} is not a value of {self.name}")  # type: ignore[attr-defined]

    def unit_from_indices(self, indices: np.ndarray) -> np.ndarray:
        """Unit-interval encoding from precomputed domain indices.

        Same arithmetic as ``to_unit_vec`` minus the index lookup, for
        callers that already hold the indices (the :class:`ColumnBatch`
        index cache).
        """
        return (indices + 0.5) / len(self._domain)

    def indices_vec(self, values: Sequence[Any]) -> np.ndarray:
        """Indices of a column of values (vectorised lookup).

        The common case — a column of plain scalars over a small domain — is
        resolved with one ``==`` broadcast per domain value (first-wins order,
        matching :meth:`index_of` even for cross-type equal values such as
        ``True == 1``).  Values no domain comparison claims fall back to the
        scalar :meth:`index_of`, which raises the usual error for unknowns.
        This is the innermost loop of every candidate encoding, so it must not
        cost a Python-level dict lookup per element.
        """
        n = len(values)
        if n <= 16:
            # Tiny columns (the tell path records one or two evaluations) are
            # cheaper through the scalar lookup than through per-domain
            # broadcasts.
            index_of = self.index_of
            return np.fromiter((index_of(v) for v in values), dtype=np.intp, count=n)
        arr = values if isinstance(values, np.ndarray) else np.asarray(values, dtype=object)
        out = np.full(n, -1, dtype=np.intp)
        remaining = n
        for i, domain_value in enumerate(self._domain):
            try:
                matches = arr == domain_value
                if np.shape(matches) != (n,):
                    raise TypeError("non-broadcastable comparison")
                matches = np.asarray(matches, dtype=bool)
            except (TypeError, ValueError):
                # Exotic domain (e.g. array-valued categories): broadcast
                # comparison is unusable, resolve everything element-wise.
                return np.fromiter(
                    (self.index_of(v) for v in values), dtype=np.intp, count=n
                )
            matches &= out < 0
            out[matches] = i
            remaining -= int(np.count_nonzero(matches))
            if remaining == 0:
                return out
        for j in np.flatnonzero(out < 0):
            out[j] = self.index_of(arr[j])
        return out


class CategoricalParameter(_IndexedDiscreteMixin, Parameter):
    """An unordered categorical parameter.

    Parameters
    ----------
    name:
        Parameter name.
    categories:
        Sequence of allowed values (order only matters for encoding).
    """

    kind = "categorical"

    def __init__(self, name: str, categories: Sequence[Any]):
        super().__init__(name)
        cats = list(categories)
        if len(cats) < 2:
            raise ValueError(f"{name}: need at least two categories")
        if len(set(map(repr, cats))) != len(cats):
            raise ValueError(f"{name}: duplicate categories {cats!r}")
        self.categories: Tuple[Any, ...] = tuple(cats)

    @property
    def _domain(self) -> Tuple[Any, ...]:
        return self.categories

    @classmethod
    def boolean(cls, name: str) -> "CategoricalParameter":
        """Convenience constructor for a True/False parameter."""
        return cls(name, (False, True))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        idx = rng.integers(0, len(self.categories), size=size)
        if size is None:
            return self.categories[int(idx)]
        return self._domain_array()[np.atleast_1d(idx)]

    def contains(self, value: Any) -> bool:
        return any(value == c and type(value) is type(c) or value == c for c in self.categories)

    def to_unit(self, value: Any) -> float:
        n = len(self.categories)
        return (self.index_of(value) + 0.5) / n

    def from_unit(self, u: float) -> Any:
        u = min(1.0, max(0.0, float(u)))
        n = len(self.categories)
        idx = min(n - 1, int(u * n))
        return self.categories[idx]

    def to_unit_vec(self, values: Sequence[Any]) -> np.ndarray:
        n = len(self.categories)
        return (self.indices_vec(values) + 0.5) / n

    def from_unit_vec(self, u: np.ndarray) -> np.ndarray:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        n = len(self.categories)
        idx = np.minimum(n - 1, (u * n).astype(np.intp))
        return self._domain_array()[idx]

    @property
    def cardinality(self) -> float:
        return float(len(self.categories))

    def __repr__(self) -> str:
        return f"CategoricalParameter({self.name!r}, {list(self.categories)!r})"


class OrdinalParameter(_IndexedDiscreteMixin, Parameter):
    """An ordered discrete parameter with an explicit value list.

    Used for parameters such as ``PESperNode`` whose domain is {1, 2, 4, 8,
    16, 32}: the values have a natural ordering but are not contiguous
    integers.
    """

    kind = "ordinal"

    def __init__(self, name: str, values: Sequence[Any]):
        super().__init__(name)
        vals = list(values)
        if len(vals) < 2:
            raise ValueError(f"{name}: need at least two values")
        if sorted(vals) != vals:
            raise ValueError(f"{name}: ordinal values must be sorted, got {vals!r}")
        if len(set(vals)) != len(vals):
            raise ValueError(f"{name}: duplicate values {vals!r}")
        self.values: Tuple[Any, ...] = tuple(vals)

    @property
    def _domain(self) -> Tuple[Any, ...]:
        return self.values

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        idx = rng.integers(0, len(self.values), size=size)
        if size is None:
            return self.values[int(idx)]
        return np.asarray([self.values[int(i)] for i in np.atleast_1d(idx)])

    def contains(self, value: Any) -> bool:
        return any(value == v for v in self.values)

    def to_unit(self, value: Any) -> float:
        n = len(self.values)
        return (self.index_of(value) + 0.5) / n

    def from_unit(self, u: float) -> Any:
        u = min(1.0, max(0.0, float(u)))
        n = len(self.values)
        idx = min(n - 1, int(u * n))
        return self.values[idx]

    def to_unit_vec(self, values: Sequence[Any]) -> np.ndarray:
        n = len(self.values)
        return (self.indices_vec(values) + 0.5) / n

    def from_unit_vec(self, u: np.ndarray) -> np.ndarray:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        n = len(self.values)
        idx = np.minimum(n - 1, (u * n).astype(np.intp))
        return self._domain_array()[idx]

    @property
    def cardinality(self) -> float:
        return float(len(self.values))

    def __repr__(self) -> str:
        return f"OrdinalParameter({self.name!r}, {list(self.values)!r})"


class ColumnBatch:
    """A batch of configurations in structure-of-arrays (columnar) form.

    One NumPy array per parameter, all of equal length.  This is the hot-path
    representation: priors sample directly into columns, the space encodes
    columns without building intermediate dicts, and the optimizer only
    materialises plain-``dict`` configurations (:meth:`to_configurations`)
    for the few candidates it actually proposes.
    """

    __slots__ = ("space", "_columns", "_n", "_indices")

    def __init__(self, space: "SearchSpace", columns: Mapping[str, np.ndarray]):
        self.space = space
        self._columns: Dict[str, np.ndarray] = {}
        n = None
        for p in space:
            if p.name not in columns:
                raise ValueError(f"missing column for parameter {p.name!r}")
            col = np.asarray(columns[p.name])
            if col.ndim != 1:
                raise ValueError(f"column {p.name!r} must be one-dimensional")
            if n is None:
                n = col.shape[0]
            elif col.shape[0] != n:
                raise ValueError("all columns must have equal length")
            self._columns[p.name] = col
        self._n = int(n or 0)
        # Memoised domain-index columns of discrete parameters: every encoding
        # of a batch needs them, so they are resolved at most once per batch
        # (and sliced, not recomputed, through take()).
        self._indices: Dict[str, np.ndarray] = {}

    def discrete_indices(self, param: "Parameter") -> np.ndarray:
        """Domain indices of a categorical/ordinal column (memoised)."""
        cached = self._indices.get(param.name)
        if cached is None:
            cached = param.indices_vec(self._columns[param.name])
            self._indices[param.name] = cached
        return cached

    # ---------------------------------------------------------------- dunders
    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------ views
    @property
    def columns(self) -> Dict[str, np.ndarray]:
        """The per-parameter columns (parameter name → array)."""
        return dict(self._columns)

    def column(self, name: str) -> np.ndarray:
        """The column of parameter ``name``."""
        return self._columns[name]

    @classmethod
    def _trusted(
        cls, space: "SearchSpace", columns: Dict[str, np.ndarray], n: int
    ) -> "ColumnBatch":
        """Construct without re-validating columns the space already produced."""
        batch = cls.__new__(cls)
        batch.space = space
        batch._columns = columns
        batch._n = n
        batch._indices = {}
        return batch

    def take(self, indices: Union[Sequence[int], np.ndarray]) -> "ColumnBatch":
        """A new batch holding the rows at ``indices`` (in that order)."""
        idx = np.asarray(indices, dtype=np.intp)
        batch = ColumnBatch._trusted(
            self.space,
            {name: col[idx] for name, col in self._columns.items()},
            int(idx.shape[0]),
        )
        batch._indices = {name: arr[idx] for name, arr in self._indices.items()}
        return batch

    def row(self, i: int) -> Configuration:
        """Materialise row ``i`` as a plain-dict configuration."""
        config: Configuration = {}
        for name, col in self._columns.items():
            value = col[i]
            config[name] = value.item() if isinstance(value, np.generic) else value
        return config

    def to_configurations(self) -> List[Configuration]:
        """Materialise the whole batch as plain-dict configurations.

        Values are converted to Python scalars (``ndarray.tolist``), so the
        dicts round-trip through ``repr``/CSV exactly like scalar-sampled
        configurations.
        """
        names = self.space.parameter_names
        lists = [self._columns[name].tolist() for name in names]
        return [dict(zip(names, row)) for row in zip(*lists)]

    # ------------------------------------------------------------ constructors
    @classmethod
    def concat(cls, batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Stack batches over equal spaces into one **encode-only** batch.

        The columnar codecs (:meth:`SearchSpace.key_array`,
        :meth:`SearchSpace.to_unit_array` and the numeric/one-hot encodings)
        are row-local — each output row depends only on its input row — so
        encoding the concatenation and slicing the result per member is
        bitwise equal to encoding each batch alone.  That property is what
        every stacked fleet pass rests on.  Memoised discrete-index columns
        cached by *all* inputs are concatenated rather than recomputed.

        The result is for encoding only: ``np.concatenate`` may promote
        numeric columns across members (int64 + float64 → float64), which is
        harmless for the float codecs but would change the value types that
        ``to_configurations`` materialises — keep ``take``/materialisation on
        the member batches, not on the stack.
        """
        batches = list(batches)
        if not batches:
            raise ValueError("concat needs at least one batch")
        if len(batches) == 1:
            return batches[0]
        space = batches[0].space
        for batch in batches[1:]:
            if batch.space is not space and batch.space != space:
                raise ValueError("all batches must share one search space")
        columns: Dict[str, np.ndarray] = {}
        for p in space:
            pieces = [batch._columns[p.name] for batch in batches]
            if any(piece.dtype == object for piece in pieces):
                pieces = [piece.astype(object) for piece in pieces]
            columns[p.name] = np.concatenate(pieces)
        stacked = cls._trusted(space, columns, sum(b._n for b in batches))
        for name in set.intersection(*(set(b._indices) for b in batches)):
            stacked._indices[name] = np.concatenate(
                [batch._indices[name] for batch in batches]
            )
        return stacked

    @classmethod
    def from_configurations(
        cls, space: "SearchSpace", configs: Sequence[Mapping[str, Any]]
    ) -> "ColumnBatch":
        """Build a columnar batch from row-major configurations."""
        columns: Dict[str, np.ndarray] = {}
        for p in space:
            values = [config[p.name] for config in configs]
            if isinstance(p, (RealParameter, IntegerParameter)):
                columns[p.name] = np.asarray(values)
            else:
                col = np.empty(len(values), dtype=object)
                for i, v in enumerate(values):
                    col[i] = v
                columns[p.name] = col
        return cls(space, columns)

    def __repr__(self) -> str:
        return f"<ColumnBatch n={self._n} space={self.space!r}>"


#: Inputs accepted by the vectorised space codecs.
ConfigsLike = Union[Sequence[Mapping[str, Any]], ColumnBatch]


class SearchSpace:
    """An ordered collection of :class:`Parameter` objects.

    The space provides:

    * random sampling of configurations (optionally from a
      :class:`~repro.core.priors.JointPrior`), both row-major
      (:meth:`sample`) and columnar (:meth:`sample_columns`),
    * validation of configurations,
    * numeric encodings for the surrogate models (ordinal encoding and
      one-hot encoding), and
    * unit-cube encodings for the VAE and for distance computations.

    Parameters
    ----------
    parameters:
        Iterable of :class:`Parameter`.  Order defines the encoding order.
    name:
        Optional label (e.g. ``"4n-2s-20p"``).
    """

    def __init__(self, parameters: Iterable[Parameter], name: str = ""):
        params = list(parameters)
        if not params:
            raise ValueError("a search space needs at least one parameter")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names: {names}")
        self._params: List[Parameter] = params
        self._by_name: Dict[str, Parameter] = {p.name: p for p in params}
        self.name = name

    # ---------------------------------------------------------------- dunders
    def __len__(self) -> int:
        return len(self._params)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._params)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Parameter:
        return self._by_name[name]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SearchSpace):
            return NotImplemented
        return self._params == other._params

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<SearchSpace{label} n={len(self._params)}>"

    # ------------------------------------------------------------- properties
    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        """The parameters, in encoding order."""
        return tuple(self._params)

    @property
    def parameter_names(self) -> Tuple[str, ...]:
        """Parameter names, in encoding order."""
        return tuple(p.name for p in self._params)

    @property
    def cardinality(self) -> float:
        """Total number of distinct configurations (``inf`` if any real param)."""
        total = 1.0
        for p in self._params:
            total *= p.cardinality
        return total

    # ----------------------------------------------------------------- checks
    def validate(self, config: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` if ``config`` is not a full, legal configuration."""
        missing = [n for n in self.parameter_names if n not in config]
        if missing:
            raise ValueError(f"configuration is missing parameters: {missing}")
        extra = [n for n in config if n not in self._by_name]
        if extra:
            raise ValueError(f"configuration has unknown parameters: {extra}")
        for p in self._params:
            if not p.contains(config[p.name]):
                raise ValueError(
                    f"value {config[p.name]!r} is illegal for parameter {p.name!r} ({p!r})"
                )

    def contains(self, config: Mapping[str, Any]) -> bool:
        """Whether ``config`` is a full, legal configuration of this space."""
        try:
            self.validate(config)
        except ValueError:
            return False
        return True

    # --------------------------------------------------------------- sampling
    def sample(
        self,
        n: int,
        rng: np.random.Generator,
        prior: Optional["JointPriorLike"] = None,
    ) -> List[Configuration]:
        """Draw ``n`` configurations (row-major dicts).

        Parameters
        ----------
        n:
            Number of configurations to draw.
        rng:
            NumPy random generator.
        prior:
            Optional joint prior providing ``sample_configurations(n, rng)``.
            When omitted every parameter uses its default (uniform or
            log-uniform) distribution — the "user-defined prior" of the paper.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return []
        if prior is not None:
            configs = prior.sample_configurations(n, rng)
            return [self.clip(c) for c in configs]
        return self.sample_columns(n, rng).to_configurations()

    def sample_columns(
        self,
        n: int,
        rng: np.random.Generator,
        prior: Optional["JointPriorLike"] = None,
    ) -> ColumnBatch:
        """Draw ``n`` configurations directly into a columnar batch.

        This is the hot-path variant of :meth:`sample`: no per-configuration
        dicts are built.  Priors implementing ``sample_columns`` (all priors
        in :mod:`repro.core.priors` and :mod:`repro.core.transfer`) sample
        whole columns at once and are trusted to produce in-domain values, so
        no per-row clipping pass is needed.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if prior is not None:
            return ColumnBatch(self, prior.sample_columns(n, rng))
        return ColumnBatch(
            self, {p.name: p.sample(rng, size=n) for p in self._params}
        )

    def clip(self, config: Mapping[str, Any]) -> Configuration:
        """Project an arbitrary mapping onto the closest legal configuration."""
        out: Configuration = {}
        for p in self._params:
            if p.name not in config:
                raise ValueError(f"configuration is missing parameter {p.name!r}")
            value = config[p.name]
            if p.contains(value):
                out[p.name] = value
                continue
            if isinstance(p, (RealParameter, IntegerParameter)):
                try:
                    v = float(value)
                except (TypeError, ValueError):
                    raise ValueError(
                        f"cannot clip non-numeric value {value!r} for {p.name!r}"
                    ) from None
                v = min(p.high, max(p.low, v))
                out[p.name] = int(round(v)) if isinstance(p, IntegerParameter) else v
            else:
                # Snap to the nearest category/value in unit space.
                out[p.name] = p.from_unit(0.5) if not _snappable(p, value) else _snap(p, value)
        return out

    def clip_columns(
        self, columns: Mapping[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Columnar :meth:`clip`: project whole value columns into the space.

        In-domain values pass through untouched (same objects, so value types
        survive exactly as in the per-row path); out-of-domain numeric values
        are clipped to the bounds (rounded for integer parameters) and
        out-of-domain discrete values snap like :meth:`clip` does.  The
        output is bit-compatible with mapping :meth:`clip` over materialised
        row dicts — pinned by the transfer-learning tests — without building
        any row dict.  Columns whose values are all legal are returned as-is.
        """
        out: Dict[str, np.ndarray] = {}
        for p in self._params:
            if p.name not in columns:
                raise ValueError(f"columns are missing parameter {p.name!r}")
            col = np.asarray(columns[p.name])
            if isinstance(p, (RealParameter, IntegerParameter)):
                try:
                    values = col.astype(float)
                except (TypeError, ValueError):
                    raise ValueError(
                        f"cannot clip non-numeric values for {p.name!r}"
                    ) from None
                inside = (values >= p.low) & (values <= p.high)
                if isinstance(p, IntegerParameter):
                    inside &= values == np.rint(values)
                bad = np.flatnonzero(~inside)
                if bad.size == 0:
                    out[p.name] = col
                    continue
                fixed = col.astype(object)
                for j in bad:
                    # Same scalar arithmetic as clip() so the columns stay
                    # bit-compatible with the per-row path (incl. non-finite
                    # values, which Python's min/max settle on a bound).
                    v = min(p.high, max(p.low, float(values[j])))
                    fixed[j] = int(round(v)) if isinstance(p, IntegerParameter) else v
                out[p.name] = fixed
            else:
                # Discrete parameters: membership via the (first-wins) index
                # map; the rare out-of-domain value snaps exactly like clip.
                index_map = p._index_map()  # type: ignore[attr-defined]
                bad = []
                for j, v in enumerate(col):
                    try:
                        known = v in index_map
                    except TypeError:
                        known = False
                    if not known and not p.contains(v):
                        bad.append(j)
                if not bad:
                    out[p.name] = col
                    continue
                fixed = col.astype(object)
                for j in bad:
                    v = col[j]
                    fixed[j] = _snap(p, v) if _snappable(p, v) else p.from_unit(0.5)
                out[p.name] = fixed
        return out

    # ----------------------------------------------------- column extraction
    def _column_values(self, configs: ConfigsLike) -> Tuple[int, List[Any]]:
        """Per-parameter value columns of ``configs`` (dicts or ColumnBatch)."""
        if isinstance(configs, ColumnBatch):
            if configs.space is not self and configs.space != self:
                raise ValueError("the batch belongs to a different search space")
            return len(configs), [configs.column(p.name) for p in self._params]
        columns = []
        for p in self._params:
            columns.append([config[p.name] for config in configs])
        return len(configs), columns

    # -------------------------------------------------------------- encodings
    @staticmethod
    def _is_tiny_rows(configs: ConfigsLike) -> bool:
        """Whether ``configs`` is a short row-major list worth a scalar path.

        The asynchronous tell path encodes one or two configurations per
        manager interaction; building per-parameter columns for those costs
        more than the encoding itself.
        """
        return (
            isinstance(configs, (list, tuple))
            and 0 < len(configs) <= 4
            and isinstance(configs[0], Mapping)
        )

    def to_unit_array(self, configs: ConfigsLike) -> np.ndarray:
        """Encode configurations into the unit hypercube (one row per config)."""
        batch = configs if isinstance(configs, ColumnBatch) else None
        n, columns = self._column_values(configs)
        arr = np.empty((n, len(self._params)), dtype=float)
        for j, (p, col) in enumerate(zip(self._params, columns)):
            if batch is not None and isinstance(p, _IndexedDiscreteMixin):
                arr[:, j] = p.unit_from_indices(batch.discrete_indices(p))
            else:
                arr[:, j] = p.to_unit_vec(col)
        return arr

    def from_unit_array(self, arr: np.ndarray) -> List[Configuration]:
        """Decode unit-hypercube rows back into configurations."""
        return self.from_unit_columns(arr).to_configurations()

    def from_unit_columns(self, arr: np.ndarray) -> ColumnBatch:
        """Decode unit-hypercube rows into a columnar batch."""
        arr = np.atleast_2d(np.asarray(arr, dtype=float))
        if arr.shape[1] != len(self._params):
            raise ValueError(
                f"expected {len(self._params)} columns, got {arr.shape[1]}"
            )
        return ColumnBatch(
            self,
            {p.name: p.from_unit_vec(arr[:, j]) for j, p in enumerate(self._params)},
        )

    def to_numeric_array(self, configs: ConfigsLike) -> np.ndarray:
        """Ordinal numeric encoding used by tree-based surrogates.

        Integer/real parameters map to their value, log-scaled when the
        parameter is log-uniform; categorical and ordinal parameters map to
        their index.  For log-uniform parameters, values are clipped to the
        parameter's (strictly positive) lower bound before taking the log, so
        a non-positive out-of-domain value can never silently mix a
        linear-scale number into an otherwise log-scale column.
        """
        if self._is_tiny_rows(configs):
            # Row path for one-or-two-row inputs (the tell hot path): scalar
            # NumPy ufuncs hit the same libm kernels as the column ops, so
            # the cells are bit-identical to the columnar encoding at a
            # fraction of the per-column overhead.
            arr = np.empty((len(configs), len(self._params)), dtype=float)
            for i, config in enumerate(configs):
                for j, p in enumerate(self._params):
                    v = config[p.name]
                    if isinstance(p, (RealParameter, IntegerParameter)):
                        x = np.float64(v)
                        arr[i, j] = np.log(np.maximum(x, p.low)) if p.log else x
                    else:
                        arr[i, j] = p.index_of(v)
            return arr
        batch = configs if isinstance(configs, ColumnBatch) else None
        n, columns = self._column_values(configs)
        arr = np.empty((n, len(self._params)), dtype=float)
        for j, (p, col) in enumerate(zip(self._params, columns)):
            if isinstance(p, (RealParameter, IntegerParameter)):
                v = np.asarray(col, dtype=float)
                arr[:, j] = np.log(np.maximum(v, p.low)) if p.log else v
            elif batch is not None:
                arr[:, j] = batch.discrete_indices(p)
            else:
                arr[:, j] = p.indices_vec(col)
        return arr

    def one_hot_dimension(self) -> int:
        """Number of columns of the one-hot encoding."""
        dim = 0
        for p in self._params:
            if isinstance(p, CategoricalParameter):
                dim += len(p.categories)
            else:
                dim += 1
        return dim

    def to_one_hot_array(self, configs: ConfigsLike) -> np.ndarray:
        """One-hot encoding used by the Gaussian-process surrogate.

        Numeric and ordinal parameters occupy one column each (scaled to the
        unit interval); each categorical parameter expands into one column per
        category.
        """
        batch = configs if isinstance(configs, ColumnBatch) else None
        n, columns = self._column_values(configs)
        arr = np.zeros((n, self.one_hot_dimension()), dtype=float)
        rows = np.arange(n)
        col = 0
        for p, values in zip(self._params, columns):
            if isinstance(p, CategoricalParameter):
                indices = (
                    batch.discrete_indices(p) if batch is not None else p.indices_vec(values)
                )
                arr[rows, col + indices] = 1.0
                col += len(p.categories)
            elif batch is not None and isinstance(p, _IndexedDiscreteMixin):
                arr[:, col] = p.unit_from_indices(batch.discrete_indices(p))
                col += 1
            else:
                arr[:, col] = p.to_unit_vec(values)
                col += 1
        return arr

    def key_array(self, configs: ConfigsLike) -> np.ndarray:
        """Raw-value matrix used for exact-duplicate detection (one row per config).

        Numeric parameters contribute their raw value (no log scaling, no unit
        transform — raw values pass through sampling, proposal and ``tell``
        bitwise unchanged, whereas transcendental transforms may differ in the
        last ulp between code paths); discrete parameters contribute their
        index.  ``row.tobytes()`` of a row is therefore a stable dedup key.
        """
        if self._is_tiny_rows(configs):
            arr = np.empty((len(configs), len(self._params)), dtype=float)
            for i, config in enumerate(configs):
                for j, p in enumerate(self._params):
                    v = config[p.name]
                    if isinstance(p, (RealParameter, IntegerParameter)):
                        arr[i, j] = np.float64(v)
                    else:
                        arr[i, j] = p.index_of(v)
            return arr
        batch = configs if isinstance(configs, ColumnBatch) else None
        n, columns = self._column_values(configs)
        arr = np.empty((n, len(self._params)), dtype=float)
        for j, (p, col) in enumerate(zip(self._params, columns)):
            if isinstance(p, (RealParameter, IntegerParameter)):
                arr[:, j] = np.asarray(col, dtype=float)
            elif batch is not None:
                arr[:, j] = batch.discrete_indices(p)
            else:
                arr[:, j] = p.indices_vec(col)
        return arr

    # --------------------------------------- reference (scalar) encodings
    # The pre-columnar per-element implementations, kept as the ground truth
    # for the property-based equivalence tests and for benchmarks that need to
    # reconstruct the pre-vectorisation cost profile.  Semantics match the
    # vectorised codecs (including the log clip fix in to_numeric_array) up to
    # ≤1-ulp differences between math.log/exp and np.log/exp.

    def to_unit_array_loop(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Reference scalar implementation of :meth:`to_unit_array`."""
        arr = np.empty((len(configs), len(self._params)), dtype=float)
        for i, config in enumerate(configs):
            for j, p in enumerate(self._params):
                arr[i, j] = p.to_unit(config[p.name])
        return arr

    def from_unit_array_loop(self, arr: np.ndarray) -> List[Configuration]:
        """Reference scalar implementation of :meth:`from_unit_array`."""
        arr = np.atleast_2d(np.asarray(arr, dtype=float))
        if arr.shape[1] != len(self._params):
            raise ValueError(
                f"expected {len(self._params)} columns, got {arr.shape[1]}"
            )
        configs = []
        for row in arr:
            configs.append(
                {p.name: p.from_unit(float(u)) for p, u in zip(self._params, row)}
            )
        return configs

    def to_numeric_array_loop(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Reference scalar implementation of :meth:`to_numeric_array`."""
        arr = np.empty((len(configs), len(self._params)), dtype=float)
        for i, config in enumerate(configs):
            for j, p in enumerate(self._params):
                value = config[p.name]
                if isinstance(p, (RealParameter, IntegerParameter)):
                    v = float(value)
                    arr[i, j] = math.log(max(v, p.low)) if p.log else v
                else:
                    arr[i, j] = float(p.index_of(value))
        return arr

    def to_one_hot_array_loop(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Reference scalar implementation of :meth:`to_one_hot_array`."""
        arr = np.zeros((len(configs), self.one_hot_dimension()), dtype=float)
        for i, config in enumerate(configs):
            col = 0
            for p in self._params:
                value = config[p.name]
                if isinstance(p, CategoricalParameter):
                    arr[i, col + p.index_of(value)] = 1.0
                    col += len(p.categories)
                else:
                    arr[i, col] = p.to_unit(value)
                    col += 1
        return arr

    # ------------------------------------------------------------ composition
    def subspace(self, names: Sequence[str], name: str = "") -> "SearchSpace":
        """A new space restricted to ``names`` (preserving this space's order)."""
        unknown = [n for n in names if n not in self._by_name]
        if unknown:
            raise ValueError(f"unknown parameters: {unknown}")
        selected = [p for p in self._params if p.name in set(names)]
        return SearchSpace(selected, name=name)

    def union(self, other: "SearchSpace", name: str = "") -> "SearchSpace":
        """A space containing this space's parameters plus ``other``'s new ones."""
        params = list(self._params)
        for p in other:
            if p.name not in self._by_name:
                params.append(p)
        return SearchSpace(params, name=name)

    def common_parameters(self, other: "SearchSpace") -> List[str]:
        """Names present in both spaces (used by transfer learning)."""
        return [p.name for p in self._params if p.name in other]

    def new_parameters(self, previous: "SearchSpace") -> List[str]:
        """Names present here but absent from ``previous`` (Algorithm 1, l.3)."""
        return [p.name for p in self._params if p.name not in previous]


def _snappable(param: Parameter, value: Any) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating))


def _snap(param: Parameter, value: Any) -> Any:
    """Snap a numeric value to the nearest allowed discrete value."""
    if isinstance(param, OrdinalParameter):
        vals = [v for v in param.values if isinstance(v, (int, float))]
        if vals:
            return min(vals, key=lambda v: abs(v - float(value)))
    return param.from_unit(0.5)


class JointPriorLike:
    """Structural protocol for joint priors (see :mod:`repro.core.priors`)."""

    def sample_configurations(self, n: int, rng: np.random.Generator) -> List[Configuration]:
        raise NotImplementedError

    def sample_columns(self, n: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        raise NotImplementedError
