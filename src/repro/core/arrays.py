"""Shared append-only NumPy buffer utilities.

The columnar hot paths (the optimizer's encoded-history cache, the columnar
:class:`~repro.core.history.SearchHistory`, the GP's incremental training-set
buffers) all append rows into capacity-doubling arrays.  This module holds
the one growth routine they share so the doubling invariant lives in a single
place.
"""

from __future__ import annotations

import numpy as np

__all__ = ["grow_buffer"]


def grow_buffer(buf: np.ndarray, needed: int, min_capacity: int = 64) -> np.ndarray:
    """Return ``buf`` or an enlarged copy able to hold ``needed`` rows.

    Growth doubles the leading dimension (starting at ``min_capacity``) until
    it fits, copying the existing rows; trailing dimensions and dtype are
    preserved.  Rows beyond the copied region are uninitialised — callers
    track their own fill count.
    """
    if needed <= buf.shape[0]:
        return buf
    capacity = max(min_capacity, 2 * buf.shape[0])
    while capacity < needed:
        capacity *= 2
    grown = np.empty((capacity,) + buf.shape[1:], dtype=buf.dtype)
    grown[: buf.shape[0]] = buf
    return grown
