"""Row-major reference implementation of the search history.

The columnar :class:`~repro.core.history.SearchHistory` replaced a list of
:class:`~repro.core.history.Evaluation` dataclasses with per-row derived
views.  This module preserves those original per-row algorithms verbatim —
the same role the ``*_loop`` codecs play in :mod:`repro.core.space` and the
recursive builder plays in the random forest: a ground truth for the
property-based equivalence tests (``tests/core/test_history_columnar.py``)
and the cost baseline for the history microbenchmark
(``benchmarks/bench_ask_tell_scaling.py``).  It is **not** part of the
public search API.

Historical semantics worth preserving exactly:

* :meth:`RowHistoryReference.incumbent_trajectory` skips *failed*
  evaluations (non-finite objective), even when a finite runtime was
  recorded (e.g. ``runtime=0``);
* :meth:`RowHistoryReference.best_runtime_at` instead considers every
  finite runtime, failed or not.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.history import Evaluation
from repro.core.objective import Objective
from repro.core.space import Configuration, SearchSpace

__all__ = ["RowHistoryReference"]


class RowHistoryReference:
    """The former list-of-dataclasses storage and its per-row derived views."""

    def __init__(self, space: SearchSpace, objective: Optional[Objective] = None):
        self.space = space
        self.objective = objective or Objective()
        self.evaluations: List[Evaluation] = []

    def append(self, evaluation: Evaluation) -> None:
        self.evaluations.append(evaluation)

    def record(
        self,
        configuration: Configuration,
        runtime: float,
        submitted: float,
        completed: float,
        worker: int = 0,
    ) -> Evaluation:
        evaluation = Evaluation(
            configuration=dict(configuration),
            objective=self.objective.from_runtime(runtime),
            runtime=float(runtime) if runtime is not None else float("nan"),
            submitted=float(submitted),
            completed=float(completed),
            worker=int(worker),
            eval_id=len(self.evaluations),
        )
        self.append(evaluation)
        return evaluation

    def objectives(self) -> np.ndarray:
        return np.asarray([ev.objective for ev in self.evaluations], dtype=float)

    def incumbent_trajectory(self) -> List[Tuple[float, float]]:
        points: List[Tuple[float, float]] = []
        best = float("inf")
        for ev in sorted(self.evaluations, key=lambda e: e.completed):
            if ev.failed:
                continue
            if ev.runtime < best:
                best = ev.runtime
                points.append((ev.completed, best))
        return points

    def best_runtime_at(self, time: float) -> float:
        runtimes = np.asarray([ev.runtime for ev in self.evaluations], dtype=float)
        completed = np.asarray([ev.completed for ev in self.evaluations], dtype=float)
        known = np.isfinite(runtimes) & (completed <= time)
        if not np.any(known):
            return float("inf")
        return float(np.min(runtimes[known]))

    def top_quantile(self, q: float) -> List[Configuration]:
        ok = [ev for ev in self.evaluations if not ev.failed]
        if not ok:
            return []
        objectives = np.asarray([ev.objective for ev in ok], dtype=float)
        threshold = np.quantile(objectives, 1.0 - q)
        selected = [ev.configuration for ev in ok if ev.objective >= threshold]
        if not selected:
            selected = [max(ok, key=lambda ev: ev.objective).configuration]
        return selected
