"""Tree-structured Parzen estimator (the model behind HiPerBOt).

TPE does not regress the objective; it models two densities over
configurations — ``l(x)`` for the best observations and ``g(x)`` for the
rest — and ranks candidates by the ratio ``l(x)/g(x)``.  The paper compares
against HiPerBOt, whose BO "utilizes a Tree Parzen Estimator (that uses a
kernel density estimator and histograms for discrete parameters)"; this module
implements exactly that: per-dimension Gaussian KDEs for numeric columns and
smoothed histograms for categorical columns.

To stay interchangeable with the regression surrogates, the class also exposes
the :class:`~repro.core.surrogate.base.Surrogate` interface: ``predict``
returns the negated density ratio as the "mean" (so that LCB-style
minimisation of the mean still prefers high-ratio candidates) with a constant
standard deviation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.surrogate.base import Surrogate

__all__ = ["TreeParzenEstimator"]


class _ColumnDensity:
    """Density estimate of one (numeric or categorical) encoded column."""

    def __init__(self, values: np.ndarray, is_categorical: bool, prior_width: float):
        self.is_categorical = is_categorical
        values = np.asarray(values, dtype=float)
        if is_categorical:
            cats, counts = np.unique(values, return_counts=True)
            # Additive smoothing so unseen categories keep non-zero density.
            self._cats = cats
            self._probs = (counts + 1.0) / (counts.sum() + len(cats))
            self._floor = 1.0 / (counts.sum() + len(cats) + 1.0)
        else:
            self._points = values
            n = max(len(values), 1)
            spread = np.std(values)
            if spread <= 0:
                spread = prior_width
            # Scott's rule bandwidth, floored to keep the density proper.
            self._bandwidth = max(spread * n ** (-1.0 / 5.0), 1e-3 * prior_width, 1e-6)

    def log_density(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if self.is_categorical:
            probs = np.full(x.shape, self._floor)
            for cat, p in zip(self._cats, self._probs):
                probs[np.isclose(x, cat)] = p
            return np.log(probs)
        diff = (x[:, None] - self._points[None, :]) / self._bandwidth
        kernel = np.exp(-0.5 * diff**2)
        dens = kernel.mean(axis=1) / (self._bandwidth * np.sqrt(2 * np.pi))
        return np.log(np.maximum(dens, 1e-300))


class TreeParzenEstimator(Surrogate):
    """Density-ratio model over encoded configurations.

    Parameters
    ----------
    gamma:
        Fraction of observations considered "good" (HiPerBOt-style default
        0.15).
    categorical_columns:
        Indices of the encoded columns that hold categorical (index-coded)
        values; all other columns are treated as continuous.
    prior_width:
        Scale used when a column has zero spread (bandwidth floor).
    min_observations:
        Below this number of observations :meth:`predict` falls back to a
        flat score (pure exploration).
    """

    def __init__(
        self,
        gamma: float = 0.15,
        categorical_columns: Optional[List[int]] = None,
        prior_width: float = 1.0,
        min_observations: int = 8,
    ):
        if not (0.0 < gamma < 1.0):
            raise ValueError("gamma must be in (0, 1)")
        self.gamma = gamma
        self.categorical_columns = set(categorical_columns or [])
        self.prior_width = prior_width
        self.min_observations = min_observations
        self.fitted = False
        self._good: List[_ColumnDensity] = []
        self._bad: List[_ColumnDensity] = []
        self._flat = True

    def fit(self, X: np.ndarray, y: np.ndarray) -> "TreeParzenEstimator":
        X, y = self._validate(X, y)
        n, d = X.shape
        self._flat = n < self.min_observations
        if self._flat:
            self.fitted = True
            return self
        # "Good" = highest objective values (we maximise objectives).
        n_good = max(1, int(np.ceil(self.gamma * n)))
        order = np.argsort(y)[::-1]
        good_idx = order[:n_good]
        bad_idx = order[n_good:]
        if bad_idx.size == 0:
            bad_idx = order
        self._good = [
            _ColumnDensity(X[good_idx, j], j in self.categorical_columns, self.prior_width)
            for j in range(d)
        ]
        self._bad = [
            _ColumnDensity(X[bad_idx, j], j in self.categorical_columns, self.prior_width)
            for j in range(d)
        ]
        self.fitted = True
        return self

    # ------------------------------------------------------------------ score
    def score(self, X: np.ndarray) -> np.ndarray:
        """Log density ratio ``log l(x) - log g(x)`` (higher = more promising)."""
        if not self.fitted:
            raise RuntimeError("the TPE has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if self._flat:
            return np.zeros(X.shape[0])
        log_l = np.zeros(X.shape[0])
        log_g = np.zeros(X.shape[0])
        for j in range(X.shape[1]):
            log_l += self._good[j].log_density(X[:, j])
            log_g += self._bad[j].log_density(X[:, j])
        return log_l - log_g

    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Surrogate-compatible view: mean = density-ratio score, unit std."""
        scores = self.score(X)
        return scores, np.ones_like(scores)
