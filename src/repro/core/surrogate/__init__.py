"""Surrogate models for Bayesian optimization.

Three surrogate families are used in the paper's experiments:

* :class:`~repro.core.surrogate.random_forest.RandomForestSurrogate` — the
  default DeepHyper surrogate ("RF"); cheap to update, uncertainty from the
  spread of per-tree predictions.
* :class:`~repro.core.surrogate.gaussian_process.GaussianProcessSurrogate` —
  the "GP" alternative (and the model GPtune relies on); accurate but with
  :math:`O(n^3)` update cost, which is what degrades worker utilisation in
  Fig. 4 (d)/(f).
* :class:`~repro.core.surrogate.tpe.TreeParzenEstimator` — the density-ratio
  model HiPerBOt uses; not a regression surrogate but exposed through a
  compatible scoring interface.

All models are implemented from scratch on NumPy (no scikit-learn available in
this environment) behind the common
:class:`~repro.core.surrogate.base.Surrogate` interface.
"""

from repro.core.surrogate.base import Surrogate, ConstantSurrogate
from repro.core.surrogate.random_forest import DecisionTreeRegressor, RandomForestSurrogate
from repro.core.surrogate.gaussian_process import (
    GaussianProcessSurrogate,
    GPFleet,
    gp_fleet_key,
)
from repro.core.surrogate.tpe import TreeParzenEstimator

__all__ = [
    "ConstantSurrogate",
    "DecisionTreeRegressor",
    "GaussianProcessSurrogate",
    "GPFleet",
    "RandomForestSurrogate",
    "Surrogate",
    "TreeParzenEstimator",
    "gp_fleet_key",
]
