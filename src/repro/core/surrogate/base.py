"""Common interface of surrogate models."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

__all__ = ["Surrogate", "ConstantSurrogate"]


class Surrogate(ABC):
    """A regression model with predictive uncertainty.

    The asynchronous Bayesian optimizer only needs two operations:

    * :meth:`fit` on the numerically encoded evaluated configurations and
      their objectives, and
    * :meth:`predict` returning a mean and a standard deviation per candidate
      (the uncertainty drives the exploration term of the LCB acquisition).

    Models that can incorporate new observations cheaper than a full refit
    (the GP's rank-1 Cholesky extension) additionally expose
    :meth:`partial_fit` and advertise it through
    :attr:`supports_partial_fit`; the optimizer's ``tell`` feeds them only the
    rows appended since the last fit.
    """

    #: Whether the model has been fitted at least once.
    fitted: bool = False

    #: Whether :meth:`partial_fit` is implemented as an incremental update.
    supports_partial_fit: bool = False

    @abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Surrogate":
        """Fit the model on ``X`` (n×d) and ``y`` (n,).  Returns ``self``."""

    @abstractmethod
    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Predict mean and standard deviation for each row of ``X``."""

    def partial_fit(self, X_new: np.ndarray, y_new: np.ndarray) -> "Surrogate":
        """Incorporate new rows into an already fitted model.

        The default implementation raises: models without an incremental
        update keep ``supports_partial_fit = False`` and are always refitted
        on the full training set by the optimizer.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support incremental fitting"
        )

    # ------------------------------------------------------------------ utils
    @staticmethod
    def _validate(X: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X and y have inconsistent lengths: {X.shape[0]} vs {y.shape[0]}"
            )
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not np.all(np.isfinite(X)):
            raise ValueError("X contains non-finite values")
        if not np.all(np.isfinite(y)):
            raise ValueError("y contains non-finite values (fill failures first)")
        return X, y


class ConstantSurrogate(Surrogate):
    """A trivial surrogate predicting the training mean everywhere.

    Used as the model behind pure random sampling ("RAND" in the paper): the
    acquisition function then carries no information and candidate selection
    degenerates to the prior distribution.
    """

    def __init__(self) -> None:
        self._mean = 0.0
        self._std = 1.0
        self.fitted = False

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ConstantSurrogate":
        X, y = self._validate(X, y)
        self._mean = float(np.mean(y))
        self._std = float(np.std(y)) if y.shape[0] > 1 else 1.0
        self.fitted = True
        return self

    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n = X.shape[0]
        return np.full(n, self._mean), np.full(n, max(self._std, 1e-12))
