"""Gaussian-process surrogate (the "GP" model of Fig. 4 and GPtune's model).

A standard GP regressor with an anisotropic RBF kernel plus white noise,
implemented on NumPy's Cholesky and thin LAPACK solve wrappers.
Hyperparameters are set by a
light-weight heuristic (median-distance length scales, signal variance from
the data variance) with an optional marginal-likelihood grid refinement —
enough to be a competent surrogate while keeping the implementation
self-contained.

The important property for the reproduction is the :math:`O(n^3)` update cost:
the asynchronous search charges this cost to the manager (see
:mod:`repro.core.overhead`), which is what collapses worker utilisation for GP
in Fig. 4 (d)/(f).

Two fit paths are provided:

* :meth:`GaussianProcessSurrogate.fit` — the full reference fit: choose
  hyperparameters from the data, build the kernel, factorise from scratch.
* :meth:`GaussianProcessSurrogate.partial_fit` — the incremental hot path
  used by the optimizer's ``tell``: new observations extend the existing
  Cholesky factor by rank-1 block updates (:math:`O(n^2)` per batch instead
  of :math:`O(n^3)`), with hyperparameters frozen between scheduled full
  refreshes.  Between refreshes the extended factor equals the full
  factorisation of the same kernel up to floating-point rounding, so
  posteriors match the reference fit to far better than ``1e-8``; a refresh
  (triggered once the history grows by ``refresh_growth``) re-runs the full
  reference fit so hyperparameters keep tracking the data.

Both paths also come in a *fleet* form: :class:`GPFleet` advances K member
GPs at once — stacked ``(K, n, n)`` kernel matrices, one batched
``np.linalg.cholesky`` per full refit, one batched factor extension per
``partial_fit`` round, and one batched cross-kernel per posterior
prediction.  Every batched operation is chosen so its per-member slice is
**bitwise identical** to the solo method on the same member (stacked
elementwise ops, per-slice BLAS contractions, batched LAPACK ``potrf``; the
remaining per-member triangular solves call the very same LAPACK wrappers), so
a fleet of campaigns proposes exactly what the campaigns would propose one by
one.  Fleets require equal member shapes — ragged fleets (the norm for GPs,
whose training sets grow per campaign) are grouped by :func:`gp_fleet_key`
and fall back to solo fits where shapes cannot align.  Padding was measured
and rejected: BLAS results on this hardware are not bitwise stable under
zero-padding, which would silently void the identity guarantee.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg.lapack import dpotrs, dtrtrs

from repro.core.arrays import grow_buffer
from repro.core.surrogate.base import Surrogate

__all__ = ["GaussianProcessSurrogate", "GPFleet", "gp_fleet_key"]


def _pairwise_sq_dists(A: np.ndarray, B: np.ndarray, length_scales: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between scaled rows of A and B."""
    As = A / length_scales
    Bs = B / length_scales
    a2 = np.sum(As**2, axis=1)[:, None]
    b2 = np.sum(Bs**2, axis=1)[None, :]
    d2 = a2 + b2 - 2.0 * As @ Bs.T
    return np.maximum(d2, 0.0)


def _batched_sq_dists(
    A: np.ndarray, B: np.ndarray, length_scales: np.ndarray
) -> np.ndarray:
    """Per-member scaled squared distances, ``(K, a, b)``.

    The stacked form of :func:`_pairwise_sq_dists` over ``(K, a, d)`` /
    ``(K, b, d)`` row stacks with per-member length scales ``(K, d)``.  Every
    operation is elementwise, a contiguous-axis row reduction, or a per-slice
    BLAS contraction, so each member's slice is bitwise identical to the 2-D
    function on that member's matrices — the property the fleet identity
    guarantee rests on.
    """
    As = A / length_scales[:, None, :]
    Bs = B / length_scales[:, None, :]
    a2 = np.sum(As**2, axis=2)[:, :, None]
    b2 = np.sum(Bs**2, axis=2)[:, None, :]
    d2 = a2 + b2 - 2.0 * As @ Bs.transpose(0, 2, 1)
    return np.maximum(d2, 0.0)


def _cho_solve_lower(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``cho_solve((L, True), b)`` through the raw LAPACK ``potrs`` wrapper.

    Bitwise identical to SciPy's ``cho_solve`` (measured — both dispatch the
    same ``dpotrs`` with the same flags) but without its per-call validation
    overhead, which at fleet scale is a measurable share of every tick.
    """
    x, info = dpotrs(L, b, lower=1)
    if info != 0:
        raise np.linalg.LinAlgError(f"potrs failed with info={info}")
    return x


def _solve_lower_triangular(L: np.ndarray, B: np.ndarray) -> np.ndarray:
    """``solve_triangular(L, B, lower=True)`` through raw LAPACK ``trtrs``.

    Bitwise identical to the SciPy wrapper (measured), minus its per-call
    validation overhead.
    """
    x, info = dtrtrs(L, B, lower=1, trans=0, unitdiag=0)
    if info != 0:
        raise np.linalg.LinAlgError(f"trtrs failed with info={info}")
    return x


#: The (noise, signal-variance) grid the marginal-likelihood refinement
#: scans, in scan order.  One definition shared by the solo fit and the
#: batched fleet fit so their selections can never drift apart.
_HYPERPARAMETER_GRID = tuple(
    (noise, signal)
    for noise in (1e-6, 1e-4, 1e-2, 1e-1)
    for signal in (0.5, 1.0, 2.0)
)


def _cholesky_with_jitter(K: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of ``K``, retrying once with a jittered diagonal.

    Mutates ``K`` in place on the retry (callers treat it as scratch).
    """
    try:
        return np.linalg.cholesky(K)
    except np.linalg.LinAlgError:
        K[np.diag_indices_from(K)] += 1e-6
        return np.linalg.cholesky(K)


def _batched_cholesky_each(K_stack: np.ndarray) -> List[Optional[np.ndarray]]:
    """Per-slice lower Cholesky factors of a ``(K, n, n)`` stack.

    One batched ``np.linalg.cholesky`` in the common all-definite case; the
    batched gufunc fails as a whole when *any* slice is indefinite, so on
    failure every slice is redone solo (same LAPACK kernel, so the definite
    slices lose nothing) and the indefinite ones come back as ``None`` for
    the caller to skip or repair.
    """
    try:
        return list(np.linalg.cholesky(K_stack))
    except np.linalg.LinAlgError:
        factors: List[Optional[np.ndarray]] = []
        for i in range(K_stack.shape[0]):
            try:
                factors.append(np.linalg.cholesky(K_stack[i]))
            except np.linalg.LinAlgError:
                factors.append(None)
        return factors


def _log_marginal_likelihood(L: np.ndarray, y_n: np.ndarray) -> float:
    """Gaussian log marginal likelihood from a kernel's lower factor."""
    alpha = _cho_solve_lower(L, y_n)
    log_det = 2.0 * np.sum(np.log(np.diag(L)))
    n = y_n.shape[0]
    return -0.5 * float(y_n @ alpha) - 0.5 * log_det - 0.5 * n * np.log(2 * np.pi)


class GaussianProcessSurrogate(Surrogate):
    """GP regression with an RBF kernel and white noise.

    Parameters
    ----------
    noise:
        Observation noise variance added to the kernel diagonal.
    length_scale:
        Initial isotropic length scale; refined from the data when
        ``auto_hyperparameters`` is True.
    auto_hyperparameters:
        Whether to set length scales from the median pairwise distance and
        refine the noise/signal amplitude on a small grid by marginal
        likelihood.
    normalize_y:
        Whether to centre/scale the targets before fitting.
    incremental:
        Whether :meth:`partial_fit` extends the Cholesky factor by rank-1
        block updates (the hot path).  When False the surrogate advertises no
        partial-fit support and every update is a full reference refit — the
        pre-incremental behaviour, kept selectable for regression tests and
        benchmarks.
    refresh_growth:
        Hyperparameter-refresh schedule of the incremental path: a full
        reference fit (recomputing length scales and the noise/signal grid) is
        triggered whenever the training set has grown by this factor since the
        last full fit.  Between refreshes hyperparameters are frozen, which is
        what makes the rank-1 update exact.
    hyperparameter_grid:
        The (noise, signal-variance) combinations the marginal-likelihood
        refinement scans, in scan order; defaults to the module-wide grid.
        The grid participates in :func:`gp_fleet_key`, so members with
        different grids never share a fused full refit — a fused scan runs
        one grid for the whole stack and would silently impose the wrong
        grid on a disagreeing member.
    """

    def __init__(
        self,
        noise: float = 1e-4,
        length_scale: float = 1.0,
        auto_hyperparameters: bool = True,
        normalize_y: bool = True,
        incremental: bool = True,
        refresh_growth: float = 1.25,
        hyperparameter_grid: Optional[Sequence[Tuple[float, float]]] = None,
    ):
        if noise <= 0:
            raise ValueError("noise must be positive")
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        if refresh_growth <= 1.0:
            raise ValueError("refresh_growth must be > 1")
        if hyperparameter_grid is None:
            self.hyperparameter_grid: Tuple[Tuple[float, float], ...] = _HYPERPARAMETER_GRID
        else:
            self.hyperparameter_grid = tuple(
                (float(g_noise), float(g_signal))
                for g_noise, g_signal in hyperparameter_grid
            )
            if not self.hyperparameter_grid:
                raise ValueError("hyperparameter_grid must not be empty")
        self.noise = float(noise)
        self.length_scale = float(length_scale)
        self.auto_hyperparameters = bool(auto_hyperparameters)
        self.normalize_y = bool(normalize_y)
        self.incremental = bool(incremental)
        self.refresh_growth = float(refresh_growth)
        self.fitted = False
        self._X: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._cho = None
        self._length_scales: Optional[np.ndarray] = None
        self._signal_var = 1.0
        self._y_mean = 0.0
        self._y_std = 1.0
        self._noise_used = self.noise
        # Incremental state: training rows/targets and the lower Cholesky
        # factor live in capacity-doubling buffers so a partial_fit extends
        # them in place instead of refactorising from scratch.
        self._n = 0
        self._X_buf = np.empty((0, 0), dtype=float)
        self._y_raw_buf = np.empty(0, dtype=float)
        self._L_buf = np.zeros((0, 0), dtype=float)
        self._n_last_full = 0
        self.num_full_fits = 0
        self.num_partial_fits = 0

    # --------------------------------------------------------------- plumbing
    @property
    def supports_partial_fit(self) -> bool:
        """Whether :meth:`partial_fit` uses the incremental update."""
        return self.incremental

    @property
    def training_size(self) -> int:
        """Number of training rows the cached factor currently covers."""
        return self._n

    def _ensure_capacity(self, n: int, d: int) -> None:
        """Grow the X/y/L buffers to hold ``n`` rows of dimension ``d``."""
        if self._X_buf.shape[1] != d:
            self._X_buf = np.empty((0, d), dtype=float)
            self._y_raw_buf = np.empty(0, dtype=float)
            self._L_buf = np.zeros((0, 0), dtype=float)
            self._n = 0
        if n <= self._X_buf.shape[0]:
            return
        self._X_buf = grow_buffer(self._X_buf, n)
        self._y_raw_buf = grow_buffer(self._y_raw_buf, n)
        # The square factor buffer needs bespoke growth: zero-initialised so
        # the never-written upper triangle stays finite (SciPy's solvers
        # validate the whole array), matching the X buffer's capacity.
        capacity = self._X_buf.shape[0]
        L_grown = np.zeros((capacity, capacity), dtype=float)
        L_grown[: self._n, : self._n] = self._L_buf[: self._n, : self._n]
        self._L_buf = L_grown

    @staticmethod
    def _target_stats(y: np.ndarray, normalize: bool) -> Tuple[float, float]:
        """The (mean, std) normalisation statistics of a target vector.

        Pure — shared by :meth:`_normalize_targets` and the fleet's staged
        commit, so the statistic the bit-identity guarantee depends on has
        exactly one definition.
        """
        if normalize:
            return float(np.mean(y)), float(np.std(y)) or 1.0
        return 0.0, 1.0

    def _normalize_targets(self, y: np.ndarray) -> np.ndarray:
        self._y_mean, self._y_std = self._target_stats(y, self.normalize_y)
        return (y - self._y_mean) / self._y_std

    # -------------------------------------------------------------------- fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessSurrogate":
        """Full reference fit: hyperparameters from the data, fresh factor."""
        X, y = self._validate(X, y)
        n, d = X.shape
        y_n = self._normalize_targets(y)

        self._length_scales = self._choose_length_scales(X)
        self._signal_var = 1.0
        noise = self.noise
        E = None
        if self.auto_hyperparameters and n >= 8:
            # The unit-signal kernel exp(-0.5·D²) is shared by every grid
            # combination and the final factorisation — computed once.
            E = np.exp(-0.5 * _pairwise_sq_dists(X, X, self._length_scales))
            noise, self._signal_var = self._refine_hyperparameters(E, y_n)
        self._noise_used = noise

        self._store_training_set(X, y)
        self._factorize_full(y_n, E=E)
        self._n_last_full = n
        self.num_full_fits += 1
        self.fitted = True
        return self

    def _store_training_set(self, X: np.ndarray, y: np.ndarray) -> None:
        n, d = X.shape
        self._n = 0  # a full fit replaces the stored rows
        self._ensure_capacity(n, d)
        self._X_buf[:n] = X
        self._y_raw_buf[:n] = y
        self._n = n
        self._X = self._X_buf[:n]

    def _factorize_full(self, y_n: np.ndarray, E: Optional[np.ndarray] = None) -> None:
        """Factorise the kernel of the stored rows with current hyperparameters.

        ``E`` optionally passes in the precomputed unit-signal kernel
        ``exp(-0.5·D²)`` of the stored rows (:meth:`fit` shares it with the
        hyperparameter grid; recomputing it yields the same bits).  Uses
        ``np.linalg.cholesky`` — the same LAPACK kernel the batched
        :class:`GPFleet` stack factorisation dispatches per slice, so a solo
        fit and a fleet fit of the same member produce the same factor bits.
        """
        n = self._n
        if E is None:
            X = self._X_buf[:n]
            E = np.exp(-0.5 * _pairwise_sq_dists(X, X, self._length_scales))
        K = self._signal_var * E
        K[np.diag_indices_from(K)] += self._noise_used
        self._L_buf[:n, :n] = _cholesky_with_jitter(K)
        self._cho = (self._L_buf[:n, :n], True)
        self._alpha = _cho_solve_lower(self._cho[0], y_n)

    def refit_with_current_hyperparameters(
        self, X: np.ndarray, y: np.ndarray
    ) -> "GaussianProcessSurrogate":
        """Full refit that *keeps* the current hyperparameters.

        The reference the incremental path is checked against: a
        :meth:`partial_fit` sequence and this method produce the same kernel,
        so their posteriors must agree to floating-point rounding.
        """
        if not self.fitted:
            raise RuntimeError("the GP has not been fitted")
        X, y = self._validate(X, y)
        y_n = self._normalize_targets(y)
        self._store_training_set(X, y)
        self._factorize_full(y_n)
        return self

    # ---------------------------------------------------------- partial fit
    def partial_fit_plan(self, total_rows: int) -> str:
        """Which path :meth:`partial_fit` takes at this total training size.

        Returns ``"extend"`` (rank-1/block factor extension with frozen
        hyperparameters) or ``"full"`` (fall back to the reference
        :meth:`fit`, refreshing hyperparameters).  The decision — including
        the ``total >= refresh_growth * n_last_full`` refresh boundary — is
        the single source of truth shared by :meth:`partial_fit` and external
        fleet drivers (:func:`gp_fleet_key`), so grouping members for a
        batched pass can never disagree with what each member would do solo.
        """
        if not (self.incremental and self.fitted):
            return "full"
        if total_rows >= self.refresh_growth * self._n_last_full:
            return "full"
        return "extend"

    def _validate_update(
        self, X_new: np.ndarray, y_new: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Validate a pending :meth:`partial_fit` batch *before* any mutation.

        Raises on non-finite values, row/target length mismatches and — when
        the model is already fitted — a feature width differing from the
        training set's.  Nothing is written until every check passes, so a
        rejected update can never corrupt the cached Cholesky factor: the
        model keeps answering predictions exactly as before the call
        (regression-tested, solo and fleet).
        """
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        y_new = np.asarray(y_new, dtype=float).ravel()
        X_new, y_new = self._validate(X_new, y_new)
        if self.fitted and X_new.shape[1] != self._X_buf.shape[1]:
            raise ValueError(
                f"expected {self._X_buf.shape[1]} features, got {X_new.shape[1]}"
            )
        return X_new, y_new

    def partial_fit(self, X_new: np.ndarray, y_new: np.ndarray) -> "GaussianProcessSurrogate":
        """Incorporate new observations without refactorising from scratch.

        Extends the lower Cholesky factor ``L`` of the kernel matrix by the
        block-update

        .. math::

            L' = \\begin{pmatrix} L & 0 \\\\ B^T & L_S \\end{pmatrix},
            \\quad B = L^{-1} K_{12},
            \\quad L_S L_S^T = K_{22} - B^T B,

        which costs :math:`O(n^2 m)` for ``m`` new rows instead of the
        :math:`O((n+m)^3)` full refit, then recomputes the target
        normalisation and ``alpha`` in :math:`O(n^2)`.  Hyperparameters stay
        frozen; once the training set has grown by ``refresh_growth`` since
        the last full fit (or the Schur complement loses positive
        definiteness) the method falls back to :meth:`fit`, which refreshes
        them.
        """
        X_new, y_new = self._validate_update(X_new, y_new)
        if not self.fitted:
            return self.fit(X_new, y_new)
        n, m = self._n, X_new.shape[0]
        d = self._X_buf.shape[1]
        total = n + m

        if self.partial_fit_plan(total) == "full":
            X_all = np.vstack([self._X_buf[:n], X_new])
            y_all = np.concatenate([self._y_raw_buf[:n], y_new])
            return self.fit(X_all, y_all)

        self._ensure_capacity(total, d)
        X_old = self._X_buf[:n]
        K12 = self._signal_var * np.exp(
            -0.5 * _pairwise_sq_dists(X_old, X_new, self._length_scales)
        )
        K22 = self._signal_var * np.exp(
            -0.5 * _pairwise_sq_dists(X_new, X_new, self._length_scales)
        )
        K22[np.diag_indices_from(K22)] += self._noise_used
        L = self._L_buf[:n, :n]
        B = _solve_lower_triangular(L, K12)
        S = K22 - B.T @ B
        try:
            L_S = np.linalg.cholesky(S)
        except np.linalg.LinAlgError:
            # Numerically losing positive definiteness means the factor has
            # drifted too far — refactorise (and refresh hyperparameters).
            X_all = np.vstack([X_old, X_new])
            y_all = np.concatenate([self._y_raw_buf[:n], y_new])
            return self.fit(X_all, y_all)

        self._L_buf[n:total, :n] = B.T
        self._L_buf[n:total, n:total] = L_S
        self._X_buf[n:total] = X_new
        self._y_raw_buf[n:total] = y_new
        self._n = total
        self._X = self._X_buf[:total]
        y_n = self._normalize_targets(self._y_raw_buf[:total])
        self._cho = (self._L_buf[:total, :total], True)
        self._alpha = _cho_solve_lower(self._cho[0], y_n)
        self.num_partial_fits += 1
        return self

    def _choose_length_scales(self, X: np.ndarray) -> np.ndarray:
        """Median-heuristic anisotropic length scales.

        The quartiles of all columns come from one columnar ``np.percentile``
        call (bitwise identical to per-column calls — the interpolation is
        per column either way); the standard deviations stay per column, whose
        strided axis-0 reduction would accumulate in a different order.
        """
        d = X.shape[1]
        scales = np.empty(d)
        quartiles = np.percentile(X, [75, 25], axis=0)
        for j in range(d):
            spread = quartiles[0, j] - quartiles[1, j]
            scales[j] = max(spread, np.std(X[:, j]), 1e-3) * self.length_scale
        return scales

    def _refine_hyperparameters(self, E: np.ndarray, y_n: np.ndarray) -> Tuple[float, float]:
        """Small grid search over noise and signal variance by log marginal likelihood.

        ``E`` is the unit-signal kernel ``exp(-0.5·D²)`` of the training
        rows, shared by all combinations (the old code re-exponentiated it
        per combination).  The combinations factorise one by one: stacking
        them into a ``(12, n, n)`` batched Cholesky was measured *slower*
        (and 12× the peak memory) at realistic training sizes — batching
        pays across fleet members, not across a solo fit's grid.
        """
        best = (self.noise, 1.0)
        best_lml = -np.inf
        diag = np.arange(E.shape[0])
        for noise, signal in self.hyperparameter_grid:
            K = signal * E
            K[diag, diag] += noise
            try:
                L = np.linalg.cholesky(K)
            except np.linalg.LinAlgError:
                continue
            lml = _log_marginal_likelihood(L, y_n)
            if lml > best_lml:
                best_lml = lml
                best = (noise, signal)
        return best

    # ---------------------------------------------------------------- predict
    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if not self.fitted:
            raise RuntimeError("the GP has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = self._signal_var * np.exp(
            -0.5 * _pairwise_sq_dists(X, self._X, self._length_scales)
        )
        mean_n = Ks @ self._alpha
        # Posterior variance through the half-solve norm form
        # signal − ‖L⁻¹·Ksᵀ‖²: one triangular solve instead of the full
        # K⁻¹ back-substitution — half the flops of the ks·K⁻¹·ks quadratic
        # form, the same value to rounding, and non-negative by construction.
        B = _solve_lower_triangular(self._cho[0], Ks.T)
        var_n = self._signal_var - np.sum(B * B, axis=0)
        var_n = np.maximum(var_n, 1e-12)
        mean = mean_n * self._y_std + self._y_mean
        std = np.sqrt(var_n) * self._y_std
        return mean, std


# --------------------------------------------------------------------- fleet
def gp_fleet_key(
    model: GaussianProcessSurrogate, num_rows: int, num_new: int, num_features: int
) -> Tuple:
    """The shape/mode signature a batched GP fit requires its members to share.

    ``num_rows`` is the member's total training-set size after the pending
    update and ``num_new`` the rows appended since its last fit.  Members
    mapping to the same key can advance as one :class:`GPFleet` pass: either
    one batched factor extension (``("extend", d, m)`` — history sizes may be
    ragged, the extension works on concatenated rows) or one batched full
    refit (``("full", d, n)``, which stacks kernels and therefore needs equal
    totals).  Full refits of unequal sizes — common, since each member
    follows its own ``refresh_growth`` schedule — group apart and fall back
    to solo fits, never to padding (BLAS is not bitwise padding-stable, which
    would break the fleet identity guarantee).

    A member whose cached factor does not cover exactly the already-fitted
    rows (``model._n != num_rows - num_new``) gets a per-model singleton key:
    only the solo path reproduces whatever that state would do.

    Full refits that would run the marginal-likelihood refinement also key
    on the member's ``hyperparameter_grid``: the fused scan runs one grid
    over the whole kernel stack, so members that disagree on the grid must
    group apart (and thence fall back to solo fits when singleton) rather
    than have a sibling's grid silently imposed on them.  Extensions keep
    hyperparameters frozen and need no grid in their key.
    """
    num_old = num_rows - num_new
    if model.supports_partial_fit and model.fitted and 0 < num_old < num_rows:
        # The solo driver (``fit_now``) routes this member through
        # ``partial_fit``, whose outcome — extend, or full refit on the
        # *member's stored rows* plus the update — depends on the cached
        # factor covering exactly the already-fitted rows.  A desynced
        # factor is only reproducible solo, whatever the plan says.
        if model._n != num_old:
            return ("solo", id(model))
        if model.partial_fit_plan(num_rows) == "extend":
            return ("extend", num_features, num_new)
    if model.auto_hyperparameters and num_rows >= 8:
        return ("full", num_features, num_rows, model.hyperparameter_grid)
    return ("full", num_features, num_rows)


class GPFleet:
    """Several independent Gaussian processes advanced in one batched pass.

    The GP counterpart of
    :func:`~repro.core.surrogate.random_forest.fit_forest_fleet` and
    :class:`~repro.core.vae.tvae.VAEFleet`: K member GPs — typically the
    surrogates of K concurrent campaigns — share each tick's NumPy pass
    overhead by stacking their kernel matrices ``(K, n, n)`` and running one
    batched ``np.linalg.cholesky`` (full refits and marginal-likelihood grid
    scans), one batched factor extension (``partial_fit``), and one batched
    cross-kernel construction (``predict``).

    Every member ends up **bitwise identical** to calling the corresponding
    solo :class:`GaussianProcessSurrogate` method on its own: the batched
    operations are elementwise ops, contiguous-axis reductions, per-slice
    BLAS contractions and batched LAPACK ``potrf`` — all of which reproduce
    the 2-D results slice by slice — and the remaining per-member triangular
    solves call the identical SciPy routines.  Members must share shapes
    (training-set sizes, update sizes, candidate counts); group ragged
    fleets with :func:`gp_fleet_key` and fall back to solo calls where
    shapes cannot align.  Hyperparameters may differ freely between members
    (each keeps its own length scales, noise and signal variance).
    """

    def __init__(self, members: Sequence[GaussianProcessSurrogate]):
        members = list(members)
        if not members:
            raise ValueError("need at least one fleet member")
        for member in members:
            if not isinstance(member, GaussianProcessSurrogate):
                raise TypeError(
                    f"fleet members must be GaussianProcessSurrogate, got {type(member).__name__}"
                )
        if len({id(member) for member in members}) != len(members):
            raise ValueError("each GP may appear only once per fleet")
        self.members = members

    # ------------------------------------------------------------------- fit
    def fit(self, Xs: Sequence[np.ndarray], ys: Sequence[np.ndarray]) -> "GPFleet":
        """Batched full reference fit of every member.

        Mirrors :meth:`GaussianProcessSurrogate.fit` per member — target
        normalisation, median-heuristic length scales, the marginal-likelihood
        (noise, signal) grid when a member has ``auto_hyperparameters`` and at
        least 8 rows, and the final factorisation — with the O(n³) work (the
        grid's and the final pass's Cholesky factorisations) batched across
        the fleet.  Training sets must share one ``(n, d)`` shape.  All math
        is staged into locals and committed to the members only once every
        factor exists, so a failure (bad shapes, or one member's kernel
        staying indefinite even after the jitter retry) never leaves any
        member — failing or sibling — half-updated.
        """
        members = self.members
        if len(Xs) != len(members) or len(ys) != len(members):
            raise ValueError("need exactly one (X, y) pair per fleet member")
        pairs = [
            member._validate(X, y) for member, X, y in zip(members, Xs, ys)
        ]
        shapes = {pair[0].shape for pair in pairs}
        if len(shapes) != 1:
            raise ValueError(
                f"fleet full fits require equal-shape training sets, got {sorted(shapes)}"
            )
        if len(members) == 1:
            members[0].fit(*pairs[0])
            return self
        n, _ = pairs[0][0].shape
        diag = np.arange(n)

        # Staged normalisation — the same arithmetic _normalize_targets runs,
        # without touching member state yet.
        y_stats = []
        y_norm = []
        for member, (_, y) in zip(members, pairs):
            mean, std = member._target_stats(y, member.normalize_y)
            y_stats.append((mean, std))
            y_norm.append((y - mean) / std)
        scale_list = [
            member._choose_length_scales(X) for member, (X, _) in zip(members, pairs)
        ]
        length_scales = np.stack(scale_list)
        X_stack = np.stack([X for X, _ in pairs])
        # The unit-signal kernel stack exp(-0.5·D²) is shared by every grid
        # combination and the final factorisation — computed once per fit,
        # exactly like the solo path.
        E = np.exp(-0.5 * _batched_sq_dists(X_stack, X_stack, length_scales))

        noises = np.array([member.noise for member in members])
        signals = np.ones(len(members))
        refine = [
            k
            for k, member in enumerate(members)
            if member.auto_hyperparameters and n >= 8
        ]
        if refine:
            grids = {members[k].hyperparameter_grid for k in refine}
            if len(grids) != 1:
                # One grid drives the whole fused scan; imposing it on a
                # member that configured a different one would silently
                # change that member's selection.  gp_fleet_key keys full
                # refits on the grid, so a grouped driver never gets here.
                raise ValueError(
                    "fleet full fits require refining members to share one "
                    "hyperparameter grid; group with gp_fleet_key"
                )
            # Avoid a full-stack copy in the common all-members-refine case.
            E_refine = E if len(refine) == len(members) else E[refine]
            best = {k: (members[k].noise, 1.0) for k in refine}
            best_lml = {k: -np.inf for k in refine}
            for noise, signal in next(iter(grids)):
                K_stack = signal * E_refine
                K_stack[:, diag, diag] += noise
                # Indefinite combinations are skipped per member, exactly
                # like the solo grid scan does.
                L_stack = _batched_cholesky_each(K_stack)
                for i, k in enumerate(refine):
                    if L_stack[i] is None:
                        continue
                    lml = _log_marginal_likelihood(L_stack[i], y_norm[k])
                    if lml > best_lml[k]:
                        best_lml[k] = lml
                        best[k] = (noise, signal)
            for k in refine:
                noises[k], signals[k] = best[k]

        K_stack = signals[:, None, None] * E
        K_stack[:, diag, diag] += noises[:, None]
        # One bad member must not sink the fleet: indefinite slices get the
        # solo path's jitter fallback, the healthy ones keep their batched
        # (bitwise-equal) factors.  A jitter failure raises here, before any
        # member has been written.
        L_each = _batched_cholesky_each(K_stack)
        factors = [
            L if L is not None else _cholesky_with_jitter(K_stack[k])
            for k, L in enumerate(L_each)
        ]
        alphas = [_cho_solve_lower(factors[k], y_norm[k]) for k in range(len(members))]

        # ---- commit: every factor exists, write the members in one sweep.
        for k, member in enumerate(members):
            member._y_mean, member._y_std = y_stats[k]
            member._length_scales = scale_list[k]
            member._signal_var = float(signals[k])
            member._noise_used = float(noises[k])
            member._store_training_set(*pairs[k])
            member._L_buf[:n, :n] = factors[k]
            member._cho = (member._L_buf[:n, :n], True)
            member._alpha = alphas[k]
            member._n_last_full = n
            member.num_full_fits += 1
            member.fitted = True
        return self

    # ----------------------------------------------------------- partial fit
    def partial_fit(
        self, X_news: Sequence[np.ndarray], y_news: Sequence[np.ndarray]
    ) -> "GPFleet":
        """Batched rank-1/block factor extension of every member.

        Mirrors :meth:`GaussianProcessSurrogate.partial_fit`'s extension
        branch per member: the cross- and new-block kernels are built as one
        ``(K, n, m)`` / ``(K, m, m)`` stack and the Schur complements are
        factorised by one batched ``np.linalg.cholesky``; the per-member
        ``B = L⁻¹·K₁₂`` triangular solves and ``alpha`` recomputations call
        the same LAPACK wrappers the solo path calls.  Members must be
        fitted, incremental, share one update shape ``(m, d)`` and not be due
        a hyperparameter refresh (group with :func:`gp_fleet_key`) — their
        training-set sizes may differ freely: the cross-kernel is built on
        the *concatenated* old rows (row-local scaling/reductions and
        per-member cross contractions reproduce each member's solo bits
        regardless of its neighbours), which is what keeps ragged fleets —
        the norm for GP campaigns — fully fused.  Validation completes for
        every member before any member is mutated, so a rejected batch never
        corrupts a cached factor.  If any member's Schur complement loses
        positive definiteness the whole group falls back to solo
        ``partial_fit`` calls — bitwise identical for the healthy members, a
        hyperparameter-refreshing full refit for the failing ones, exactly
        as solo.
        """
        members = self.members
        if len(X_news) != len(members) or len(y_news) != len(members):
            raise ValueError("need exactly one (X_new, y_new) pair per fleet member")
        prepared: List[Tuple[np.ndarray, np.ndarray]] = []
        for member, X_new, y_new in zip(members, X_news, y_news):
            if not member.fitted:
                raise RuntimeError(
                    "fleet extension requires fitted members — use GPFleet.fit"
                )
            if not member.incremental:
                raise ValueError(
                    "fleet extension requires incremental members — use GPFleet.fit"
                )
            X_new, y_new = member._validate_update(X_new, y_new)
            if member.partial_fit_plan(member._n + X_new.shape[0]) != "extend":
                raise ValueError(
                    "fleet member is due a hyperparameter refresh — use GPFleet.fit"
                )
            prepared.append((X_new, y_new))
        shapes = {X_new.shape for X_new, _ in prepared}
        if len(shapes) != 1:
            raise ValueError(
                f"fleet extensions require equal update shapes, got {sorted(shapes)}"
            )
        if len(members) == 1:
            members[0].partial_fit(*prepared[0])
            return self
        m, d = shapes.pop()
        ns = [member._n for member in members]
        diag = np.arange(m)

        for member, n in zip(members, ns):
            member._ensure_capacity(n + m, d)
        length_scales = np.stack([member._length_scales for member in members])
        signals = np.array([member._signal_var for member in members])
        noises = np.array([member._noise_used for member in members])

        # Cross-kernel K₁₂ on the concatenated old rows.  Row scaling, row
        # square-sums and the final elementwise assembly reproduce each
        # member's solo bits row by row; only the cross contraction
        # ``As @ Bsᵀ`` runs per member (its GEMM shape is member-specific).
        X_old_cat = np.concatenate([member._X_buf[:n] for member, n in zip(members, ns)])
        scale_rows = np.repeat(length_scales, ns, axis=0)
        As_cat = X_old_cat / scale_rows
        a2_cat = np.sum(As_cat**2, axis=1)[:, None]
        X_new_stack = np.stack([X_new for X_new, _ in prepared])
        Bs_new = X_new_stack / length_scales[:, None, :]
        b2 = np.sum(Bs_new**2, axis=2)
        cross_cat = np.empty((sum(ns), m))
        offset = 0
        for k, n in enumerate(ns):
            cross_cat[offset : offset + n] = (
                As_cat[offset : offset + n] @ Bs_new[k].T
            )
            offset += n
        d2_cat = np.maximum(
            a2_cat + np.repeat(b2, ns, axis=0) - 2.0 * cross_cat, 0.0
        )
        K12_cat = np.repeat(signals, ns)[:, None] * np.exp(-0.5 * d2_cat)

        # New-block kernel K₂₂, batched over the (equal-m) updates.
        K22 = signals[:, None, None] * np.exp(
            -0.5
            * np.maximum(
                b2[:, :, None] + b2[:, None, :] - 2.0 * Bs_new @ Bs_new.transpose(0, 2, 1),
                0.0,
            )
        )
        K22[:, diag, diag] += noises[:, None]

        Bs = []
        S = np.empty((len(members), m, m))
        offset = 0
        for k, (member, n) in enumerate(zip(members, ns)):
            B = _solve_lower_triangular(
                member._L_buf[:n, :n], K12_cat[offset : offset + n]
            )
            Bs.append(B)
            S[k] = K22[k] - B.T @ B
            offset += n
        try:
            L_S = np.linalg.cholesky(S)
        except np.linalg.LinAlgError:
            # Some member's factor drifted out of positive definiteness:
            # nothing has been written yet, so the solo path (which refreshes
            # exactly the failing members) can take over cleanly.
            for member, (X_new, y_new) in zip(members, prepared):
                member.partial_fit(X_new, y_new)
            return self
        for k, (member, n) in enumerate(zip(members, ns)):
            X_new, y_new = prepared[k]
            total = n + m
            member._L_buf[n:total, :n] = Bs[k].T
            member._L_buf[n:total, n:total] = L_S[k]
            member._X_buf[n:total] = X_new
            member._y_raw_buf[n:total] = y_new
            member._n = total
            member._X = member._X_buf[:total]
            y_n = member._normalize_targets(member._y_raw_buf[:total])
            member._cho = (member._L_buf[:total, :total], True)
            member._alpha = _cho_solve_lower(member._cho[0], y_n)
            member.num_partial_fits += 1
        return self

    # --------------------------------------------------------------- predict
    def predict(
        self, Xs: Sequence[np.ndarray]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Fused posterior prediction, one candidate matrix per member.

        One fused cross-kernel construction — candidate-side scaling and
        square-sums batched over the (equal-count) pools, training-side row
        sums on the concatenated training rows, the distance assembly and the
        exponential (the bulk of a GP predict's elementwise work) on one
        ``(nc, Σn)`` sheet — followed by the solo per-member posterior
        algebra on each member's column segment.  Returns per-member
        ``(mean, std)`` pairs bitwise identical to ``member.predict(X)``.
        Members must propose over pools of one candidate count; their
        training-set sizes may differ freely (the segments are column
        slices, not stacked), which keeps the ragged fleets GP campaigns
        produce fully fused.
        """
        members = self.members
        if len(Xs) != len(members):
            raise ValueError("need exactly one candidate matrix per fleet member")
        mats = []
        for member, X in zip(members, Xs):
            if not member.fitted:
                raise RuntimeError("the GP has not been fitted")
            X = np.atleast_2d(np.asarray(X, dtype=float))
            if X.shape[1] != member._X_buf.shape[1]:
                raise ValueError(
                    f"expected {member._X_buf.shape[1]} features, got {X.shape[1]}"
                )
            mats.append(X)
        if len({X.shape for X in mats}) != 1:
            raise ValueError(
                "fleet prediction requires equal candidate counts, got "
                f"{sorted({X.shape for X in mats})}"
            )
        if len(members) == 1:
            return [members[0].predict(mats[0])]
        ns = [member._n for member in members]
        total = sum(ns)

        length_scales = np.stack([member._length_scales for member in members])
        signals = np.array([member._signal_var for member in members])
        # Candidate side, batched over the equal-count pools.
        As = np.stack(mats) / length_scales[:, None, :]
        a2 = np.sum(As**2, axis=2)
        # Training side, on the concatenated rows (row-local ops).
        X_train_cat = np.concatenate(
            [member._X_buf[:n] for member, n in zip(members, ns)]
        )
        Bs_cat = X_train_cat / np.repeat(length_scales, ns, axis=0)
        b2_cat = np.sum(Bs_cat**2, axis=1)
        # Cross contractions per member (shapes are member-specific), written
        # into their column segments of the shared sheet.
        cross_cat = np.empty((len(mats[0]), total))
        offset = 0
        for k, n in enumerate(ns):
            cross_cat[:, offset : offset + n] = As[k] @ Bs_cat[offset : offset + n].T
            offset += n
        d2_cat = np.maximum(
            np.repeat(a2.T, ns, axis=1) + b2_cat[None, :] - 2.0 * cross_cat, 0.0
        )
        Ks_cat = np.repeat(signals, ns)[None, :] * np.exp(-0.5 * d2_cat)
        # Posterior algebra per member on its column segment: the GEMV, the
        # ``potrs`` solve and the weighted row reduction see the same values
        # (and, for the row-contiguous segment, the same layout) a solo
        # predict sees.  The clamp and denormalisation batch as elementwise
        # ops with per-member scalars broadcast per row.
        mean_n = np.empty((len(members), len(mats[0])))
        var_n = np.empty_like(mean_n)
        offset = 0
        for k, (member, n) in enumerate(zip(members, ns)):
            Ks = Ks_cat[:, offset : offset + n]
            mean_n[k] = Ks @ member._alpha
            B = _solve_lower_triangular(member._cho[0], Ks.T)
            var_n[k] = member._signal_var - np.sum(B * B, axis=0)
            offset += n
        var_n = np.maximum(var_n, 1e-12)
        y_stds = np.array([member._y_std for member in members])
        y_means = np.array([member._y_mean for member in members])
        means = mean_n * y_stds[:, None] + y_means[:, None]
        stds = np.sqrt(var_n) * y_stds[:, None]
        return [(means[k], stds[k]) for k in range(len(members))]
