"""Gaussian-process surrogate (the "GP" model of Fig. 4 and GPtune's model).

A standard GP regressor with an anisotropic RBF kernel plus white noise,
implemented with SciPy's Cholesky routines.  Hyperparameters are set by a
light-weight heuristic (median-distance length scales, signal variance from
the data variance) with an optional marginal-likelihood grid refinement —
enough to be a competent surrogate while keeping the implementation
self-contained.

The important property for the reproduction is the :math:`O(n^3)` update cost:
the asynchronous search charges this cost to the manager (see
:mod:`repro.core.overhead`), which is what collapses worker utilisation for GP
in Fig. 4 (d)/(f).

Two fit paths are provided:

* :meth:`GaussianProcessSurrogate.fit` — the full reference fit: choose
  hyperparameters from the data, build the kernel, factorise from scratch.
* :meth:`GaussianProcessSurrogate.partial_fit` — the incremental hot path
  used by the optimizer's ``tell``: new observations extend the existing
  Cholesky factor by rank-1 block updates (:math:`O(n^2)` per batch instead
  of :math:`O(n^3)`), with hyperparameters frozen between scheduled full
  refreshes.  Between refreshes the extended factor equals the full
  factorisation of the same kernel up to floating-point rounding, so
  posteriors match the reference fit to far better than ``1e-8``; a refresh
  (triggered once the history grows by ``refresh_growth``) re-runs the full
  reference fit so hyperparameters keep tracking the data.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve, solve_triangular

from repro.core.arrays import grow_buffer
from repro.core.surrogate.base import Surrogate

__all__ = ["GaussianProcessSurrogate"]


def _pairwise_sq_dists(A: np.ndarray, B: np.ndarray, length_scales: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between scaled rows of A and B."""
    As = A / length_scales
    Bs = B / length_scales
    a2 = np.sum(As**2, axis=1)[:, None]
    b2 = np.sum(Bs**2, axis=1)[None, :]
    d2 = a2 + b2 - 2.0 * As @ Bs.T
    return np.maximum(d2, 0.0)


class GaussianProcessSurrogate(Surrogate):
    """GP regression with an RBF kernel and white noise.

    Parameters
    ----------
    noise:
        Observation noise variance added to the kernel diagonal.
    length_scale:
        Initial isotropic length scale; refined from the data when
        ``auto_hyperparameters`` is True.
    auto_hyperparameters:
        Whether to set length scales from the median pairwise distance and
        refine the noise/signal amplitude on a small grid by marginal
        likelihood.
    normalize_y:
        Whether to centre/scale the targets before fitting.
    incremental:
        Whether :meth:`partial_fit` extends the Cholesky factor by rank-1
        block updates (the hot path).  When False the surrogate advertises no
        partial-fit support and every update is a full reference refit — the
        pre-incremental behaviour, kept selectable for regression tests and
        benchmarks.
    refresh_growth:
        Hyperparameter-refresh schedule of the incremental path: a full
        reference fit (recomputing length scales and the noise/signal grid) is
        triggered whenever the training set has grown by this factor since the
        last full fit.  Between refreshes hyperparameters are frozen, which is
        what makes the rank-1 update exact.
    """

    def __init__(
        self,
        noise: float = 1e-4,
        length_scale: float = 1.0,
        auto_hyperparameters: bool = True,
        normalize_y: bool = True,
        incremental: bool = True,
        refresh_growth: float = 1.25,
    ):
        if noise <= 0:
            raise ValueError("noise must be positive")
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        if refresh_growth <= 1.0:
            raise ValueError("refresh_growth must be > 1")
        self.noise = float(noise)
        self.length_scale = float(length_scale)
        self.auto_hyperparameters = bool(auto_hyperparameters)
        self.normalize_y = bool(normalize_y)
        self.incremental = bool(incremental)
        self.refresh_growth = float(refresh_growth)
        self.fitted = False
        self._X: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._cho = None
        self._length_scales: Optional[np.ndarray] = None
        self._signal_var = 1.0
        self._y_mean = 0.0
        self._y_std = 1.0
        self._noise_used = self.noise
        # Incremental state: training rows/targets and the lower Cholesky
        # factor live in capacity-doubling buffers so a partial_fit extends
        # them in place instead of refactorising from scratch.
        self._n = 0
        self._X_buf = np.empty((0, 0), dtype=float)
        self._y_raw_buf = np.empty(0, dtype=float)
        self._L_buf = np.zeros((0, 0), dtype=float)
        self._n_last_full = 0
        self.num_full_fits = 0
        self.num_partial_fits = 0

    # --------------------------------------------------------------- plumbing
    @property
    def supports_partial_fit(self) -> bool:
        """Whether :meth:`partial_fit` uses the incremental update."""
        return self.incremental

    def _ensure_capacity(self, n: int, d: int) -> None:
        """Grow the X/y/L buffers to hold ``n`` rows of dimension ``d``."""
        if self._X_buf.shape[1] != d:
            self._X_buf = np.empty((0, d), dtype=float)
            self._y_raw_buf = np.empty(0, dtype=float)
            self._L_buf = np.zeros((0, 0), dtype=float)
            self._n = 0
        if n <= self._X_buf.shape[0]:
            return
        self._X_buf = grow_buffer(self._X_buf, n)
        self._y_raw_buf = grow_buffer(self._y_raw_buf, n)
        # The square factor buffer needs bespoke growth: zero-initialised so
        # the never-written upper triangle stays finite (SciPy's solvers
        # validate the whole array), matching the X buffer's capacity.
        capacity = self._X_buf.shape[0]
        L_grown = np.zeros((capacity, capacity), dtype=float)
        L_grown[: self._n, : self._n] = self._L_buf[: self._n, : self._n]
        self._L_buf = L_grown

    def _normalize_targets(self, y: np.ndarray) -> np.ndarray:
        if self.normalize_y:
            self._y_mean = float(np.mean(y))
            self._y_std = float(np.std(y)) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        return (y - self._y_mean) / self._y_std

    # -------------------------------------------------------------------- fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessSurrogate":
        """Full reference fit: hyperparameters from the data, fresh factor."""
        X, y = self._validate(X, y)
        n, d = X.shape
        y_n = self._normalize_targets(y)

        self._length_scales = self._choose_length_scales(X)
        self._signal_var = 1.0
        noise = self.noise
        if self.auto_hyperparameters and n >= 8:
            noise, self._signal_var = self._refine_hyperparameters(X, y_n)
        self._noise_used = noise

        self._store_training_set(X, y)
        self._factorize_full(y_n)
        self._n_last_full = n
        self.num_full_fits += 1
        self.fitted = True
        return self

    def _store_training_set(self, X: np.ndarray, y: np.ndarray) -> None:
        n, d = X.shape
        self._n = 0  # a full fit replaces the stored rows
        self._ensure_capacity(n, d)
        self._X_buf[:n] = X
        self._y_raw_buf[:n] = y
        self._n = n
        self._X = self._X_buf[:n]

    def _factorize_full(self, y_n: np.ndarray) -> None:
        """Factorise the kernel of the stored rows with current hyperparameters."""
        n = self._n
        X = self._X_buf[:n]
        K = self._signal_var * np.exp(
            -0.5 * _pairwise_sq_dists(X, X, self._length_scales)
        )
        K[np.diag_indices_from(K)] += self._noise_used
        try:
            cho = cho_factor(K, lower=True)
        except np.linalg.LinAlgError:
            K[np.diag_indices_from(K)] += 1e-6
            cho = cho_factor(K, lower=True)
        self._L_buf[:n, :n] = cho[0]
        self._cho = (self._L_buf[:n, :n], True)
        self._alpha = cho_solve(self._cho, y_n)

    def refit_with_current_hyperparameters(
        self, X: np.ndarray, y: np.ndarray
    ) -> "GaussianProcessSurrogate":
        """Full refit that *keeps* the current hyperparameters.

        The reference the incremental path is checked against: a
        :meth:`partial_fit` sequence and this method produce the same kernel,
        so their posteriors must agree to floating-point rounding.
        """
        if not self.fitted:
            raise RuntimeError("the GP has not been fitted")
        X, y = self._validate(X, y)
        y_n = self._normalize_targets(y)
        self._store_training_set(X, y)
        self._factorize_full(y_n)
        return self

    # ---------------------------------------------------------- partial fit
    def partial_fit(self, X_new: np.ndarray, y_new: np.ndarray) -> "GaussianProcessSurrogate":
        """Incorporate new observations without refactorising from scratch.

        Extends the lower Cholesky factor ``L`` of the kernel matrix by the
        block-update

        .. math::

            L' = \\begin{pmatrix} L & 0 \\\\ B^T & L_S \\end{pmatrix},
            \\quad B = L^{-1} K_{12},
            \\quad L_S L_S^T = K_{22} - B^T B,

        which costs :math:`O(n^2 m)` for ``m`` new rows instead of the
        :math:`O((n+m)^3)` full refit, then recomputes the target
        normalisation and ``alpha`` in :math:`O(n^2)`.  Hyperparameters stay
        frozen; once the training set has grown by ``refresh_growth`` since
        the last full fit (or the Schur complement loses positive
        definiteness) the method falls back to :meth:`fit`, which refreshes
        them.
        """
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        y_new = np.asarray(y_new, dtype=float).ravel()
        if not self.fitted:
            return self.fit(X_new, y_new)
        X_new, y_new = self._validate(X_new, y_new)
        n, m = self._n, X_new.shape[0]
        d = self._X_buf.shape[1]
        if X_new.shape[1] != d:
            raise ValueError(f"expected {d} features, got {X_new.shape[1]}")
        total = n + m

        if not self.incremental or total >= self.refresh_growth * self._n_last_full:
            X_all = np.vstack([self._X_buf[:n], X_new])
            y_all = np.concatenate([self._y_raw_buf[:n], y_new])
            return self.fit(X_all, y_all)

        self._ensure_capacity(total, d)
        X_old = self._X_buf[:n]
        K12 = self._signal_var * np.exp(
            -0.5 * _pairwise_sq_dists(X_old, X_new, self._length_scales)
        )
        K22 = self._signal_var * np.exp(
            -0.5 * _pairwise_sq_dists(X_new, X_new, self._length_scales)
        )
        K22[np.diag_indices_from(K22)] += self._noise_used
        L = self._L_buf[:n, :n]
        B = solve_triangular(L, K12, lower=True)
        S = K22 - B.T @ B
        try:
            L_S = np.linalg.cholesky(S)
        except np.linalg.LinAlgError:
            # Numerically losing positive definiteness means the factor has
            # drifted too far — refactorise (and refresh hyperparameters).
            X_all = np.vstack([X_old, X_new])
            y_all = np.concatenate([self._y_raw_buf[:n], y_new])
            return self.fit(X_all, y_all)

        self._L_buf[n:total, :n] = B.T
        self._L_buf[n:total, n:total] = L_S
        self._X_buf[n:total] = X_new
        self._y_raw_buf[n:total] = y_new
        self._n = total
        self._X = self._X_buf[:total]
        y_n = self._normalize_targets(self._y_raw_buf[:total])
        self._cho = (self._L_buf[:total, :total], True)
        self._alpha = cho_solve(self._cho, y_n)
        self.num_partial_fits += 1
        return self

    def _choose_length_scales(self, X: np.ndarray) -> np.ndarray:
        """Median-heuristic anisotropic length scales."""
        d = X.shape[1]
        scales = np.empty(d)
        for j in range(d):
            col = X[:, j]
            spread = np.subtract(*np.percentile(col, [75, 25]))
            scales[j] = max(spread, np.std(col), 1e-3) * self.length_scale
        return scales

    def _refine_hyperparameters(self, X: np.ndarray, y_n: np.ndarray) -> Tuple[float, float]:
        """Small grid search over noise and signal variance by log marginal likelihood."""
        D2 = _pairwise_sq_dists(X, X, self._length_scales)
        best = (self.noise, 1.0)
        best_lml = -np.inf
        n = X.shape[0]
        for noise in (1e-6, 1e-4, 1e-2, 1e-1):
            for signal in (0.5, 1.0, 2.0):
                K = signal * np.exp(-0.5 * D2)
                K[np.diag_indices_from(K)] += noise
                try:
                    cho = cho_factor(K, lower=True)
                except np.linalg.LinAlgError:
                    continue
                alpha = cho_solve(cho, y_n)
                log_det = 2.0 * np.sum(np.log(np.diag(cho[0])))
                lml = -0.5 * float(y_n @ alpha) - 0.5 * log_det - 0.5 * n * np.log(2 * np.pi)
                if lml > best_lml:
                    best_lml = lml
                    best = (noise, signal)
        return best

    # ---------------------------------------------------------------- predict
    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if not self.fitted:
            raise RuntimeError("the GP has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = self._signal_var * np.exp(
            -0.5 * _pairwise_sq_dists(X, self._X, self._length_scales)
        )
        mean_n = Ks @ self._alpha
        v = cho_solve(self._cho, Ks.T)
        var_n = self._signal_var - np.sum(Ks * v.T, axis=1)
        var_n = np.maximum(var_n, 1e-12)
        mean = mean_n * self._y_std + self._y_mean
        std = np.sqrt(var_n) * self._y_std
        return mean, std
