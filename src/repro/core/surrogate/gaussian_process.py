"""Gaussian-process surrogate (the "GP" model of Fig. 4 and GPtune's model).

A standard GP regressor with an anisotropic RBF kernel plus white noise,
implemented with SciPy's Cholesky routines.  Hyperparameters are set by a
light-weight heuristic (median-distance length scales, signal variance from
the data variance) with an optional marginal-likelihood grid refinement —
enough to be a competent surrogate while keeping the implementation
self-contained.

The important property for the reproduction is the :math:`O(n^3)` update cost:
the asynchronous search charges this cost to the manager (see
:mod:`repro.core.overhead`), which is what collapses worker utilisation for GP
in Fig. 4 (d)/(f).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from repro.core.surrogate.base import Surrogate

__all__ = ["GaussianProcessSurrogate"]


def _pairwise_sq_dists(A: np.ndarray, B: np.ndarray, length_scales: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between scaled rows of A and B."""
    As = A / length_scales
    Bs = B / length_scales
    a2 = np.sum(As**2, axis=1)[:, None]
    b2 = np.sum(Bs**2, axis=1)[None, :]
    d2 = a2 + b2 - 2.0 * As @ Bs.T
    return np.maximum(d2, 0.0)


class GaussianProcessSurrogate(Surrogate):
    """GP regression with an RBF kernel and white noise.

    Parameters
    ----------
    noise:
        Observation noise variance added to the kernel diagonal.
    length_scale:
        Initial isotropic length scale; refined from the data when
        ``auto_hyperparameters`` is True.
    auto_hyperparameters:
        Whether to set length scales from the median pairwise distance and
        refine the noise/signal amplitude on a small grid by marginal
        likelihood.
    normalize_y:
        Whether to centre/scale the targets before fitting.
    """

    def __init__(
        self,
        noise: float = 1e-4,
        length_scale: float = 1.0,
        auto_hyperparameters: bool = True,
        normalize_y: bool = True,
    ):
        if noise <= 0:
            raise ValueError("noise must be positive")
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.noise = float(noise)
        self.length_scale = float(length_scale)
        self.auto_hyperparameters = bool(auto_hyperparameters)
        self.normalize_y = bool(normalize_y)
        self.fitted = False
        self._X: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._cho = None
        self._length_scales: Optional[np.ndarray] = None
        self._signal_var = 1.0
        self._y_mean = 0.0
        self._y_std = 1.0

    # -------------------------------------------------------------------- fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessSurrogate":
        X, y = self._validate(X, y)
        n, d = X.shape
        self._X = X

        if self.normalize_y:
            self._y_mean = float(np.mean(y))
            self._y_std = float(np.std(y)) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        y_n = (y - self._y_mean) / self._y_std

        self._length_scales = self._choose_length_scales(X)
        self._signal_var = 1.0
        noise = self.noise

        if self.auto_hyperparameters and n >= 8:
            noise, self._signal_var = self._refine_hyperparameters(X, y_n)

        K = self._signal_var * np.exp(
            -0.5 * _pairwise_sq_dists(X, X, self._length_scales)
        )
        K[np.diag_indices_from(K)] += noise
        try:
            self._cho = cho_factor(K, lower=True)
        except np.linalg.LinAlgError:
            K[np.diag_indices_from(K)] += 1e-6
            self._cho = cho_factor(K, lower=True)
        self._alpha = cho_solve(self._cho, y_n)
        self._noise_used = noise
        self.fitted = True
        return self

    def _choose_length_scales(self, X: np.ndarray) -> np.ndarray:
        """Median-heuristic anisotropic length scales."""
        d = X.shape[1]
        scales = np.empty(d)
        for j in range(d):
            col = X[:, j]
            spread = np.subtract(*np.percentile(col, [75, 25]))
            scales[j] = max(spread, np.std(col), 1e-3) * self.length_scale
        return scales

    def _refine_hyperparameters(self, X: np.ndarray, y_n: np.ndarray) -> Tuple[float, float]:
        """Small grid search over noise and signal variance by log marginal likelihood."""
        D2 = _pairwise_sq_dists(X, X, self._length_scales)
        best = (self.noise, 1.0)
        best_lml = -np.inf
        n = X.shape[0]
        for noise in (1e-6, 1e-4, 1e-2, 1e-1):
            for signal in (0.5, 1.0, 2.0):
                K = signal * np.exp(-0.5 * D2)
                K[np.diag_indices_from(K)] += noise
                try:
                    cho = cho_factor(K, lower=True)
                except np.linalg.LinAlgError:
                    continue
                alpha = cho_solve(cho, y_n)
                log_det = 2.0 * np.sum(np.log(np.diag(cho[0])))
                lml = -0.5 * float(y_n @ alpha) - 0.5 * log_det - 0.5 * n * np.log(2 * np.pi)
                if lml > best_lml:
                    best_lml = lml
                    best = (noise, signal)
        return best

    # ---------------------------------------------------------------- predict
    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if not self.fitted:
            raise RuntimeError("the GP has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = self._signal_var * np.exp(
            -0.5 * _pairwise_sq_dists(X, self._X, self._length_scales)
        )
        mean_n = Ks @ self._alpha
        v = cho_solve(self._cho, Ks.T)
        var_n = self._signal_var - np.sum(Ks * v.T, axis=1)
        var_n = np.maximum(var_n, 1e-12)
        mean = mean_n * self._y_std + self._y_mean
        std = np.sqrt(var_n) * self._y_std
        return mean, std
