"""Random-forest surrogate (the paper's default DeepHyper model).

A from-scratch implementation on NumPy:

* :class:`DecisionTreeRegressor` — CART-style regression tree with
  variance-reduction splits, random feature subsampling per node, and
  array-based storage so prediction is vectorised.
* :class:`RandomForestSurrogate` — a bagged ensemble; the predictive mean is
  the average of the per-tree predictions and the predictive standard
  deviation is their spread (the classic forest uncertainty estimate used by
  sampling-based BO).

The implementation favours fast re-fitting: the asynchronous search refits the
surrogate every time a batch of evaluations completes, and the paper's Fig. 4
relies on the RF update being cheap compared with the GP's :math:`O(n^3)`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.surrogate.base import Surrogate

__all__ = ["DecisionTreeRegressor", "RandomForestSurrogate"]


class DecisionTreeRegressor:
    """A regression tree with variance-reduction splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples in each child.
    max_features:
        Number of features considered per split (``None`` = all,
        ``"sqrt"`` = ⌈√d⌉).
    rng:
        Random generator used for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 18,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: Optional[object] = "sqrt",
        rng: Optional[np.random.Generator] = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid minimum sample constraints")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng or np.random.default_rng()
        # Array representation filled by fit().
        self._feature: List[int] = []
        self._threshold: List[float] = []
        self._left: List[int] = []
        self._right: List[int] = []
        self._value: List[float] = []
        self.fitted = False

    # -------------------------------------------------------------------- fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Build the tree on ``X`` (n×d) and ``y`` (n,)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("invalid training data")
        self._feature, self._threshold = [], []
        self._left, self._right, self._value = [], [], []
        self._n_features = X.shape[1]
        self._build(X, y, np.arange(X.shape[0]), depth=0)
        self.fitted = True
        return self

    def _n_split_features(self) -> int:
        d = self._n_features
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(math.ceil(math.sqrt(d))))
        return max(1, min(d, int(self.max_features)))

    def _new_node(self) -> int:
        self._feature.append(-1)
        self._threshold.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._value.append(0.0)
        return len(self._feature) - 1

    def _build(self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int) -> int:
        node = self._new_node()
        y_node = y[idx]
        self._value[node] = float(np.mean(y_node))
        n = idx.shape[0]
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or np.ptp(y_node) < 1e-12
        ):
            return node

        best = self._best_split(X, y, idx)
        if best is None:
            return node
        feature, threshold, left_mask = best
        left_idx = idx[left_mask]
        right_idx = idx[~left_mask]
        self._feature[node] = feature
        self._threshold[node] = threshold
        self._left[node] = self._build(X, y, left_idx, depth + 1)
        self._right[node] = self._build(X, y, right_idx, depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray
    ) -> Optional[Tuple[int, float, np.ndarray]]:
        """Find the variance-minimising split over a random feature subset."""
        n = idx.shape[0]
        y_node = y[idx]
        features = self.rng.choice(
            self._n_features, size=self._n_split_features(), replace=False
        )
        best_score = np.inf
        best: Optional[Tuple[int, float, np.ndarray]] = None
        min_leaf = self.min_samples_leaf
        for feature in features:
            values = X[idx, feature]
            order = np.argsort(values, kind="stable")
            v_sorted = values[order]
            y_sorted = y_node[order]
            # Valid split positions: between distinct consecutive values, with
            # at least min_leaf samples on each side.
            csum = np.cumsum(y_sorted)
            csum2 = np.cumsum(y_sorted**2)
            total, total2 = csum[-1], csum2[-1]
            counts_left = np.arange(1, n)
            valid = (v_sorted[1:] > v_sorted[:-1]) & (counts_left >= min_leaf) & (
                (n - counts_left) >= min_leaf
            )
            if not np.any(valid):
                continue
            sum_left = csum[:-1]
            sum2_left = csum2[:-1]
            sum_right = total - sum_left
            sum2_right = total2 - sum2_left
            counts_right = n - counts_left
            sse_left = sum2_left - sum_left**2 / counts_left
            sse_right = sum2_right - sum_right**2 / counts_right
            score = sse_left + sse_right
            score[~valid] = np.inf
            pos = int(np.argmin(score))
            if score[pos] < best_score:
                best_score = float(score[pos])
                threshold = 0.5 * (v_sorted[pos] + v_sorted[pos + 1])
                left_mask = values <= threshold
                # Guard against degenerate masks caused by ties.
                if min_leaf <= left_mask.sum() <= n - min_leaf:
                    best = (int(feature), float(threshold), left_mask)
        return best

    # ---------------------------------------------------------------- predict
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted mean for each row of ``X`` (vectorised traversal)."""
        if not self.fitted:
            raise RuntimeError("the tree has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        feature = np.asarray(self._feature)
        threshold = np.asarray(self._threshold)
        left = np.asarray(self._left)
        right = np.asarray(self._right)
        value = np.asarray(self._value)

        nodes = np.zeros(X.shape[0], dtype=int)
        for _ in range(self.max_depth + 1):
            is_internal = feature[nodes] >= 0
            if not np.any(is_internal):
                break
            f = feature[nodes[is_internal]]
            t = threshold[nodes[is_internal]]
            rows = np.nonzero(is_internal)[0]
            go_left = X[rows, f] <= t
            new_nodes = np.where(go_left, left[nodes[rows]], right[nodes[rows]])
            nodes[rows] = new_nodes
        return value[nodes]

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        return len(self._feature)


class RandomForestSurrogate(Surrogate):
    """Bagged ensemble of :class:`DecisionTreeRegressor`.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, max_features:
        Passed to each tree.
    bootstrap:
        Whether each tree trains on a bootstrap resample.
    seed:
        Seed of the forest's random generator (feature subsampling and
        bootstrap resampling).
    """

    def __init__(
        self,
        n_estimators: int = 12,
        max_depth: int = 18,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: Optional[object] = "sqrt",
        bootstrap: bool = True,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._trees: List[DecisionTreeRegressor] = []
        self.fitted = False

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestSurrogate":
        X, y = self._validate(X, y)
        n = X.shape[0]
        self._trees = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=self._rng,
            )
            if self.bootstrap and n > 1:
                sample = self._rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree.fit(X[sample], y[sample])
            self._trees.append(tree)
        self.fitted = True
        return self

    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if not self.fitted:
            raise RuntimeError("the forest has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        predictions = np.stack([tree.predict(X) for tree in self._trees], axis=0)
        mean = predictions.mean(axis=0)
        std = predictions.std(axis=0)
        # A forest of identical trees (tiny datasets) still needs non-zero
        # uncertainty for the acquisition function to explore.
        std = np.maximum(std, 1e-9)
        return mean, std
