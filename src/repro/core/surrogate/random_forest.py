"""Random-forest surrogate (the paper's default DeepHyper model).

A from-scratch implementation on NumPy:

* :class:`DecisionTreeRegressor` — CART-style regression tree with
  variance-reduction splits, random feature subsampling per node, and
  array-based storage so prediction is vectorised.  Built node by node with a
  depth-first recursion; kept as the *reference* implementation.
* :class:`RandomForestSurrogate` — a bagged ensemble; the predictive mean is
  the average of the per-tree predictions and the predictive standard
  deviation is their spread (the classic forest uncertainty estimate used by
  sampling-based BO).

The implementation favours fast re-fitting: the asynchronous search refits the
surrogate every time a batch of evaluations completes, and the paper's Fig. 4
relies on the RF update being cheap compared with the GP's :math:`O(n^3)`.
The default forest fit is therefore *level-wise*: all nodes of all trees at
one depth are split together with segmented NumPy operations (one lexsort +
cumulative-sum pass per candidate-feature slot per level), instead of one
Python call stack per node.  At ~1000 observations this cuts the refit
wall-clock by roughly 5× against the recursive builder while producing
statistically equivalent forests (same split criterion, same guards, same
hyperparameters; only the order of the RNG draws differs).  The recursive
builder remains available as ``fit_algorithm="recursive"``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.surrogate.base import Surrogate

__all__ = ["DecisionTreeRegressor", "RandomForestSurrogate"]


#: Minimum spread of y below which a node is treated as constant (a leaf).
_MIN_SPREAD = 1e-12


class DecisionTreeRegressor:
    """A regression tree with variance-reduction splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples in each child.
    max_features:
        Number of features considered per split (``None`` = all,
        ``"sqrt"`` = ⌈√d⌉).
    rng:
        Random generator used for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 18,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: Optional[object] = "sqrt",
        rng: Optional[np.random.Generator] = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid minimum sample constraints")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng or np.random.default_rng()
        # Array representation filled by fit().
        self._feature: List[int] = []
        self._threshold: List[float] = []
        self._left: List[int] = []
        self._right: List[int] = []
        self._value: List[float] = []
        self.fitted = False

    # -------------------------------------------------------------------- fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Build the tree on ``X`` (n×d) and ``y`` (n,)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("invalid training data")
        self._feature, self._threshold = [], []
        self._left, self._right, self._value = [], [], []
        self._n_features = X.shape[1]
        self._build(X, y, np.arange(X.shape[0]), depth=0)
        self.fitted = True
        return self

    def _n_split_features(self) -> int:
        d = self._n_features
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(math.ceil(math.sqrt(d))))
        return max(1, min(d, int(self.max_features)))

    def _new_node(self) -> int:
        self._feature.append(-1)
        self._threshold.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._value.append(0.0)
        return len(self._feature) - 1

    def _build(self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int) -> int:
        node = self._new_node()
        y_node = y[idx]
        self._value[node] = float(np.mean(y_node))
        n = idx.shape[0]
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or np.ptp(y_node) < 1e-12
        ):
            return node

        best = self._best_split(X, y, idx)
        if best is None:
            return node
        feature, threshold, left_mask = best
        left_idx = idx[left_mask]
        right_idx = idx[~left_mask]
        self._feature[node] = feature
        self._threshold[node] = threshold
        self._left[node] = self._build(X, y, left_idx, depth + 1)
        self._right[node] = self._build(X, y, right_idx, depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray
    ) -> Optional[Tuple[int, float, np.ndarray]]:
        """Find the variance-minimising split over a random feature subset."""
        n = idx.shape[0]
        y_node = y[idx]
        features = self.rng.choice(
            self._n_features, size=self._n_split_features(), replace=False
        )
        best_score = np.inf
        best: Optional[Tuple[int, float, np.ndarray]] = None
        min_leaf = self.min_samples_leaf
        for feature in features:
            values = X[idx, feature]
            order = np.argsort(values, kind="stable")
            v_sorted = values[order]
            y_sorted = y_node[order]
            # Valid split positions: between distinct consecutive values, with
            # at least min_leaf samples on each side.
            csum = np.cumsum(y_sorted)
            csum2 = np.cumsum(y_sorted**2)
            total, total2 = csum[-1], csum2[-1]
            counts_left = np.arange(1, n)
            valid = (v_sorted[1:] > v_sorted[:-1]) & (counts_left >= min_leaf) & (
                (n - counts_left) >= min_leaf
            )
            if not np.any(valid):
                continue
            sum_left = csum[:-1]
            sum2_left = csum2[:-1]
            sum_right = total - sum_left
            sum2_right = total2 - sum2_left
            counts_right = n - counts_left
            sse_left = sum2_left - sum_left**2 / counts_left
            sse_right = sum2_right - sum_right**2 / counts_right
            score = sse_left + sse_right
            score[~valid] = np.inf
            pos = int(np.argmin(score))
            if score[pos] < best_score:
                best_score = float(score[pos])
                threshold = 0.5 * (v_sorted[pos] + v_sorted[pos + 1])
                left_mask = values <= threshold
                # Guard against degenerate masks caused by ties.
                if min_leaf <= left_mask.sum() <= n - min_leaf:
                    best = (int(feature), float(threshold), left_mask)
        return best

    # ---------------------------------------------------------------- predict
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted mean for each row of ``X`` (vectorised traversal)."""
        if not self.fitted:
            raise RuntimeError("the tree has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        feature = np.asarray(self._feature)
        threshold = np.asarray(self._threshold)
        left = np.asarray(self._left)
        right = np.asarray(self._right)
        value = np.asarray(self._value)

        nodes = np.zeros(X.shape[0], dtype=int)
        for _ in range(self.max_depth + 1):
            is_internal = feature[nodes] >= 0
            if not np.any(is_internal):
                break
            f = feature[nodes[is_internal]]
            t = threshold[nodes[is_internal]]
            rows = np.nonzero(is_internal)[0]
            go_left = X[rows, f] <= t
            new_nodes = np.where(go_left, left[nodes[rows]], right[nodes[rows]])
            nodes[rows] = new_nodes
        return value[nodes]

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        return len(self._feature)


class _ArrayTree:
    """A fitted regression tree stored as flat NumPy arrays.

    Produced by the level-wise forest builder; behaves like a fitted
    :class:`DecisionTreeRegressor` for prediction purposes (same vectorised
    traversal), but never holds Python list node storage.
    """

    __slots__ = ("feature", "threshold", "left", "right", "value", "max_depth", "fitted")

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        max_depth: int,
    ):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value
        self.max_depth = int(max_depth)
        self.fitted = True

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted mean for each row of ``X`` (vectorised traversal)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        feature, threshold = self.feature, self.threshold
        left, right, value = self.left, self.right, self.value
        nodes = np.zeros(X.shape[0], dtype=int)
        for _ in range(self.max_depth + 1):
            is_internal = feature[nodes] >= 0
            if not np.any(is_internal):
                break
            rows = np.nonzero(is_internal)[0]
            f = feature[nodes[rows]]
            t = threshold[nodes[rows]]
            go_left = X[rows, f] <= t
            nodes[rows] = np.where(go_left, left[nodes[rows]], right[nodes[rows]])
        return value[nodes]

    @property
    def node_count(self) -> int:
        """Number of nodes in the tree."""
        return int(self.feature.shape[0])


class _TreeStorage:
    """Growing per-tree node arrays used by the level-wise builder."""

    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self) -> None:
        self.feature: List[int] = []
        self.threshold: List[float] = []
        self.left: List[int] = []
        self.right: List[int] = []
        self.value: List[float] = []

    def new_node(self) -> int:
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(0.0)
        return len(self.feature) - 1

    def freeze(self, max_depth: int) -> _ArrayTree:
        return _ArrayTree(
            feature=np.asarray(self.feature, dtype=np.intp),
            threshold=np.asarray(self.threshold, dtype=float),
            left=np.asarray(self.left, dtype=np.intp),
            right=np.asarray(self.right, dtype=np.intp),
            value=np.asarray(self.value, dtype=float),
            max_depth=max_depth,
        )


def _build_forest_levelwise(
    X: np.ndarray,
    y: np.ndarray,
    bootstrap_rows: Sequence[np.ndarray],
    rng: np.random.Generator,
    max_depth: int,
    min_samples_split: int,
    min_samples_leaf: int,
    n_split_features: int,
) -> List[_ArrayTree]:
    """Fit all trees of a forest simultaneously, one depth level at a time.

    The frontier holds every open node of every tree; each node's samples are
    stored contiguously in one concatenated sample array.  Per level, one
    segmented lexsort + cumulative-sum pass per candidate-feature slot scores
    every possible split of every node, so the per-node Python/NumPy call
    overhead of the recursive builder (the dominant cost: thousands of tiny
    array operations) collapses into ``O(k)`` array passes per level.

    The split semantics mirror :meth:`DecisionTreeRegressor._best_split`
    exactly: variance-reduction (SSE) scores over a random feature subset,
    splits only between distinct consecutive sorted values with at least
    ``min_samples_leaf`` samples per side, midpoint thresholds, and the same
    degenerate-tie guard (a feature whose threshold would swallow tied values
    into an unbalanced child is rejected without resetting the running best
    score).  Only the *order* of RNG draws differs (breadth-first instead of
    depth-first, feature subsets via batched permutations), so individual
    trees are not bit-identical to recursively built ones, but follow the
    same distribution.
    """
    n, d = X.shape
    num_trees = len(bootstrap_rows)
    k = n_split_features
    min_leaf = min_samples_leaf
    storages = [_TreeStorage() for _ in range(num_trees)]

    # ---------------------------------------------------------- frontier init
    rows = np.concatenate(bootstrap_rows)
    yv = y[rows]
    sizes = np.asarray([r.shape[0] for r in bootstrap_rows], dtype=np.intp)
    tree_of = np.arange(num_trees, dtype=np.intp)
    nid_of = np.asarray([s.new_node() for s in storages], dtype=np.intp)

    depth = 0
    while sizes.size:
        m = sizes.size
        starts = np.zeros(m, dtype=np.intp)
        np.cumsum(sizes[:-1], out=starts[1:])
        ends = starts + sizes
        seg = np.repeat(np.arange(m, dtype=np.intp), sizes)

        # Node values (mean of y over the node's samples).
        node_sums = np.add.reduceat(yv, starts)
        node_values = node_sums / sizes
        for i in range(m):
            storages[tree_of[i]].value[nid_of[i]] = float(node_values[i])

        if depth >= max_depth:
            break
        spread = np.maximum.reduceat(yv, starts) - np.minimum.reduceat(yv, starts)
        splittable = (sizes >= min_samples_split) & (spread >= _MIN_SPREAD)
        if not np.any(splittable):
            break

        # Compact the frontier to the splittable nodes.
        keep = splittable[seg]
        rows2, yv2 = rows[keep], yv[keep]
        sizes2 = sizes[splittable]
        tree2, nid2 = tree_of[splittable], nid_of[splittable]
        m2 = sizes2.size
        starts2 = np.zeros(m2, dtype=np.intp)
        np.cumsum(sizes2[:-1], out=starts2[1:])
        ends2 = starts2 + sizes2
        seg2 = np.repeat(np.arange(m2, dtype=np.intp), sizes2)

        # Random feature subset per node: batched uniform k-subsets.
        F = np.argsort(rng.random((m2, d)), axis=1)[:, :k]

        # Per-sample split-position bookkeeping, shared by all feature slots.
        pos_in_seg = np.arange(seg2.size, dtype=np.intp) - starts2[seg2]
        counts_left = (pos_in_seg + 1).astype(float)
        counts_right = sizes2[seg2] - counts_left
        counts_right_safe = np.maximum(counts_right, 1.0)
        count_ok = (counts_left >= min_leaf) & (counts_right >= min_leaf)

        scores = np.full((m2, k), np.inf)
        thrs = np.zeros((m2, k))
        vnexts = np.zeros((m2, k))
        vals_by_slot: List[np.ndarray] = []
        for j in range(k):
            vals = X[rows2, F[seg2, j]]
            vals_by_slot.append(vals)
            order = np.lexsort((vals, seg2))
            vs = vals[order]
            ys = yv2[order]
            c1 = np.cumsum(ys)
            c2 = np.cumsum(ys * ys)
            base1 = np.where(starts2 > 0, c1[starts2 - 1], 0.0)
            base2 = np.where(starts2 > 0, c2[starts2 - 1], 0.0)
            tot1 = c1[ends2 - 1] - base1
            tot2 = c2[ends2 - 1] - base2
            sum_left = c1 - base1[seg2]
            sum2_left = c2 - base2[seg2]
            sum_right = tot1[seg2] - sum_left
            sum2_right = tot2[seg2] - sum2_left
            distinct = np.empty(vs.size, dtype=bool)
            distinct[:-1] = vs[1:] > vs[:-1]
            distinct[-1] = False
            valid = count_ok & distinct
            sse = (sum2_left - sum_left**2 / counts_left) + (
                sum2_right - sum_right**2 / counts_right_safe
            )
            score = np.where(valid, sse, np.inf)
            # Per-node minimum and its first (lowest-position) occurrence.
            minval = np.minimum.reduceat(score, starts2)
            at_min = np.flatnonzero(score == minval[seg2])
            seg_min = seg2[at_min]
            first = np.empty(seg_min.size, dtype=bool)
            first[0] = True
            first[1:] = seg_min[1:] != seg_min[:-1]
            best_pos = at_min[first]
            next_pos = np.minimum(best_pos + 1, vs.size - 1)
            scores[:, j] = minval
            thrs[:, j] = 0.5 * (vs[best_pos] + vs[next_pos])
            vnexts[:, j] = vs[next_pos]

        # Fast path: the globally best feature slot per node is accepted when
        # its threshold provably separates the chosen position (no tie
        # swallow-up), which mirrors the sequential selection outcome.
        node_idx = np.arange(m2)
        jstar = np.argmin(scores, axis=1)
        sstar = scores[node_idx, jstar]
        tstar = thrs[node_idx, jstar]
        has_split = np.isfinite(sstar)
        quick = has_split & (tstar < vnexts[node_idx, jstar])
        chosen_feature = np.full(m2, -1, dtype=np.intp)
        chosen_thr = np.zeros(m2)
        chosen_feature[quick] = F[node_idx, jstar][quick]
        chosen_thr[quick] = tstar[quick]
        # Slow path (rare float-adjacency ties): replicate the reference
        # builder's sequential scan, including its running-best-score quirk.
        for i in np.flatnonzero(has_split & ~quick):
            best_score = np.inf
            lo, hi = starts2[i], ends2[i]
            n_i = hi - lo
            for j in range(k):
                s_ij = scores[i, j]
                if not (s_ij < best_score):
                    continue
                best_score = s_ij
                t_ij = thrs[i, j]
                cnt = int(np.count_nonzero(vals_by_slot[j][lo:hi] <= t_ij))
                if min_leaf <= cnt <= n_i - min_leaf:
                    chosen_feature[i] = F[i, j]
                    chosen_thr[i] = t_ij

        split_nodes = chosen_feature >= 0
        if not np.any(split_nodes):
            break

        # Partition the samples of every split node into its two children
        # with one stable segmented sort (left block first, order preserved).
        feat_per_sample = chosen_feature[seg2]
        keep2 = feat_per_sample >= 0
        rows3, yv3 = rows2[keep2], yv2[keep2]
        seg_kept = seg2[keep2]
        go_left = X[rows3, feat_per_sample[keep2]] <= chosen_thr[seg2][keep2]
        remap = np.full(m2, -1, dtype=np.intp)
        q = int(np.count_nonzero(split_nodes))
        remap[split_nodes] = np.arange(q, dtype=np.intp)
        seg_new = remap[seg_kept]
        order_children = np.lexsort((~go_left, seg_new))
        rows_next = rows3[order_children]
        yv_next = yv3[order_children]
        sizes_split = sizes2[split_nodes]
        starts_split = np.zeros(q, dtype=np.intp)
        np.cumsum(sizes_split[:-1], out=starts_split[1:])
        left_counts = np.add.reduceat(go_left.astype(np.intp), starts_split)
        sizes_next = np.empty(2 * q, dtype=np.intp)
        sizes_next[0::2] = left_counts
        sizes_next[1::2] = sizes_split - left_counts

        # Register the split and allocate child nodes (breadth-first ids).
        tree_next = np.repeat(tree2[split_nodes], 2)
        nid_next = np.empty(2 * q, dtype=np.intp)
        split_idx = np.flatnonzero(split_nodes)
        for a, i in enumerate(split_idx):
            storage = storages[tree2[i]]
            nid = nid2[i]
            storage.feature[nid] = int(chosen_feature[i])
            storage.threshold[nid] = float(chosen_thr[i])
            left_id = storage.new_node()
            right_id = storage.new_node()
            storage.left[nid] = left_id
            storage.right[nid] = right_id
            nid_next[2 * a] = left_id
            nid_next[2 * a + 1] = right_id

        rows, yv = rows_next, yv_next
        sizes, tree_of, nid_of = sizes_next, tree_next, nid_next
        depth += 1

    return [storage.freeze(max_depth) for storage in storages]


class RandomForestSurrogate(Surrogate):
    """Bagged ensemble of :class:`DecisionTreeRegressor`.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, max_features:
        Passed to each tree.
    bootstrap:
        Whether each tree trains on a bootstrap resample.
    fit_algorithm:
        ``"levelwise"`` (default) builds all trees jointly, one depth level at
        a time, with segmented NumPy passes — the fast path the asynchronous
        search relies on for cheap refits.  ``"recursive"`` builds each tree
        with the reference depth-first :class:`DecisionTreeRegressor`; both
        produce statistically equivalent forests.
    seed:
        Seed of the forest's random generator (feature subsampling and
        bootstrap resampling).
    """

    def __init__(
        self,
        n_estimators: int = 12,
        max_depth: int = 18,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: Optional[object] = "sqrt",
        bootstrap: bool = True,
        fit_algorithm: str = "levelwise",
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if fit_algorithm not in ("levelwise", "recursive"):
            raise ValueError(f"unknown fit_algorithm {fit_algorithm!r}")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid minimum sample constraints")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.fit_algorithm = fit_algorithm
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._trees: List[object] = []
        self.fitted = False

    def _n_split_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(math.ceil(math.sqrt(d))))
        return max(1, min(d, int(self.max_features)))

    def _bootstrap_rows(self, n: int) -> List[np.ndarray]:
        rows = []
        for _ in range(self.n_estimators):
            if self.bootstrap and n > 1:
                rows.append(self._rng.integers(0, n, size=n))
            else:
                rows.append(np.arange(n))
        return rows

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestSurrogate":
        X, y = self._validate(X, y)
        if self.fit_algorithm == "levelwise":
            self._trees = _build_forest_levelwise(
                X,
                y,
                bootstrap_rows=self._bootstrap_rows(X.shape[0]),
                rng=self._rng,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                n_split_features=self._n_split_features(X.shape[1]),
            )
            self.fitted = True
            return self
        # Reference path: per-tree bootstrap + recursive build, with the same
        # interleaved RNG draw order as the original implementation.
        n = X.shape[0]
        self._trees = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=self._rng,
            )
            if self.bootstrap and n > 1:
                sample = self._rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree.fit(X[sample], y[sample])
            self._trees.append(tree)
        self.fitted = True
        return self

    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if not self.fitted:
            raise RuntimeError("the forest has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        predictions = np.stack([tree.predict(X) for tree in self._trees], axis=0)
        mean = predictions.mean(axis=0)
        std = predictions.std(axis=0)
        # A forest of identical trees (tiny datasets) still needs non-zero
        # uncertainty for the acquisition function to explore.
        std = np.maximum(std, 1e-9)
        return mean, std
