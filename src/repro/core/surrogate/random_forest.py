"""Random-forest surrogate (the paper's default DeepHyper model).

A from-scratch implementation on NumPy:

* :class:`DecisionTreeRegressor` — CART-style regression tree with
  variance-reduction splits, random feature subsampling per node, and
  array-based storage so prediction is vectorised.  Built node by node with a
  depth-first recursion; kept as the *reference* implementation.
* :class:`RandomForestSurrogate` — a bagged ensemble; the predictive mean is
  the average of the per-tree predictions and the predictive standard
  deviation is their spread (the classic forest uncertainty estimate used by
  sampling-based BO).

The implementation favours fast re-fitting: the asynchronous search refits the
surrogate every time a batch of evaluations completes, and the paper's Fig. 4
relies on the RF update being cheap compared with the GP's :math:`O(n^3)`.
The default forest fit is therefore *level-wise*: all nodes of all trees at
one depth are split together with segmented NumPy operations (one lexsort +
cumulative-sum pass per candidate-feature slot per level), instead of one
Python call stack per node.  At ~1000 observations this cuts the refit
wall-clock by roughly 5× against the recursive builder while producing
statistically equivalent forests (same split criterion, same guards, same
hyperparameters; only the order of the RNG draws differs).  The recursive
builder remains available as ``fit_algorithm="recursive"``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.surrogate.base import Surrogate

__all__ = [
    "DecisionTreeRegressor",
    "RandomForestSurrogate",
    "fit_forest_fleet",
    "predict_forest_fleet",
]


#: Minimum spread of y below which a node is treated as constant (a leaf).
_MIN_SPREAD = 1e-12


class DecisionTreeRegressor:
    """A regression tree with variance-reduction splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples in each child.
    max_features:
        Number of features considered per split (``None`` = all,
        ``"sqrt"`` = ⌈√d⌉).
    rng:
        Random generator used for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 18,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: Optional[object] = "sqrt",
        rng: Optional[np.random.Generator] = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid minimum sample constraints")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng or np.random.default_rng()
        # Array representation filled by fit().
        self._feature: List[int] = []
        self._threshold: List[float] = []
        self._left: List[int] = []
        self._right: List[int] = []
        self._value: List[float] = []
        self.fitted = False

    # -------------------------------------------------------------------- fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Build the tree on ``X`` (n×d) and ``y`` (n,)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("invalid training data")
        self._feature, self._threshold = [], []
        self._left, self._right, self._value = [], [], []
        self._n_features = X.shape[1]
        self._build(X, y, np.arange(X.shape[0]), depth=0)
        self.fitted = True
        return self

    def _n_split_features(self) -> int:
        d = self._n_features
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(math.ceil(math.sqrt(d))))
        return max(1, min(d, int(self.max_features)))

    def _new_node(self) -> int:
        self._feature.append(-1)
        self._threshold.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._value.append(0.0)
        return len(self._feature) - 1

    def _build(self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int) -> int:
        node = self._new_node()
        y_node = y[idx]
        self._value[node] = float(np.mean(y_node))
        n = idx.shape[0]
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or np.ptp(y_node) < 1e-12
        ):
            return node

        best = self._best_split(X, y, idx)
        if best is None:
            return node
        feature, threshold, left_mask = best
        left_idx = idx[left_mask]
        right_idx = idx[~left_mask]
        self._feature[node] = feature
        self._threshold[node] = threshold
        self._left[node] = self._build(X, y, left_idx, depth + 1)
        self._right[node] = self._build(X, y, right_idx, depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray
    ) -> Optional[Tuple[int, float, np.ndarray]]:
        """Find the variance-minimising split over a random feature subset."""
        n = idx.shape[0]
        y_node = y[idx]
        features = self.rng.choice(
            self._n_features, size=self._n_split_features(), replace=False
        )
        best_score = np.inf
        best: Optional[Tuple[int, float, np.ndarray]] = None
        min_leaf = self.min_samples_leaf
        for feature in features:
            values = X[idx, feature]
            order = np.argsort(values, kind="stable")
            v_sorted = values[order]
            y_sorted = y_node[order]
            # Valid split positions: between distinct consecutive values, with
            # at least min_leaf samples on each side.
            csum = np.cumsum(y_sorted)
            csum2 = np.cumsum(y_sorted**2)
            total, total2 = csum[-1], csum2[-1]
            counts_left = np.arange(1, n)
            valid = (v_sorted[1:] > v_sorted[:-1]) & (counts_left >= min_leaf) & (
                (n - counts_left) >= min_leaf
            )
            if not np.any(valid):
                continue
            sum_left = csum[:-1]
            sum2_left = csum2[:-1]
            sum_right = total - sum_left
            sum2_right = total2 - sum2_left
            counts_right = n - counts_left
            sse_left = sum2_left - sum_left**2 / counts_left
            sse_right = sum2_right - sum_right**2 / counts_right
            score = sse_left + sse_right
            score[~valid] = np.inf
            pos = int(np.argmin(score))
            if score[pos] < best_score:
                best_score = float(score[pos])
                threshold = 0.5 * (v_sorted[pos] + v_sorted[pos + 1])
                left_mask = values <= threshold
                # Guard against degenerate masks caused by ties.
                if min_leaf <= left_mask.sum() <= n - min_leaf:
                    best = (int(feature), float(threshold), left_mask)
        return best

    # ---------------------------------------------------------------- predict
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted mean for each row of ``X`` (vectorised traversal)."""
        if not self.fitted:
            raise RuntimeError("the tree has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        feature = np.asarray(self._feature)
        threshold = np.asarray(self._threshold)
        left = np.asarray(self._left)
        right = np.asarray(self._right)
        value = np.asarray(self._value)

        nodes = np.zeros(X.shape[0], dtype=int)
        for _ in range(self.max_depth + 1):
            is_internal = feature[nodes] >= 0
            if not np.any(is_internal):
                break
            f = feature[nodes[is_internal]]
            t = threshold[nodes[is_internal]]
            rows = np.nonzero(is_internal)[0]
            go_left = X[rows, f] <= t
            new_nodes = np.where(go_left, left[nodes[rows]], right[nodes[rows]])
            nodes[rows] = new_nodes
        return value[nodes]

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        return len(self._feature)


class _ArrayTree:
    """A fitted regression tree stored as flat NumPy arrays.

    Produced by the level-wise forest builder; behaves like a fitted
    :class:`DecisionTreeRegressor` for prediction purposes (same vectorised
    traversal), but never holds Python list node storage.
    """

    __slots__ = ("feature", "threshold", "left", "right", "value", "max_depth", "fitted")

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        max_depth: int,
    ):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value
        self.max_depth = int(max_depth)
        self.fitted = True

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted mean for each row of ``X`` (vectorised traversal)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        feature, threshold = self.feature, self.threshold
        left, right, value = self.left, self.right, self.value
        nodes = np.zeros(X.shape[0], dtype=int)
        for _ in range(self.max_depth + 1):
            is_internal = feature[nodes] >= 0
            if not np.any(is_internal):
                break
            rows = np.nonzero(is_internal)[0]
            f = feature[nodes[rows]]
            t = threshold[nodes[rows]]
            go_left = X[rows, f] <= t
            nodes[rows] = np.where(go_left, left[nodes[rows]], right[nodes[rows]])
        return value[nodes]

    @property
    def node_count(self) -> int:
        """Number of nodes in the tree."""
        return int(self.feature.shape[0])


def _build_forest_fleet(
    Xs: Sequence[np.ndarray],
    ys: Sequence[np.ndarray],
    bootstrap_rows_per_job: Sequence[Sequence[np.ndarray]],
    rngs: Sequence[np.random.Generator],
    max_depth: int,
    min_samples_split: int,
    min_samples_leaf: int,
    n_split_features: int,
) -> List[List[_ArrayTree]]:
    """Fit the forests of several independent *jobs* in one level-wise pass.

    Each job is one ``(X, y, bootstrap_rows, rng)`` quadruple — one forest
    over one training set, e.g. one campaign's surrogate in a multi-campaign
    batch.  The frontier holds every open node of every tree of every job;
    each node's samples are stored contiguously in one concatenated sample
    array.  Per level, one segmented lexsort + cumulative-sum pass per
    candidate-feature slot scores every possible split of every node, so the
    per-node Python/NumPy call overhead of the recursive builder (the dominant
    cost: thousands of tiny array operations) collapses into ``O(k)`` array
    passes per level — and, across jobs, the per-*level* overhead is paid once
    for the whole fleet instead of once per forest.

    Every forest is **bit-identical** to fitting its job alone: all
    cross-segment operations are either exact per element (gathers, compares,
    stable sorts) or segment-local (``reduceat``), random feature subsets are
    drawn from each job's own generator over exactly its own frontier block,
    and the running-sum arrays are cumulated per job (with job-aware base
    subtraction) so no floating-point state leaks across jobs.  The test
    suite pins this equality down to the node arrays.

    The split semantics mirror :meth:`DecisionTreeRegressor._best_split`
    exactly: variance-reduction (SSE) scores over a random feature subset,
    splits only between distinct consecutive sorted values with at least
    ``min_samples_leaf`` samples per side, midpoint thresholds, and the same
    degenerate-tie guard (a feature whose threshold would swallow tied values
    into an unbalanced child is rejected without resetting the running best
    score).  Only the *order* of RNG draws differs from the recursive builder
    (breadth-first instead of depth-first, feature subsets via batched
    permutations), so individual trees are not bit-identical to recursively
    built ones, but follow the same distribution.
    """
    num_jobs = len(Xs)
    if not (len(ys) == len(bootstrap_rows_per_job) == len(rngs) == num_jobs):
        raise ValueError("fleet jobs must have equal-length X/y/bootstrap/rng lists")
    d = Xs[0].shape[1]
    if any(X.shape[1] != d for X in Xs):
        raise ValueError("fleet jobs must share one feature dimensionality")
    k = n_split_features
    min_leaf = min_samples_leaf

    # Concatenate the per-job training sets; frontier rows index into X_all.
    row_off = np.zeros(num_jobs, dtype=np.intp)
    if num_jobs > 1:
        np.cumsum(np.asarray([X.shape[0] for X in Xs[:-1]], dtype=np.intp), out=row_off[1:])
    X_all = np.vstack(Xs) if num_jobs > 1 else Xs[0]
    y_all = np.concatenate(ys) if num_jobs > 1 else ys[0]

    # ---------------------------------------------------------- frontier init
    # Trees (and therefore the frontier) are laid out job-major; every level
    # below preserves that grouping, so each job occupies one contiguous block
    # of nodes and samples.  Nodes are not stored in mutable per-tree
    # containers: each level *emits* one record block (tree id, value, split
    # feature/threshold, child ids) for its whole frontier, and the per-tree
    # arrays are carved out of the concatenated records at the end — local
    # node ids are breadth-first allocation ranks, exactly as the previous
    # per-node storage produced.
    storage_job: List[int] = []
    rows_parts: List[np.ndarray] = []
    sizes_list: List[int] = []
    for j, boots in enumerate(bootstrap_rows_per_job):
        for r in boots:
            rows_parts.append(r + row_off[j] if row_off[j] else r)
            sizes_list.append(r.shape[0])
            storage_job.append(j)
    num_trees = len(sizes_list)
    rows = np.concatenate(rows_parts)
    yv = y_all[rows]
    sizes = np.asarray(sizes_list, dtype=np.intp)
    stor_of = np.arange(num_trees, dtype=np.intp)
    storage_job_arr = np.asarray(storage_job, dtype=np.intp)
    node_counts = np.ones(num_trees, dtype=np.intp)  # every tree has its root

    rec_stor: List[np.ndarray] = []
    rec_value: List[np.ndarray] = []
    rec_feature: List[np.ndarray] = []
    rec_threshold: List[np.ndarray] = []
    rec_left: List[np.ndarray] = []
    rec_right: List[np.ndarray] = []

    def emit(stor, values, feature=None, threshold=None, left=None, right=None):
        n = stor.size
        rec_stor.append(stor)
        rec_value.append(values)
        rec_feature.append(
            np.full(n, -1, dtype=np.intp) if feature is None else feature
        )
        rec_threshold.append(np.zeros(n) if threshold is None else threshold)
        rec_left.append(np.full(n, -1, dtype=np.intp) if left is None else left)
        rec_right.append(np.full(n, -1, dtype=np.intp) if right is None else right)

    depth = 0
    while sizes.size:
        m = sizes.size
        starts = np.zeros(m, dtype=np.intp)
        np.cumsum(sizes[:-1], out=starts[1:])
        ends = starts + sizes
        seg = np.repeat(np.arange(m, dtype=np.intp), sizes)

        # Node values (mean of y over the node's samples).
        node_sums = np.add.reduceat(yv, starts)
        node_values = node_sums / sizes

        if depth >= max_depth:
            emit(stor_of, node_values)
            break
        spread = np.maximum.reduceat(yv, starts) - np.minimum.reduceat(yv, starts)
        splittable = (sizes >= min_samples_split) & (spread >= _MIN_SPREAD)
        if not np.any(splittable):
            emit(stor_of, node_values)
            break

        # Compact the frontier to the splittable nodes.
        keep = splittable[seg]
        rows2, yv2 = rows[keep], yv[keep]
        sizes2 = sizes[splittable]
        stor2 = stor_of[splittable]
        m2 = sizes2.size
        starts2 = np.zeros(m2, dtype=np.intp)
        np.cumsum(sizes2[:-1], out=starts2[1:])
        ends2 = starts2 + sizes2
        seg2 = np.repeat(np.arange(m2, dtype=np.intp), sizes2)

        # Job block boundaries on the node axis and the sample axis.  A job
        # whose frontier is exhausted simply has an empty block (and, exactly
        # like a solo fit that broke out of its loop, draws no randomness).
        job2 = storage_job_arr[stor2]
        jcounts = np.bincount(job2, minlength=num_jobs)
        jnode_hi = np.cumsum(jcounts)
        jnode_lo = jnode_hi - jcounts
        seg_job_lo = np.repeat(starts2[np.minimum(jnode_lo, m2 - 1)], jcounts)

        # Random feature subset per node: batched uniform k-subsets, drawn
        # from each job's own generator over its own frontier block so every
        # job consumes its RNG exactly as it would alone; the (row-local)
        # rank selection runs fused over the stacked draws.
        if num_jobs == 1:
            draws = rngs[0].random((m2, d))
        else:
            draws = np.vstack(
                [
                    rngs[j].random((jcounts[j], d))
                    for j in range(num_jobs)
                    if jcounts[j]
                ]
            )
        F = np.argsort(draws, axis=1)[:, :k]

        # Per-sample split-position bookkeeping, shared by all feature slots.
        pos_in_seg = np.arange(seg2.size, dtype=np.intp) - starts2[seg2]
        counts_left = (pos_in_seg + 1).astype(float)
        counts_right = sizes2[seg2] - counts_left
        counts_right_safe = np.maximum(counts_right, 1.0)
        count_ok = (counts_left >= min_leaf) & (counts_right >= min_leaf)

        scores = np.full((m2, k), np.inf)
        thrs = np.zeros((m2, k))
        vnexts = np.zeros((m2, k))
        vals_by_slot: List[np.ndarray] = []
        for slot in range(k):
            vals = X_all[rows2, F[seg2, slot]]
            vals_by_slot.append(vals)
            if num_jobs == 1 or vals.size < 16384:
                order = np.lexsort((vals, seg2))
            else:
                # Large frontiers: sorting each job's block alone does
                # strictly less comparison work than one fused sort (the log
                # factor shrinks) and yields the *same* permutation — segment
                # ids are job-grouped, so the fused stable sort never
                # interleaves jobs.  Small frontiers keep the single fused
                # call (per-job call overhead would dominate); either branch
                # is bit-identical.
                order = np.empty(vals.size, dtype=np.intp)
                for j in range(num_jobs):
                    if jcounts[j] == 0:
                        continue
                    lo = starts2[jnode_lo[j]]
                    hi = ends2[jnode_hi[j] - 1]
                    order[lo:hi] = lo + np.lexsort((vals[lo:hi], seg2[lo:hi]))
            vs = vals[order]
            ys = yv2[order]
            # Running sums are cumulated per job block (one slice per job)
            # and the per-segment bases subtract only within-job prefixes, so
            # each job's scores carry exactly the floating-point state a solo
            # fit would produce.  Stacking ys and ys² lets one row-wise
            # cumsum produce both running sums (rows accumulate
            # independently and sequentially, so each row is bit-identical
            # to its own 1-D cumsum).
            if num_jobs == 1:
                c1 = np.cumsum(ys)
                c2 = np.cumsum(ys * ys)
            else:
                stacked = np.empty((2, ys.size))
                stacked[0] = ys
                np.multiply(ys, ys, out=stacked[1])
                csums = np.empty_like(stacked)
                for j in range(num_jobs):
                    if jcounts[j] == 0:
                        continue
                    lo = starts2[jnode_lo[j]]
                    hi = ends2[jnode_hi[j] - 1]
                    np.cumsum(stacked[:, lo:hi], axis=1, out=csums[:, lo:hi])
                c1 = csums[0]
                c2 = csums[1]
            base1 = np.where(starts2 > seg_job_lo, c1[starts2 - 1], 0.0)
            base2 = np.where(starts2 > seg_job_lo, c2[starts2 - 1], 0.0)
            tot1 = c1[ends2 - 1] - base1
            tot2 = c2[ends2 - 1] - base2
            sum_left = c1 - base1[seg2]
            sum2_left = c2 - base2[seg2]
            sum_right = tot1[seg2] - sum_left
            sum2_right = tot2[seg2] - sum2_left
            distinct = np.empty(vs.size, dtype=bool)
            distinct[:-1] = vs[1:] > vs[:-1]
            distinct[-1] = False
            valid = count_ok & distinct
            sse = (sum2_left - sum_left**2 / counts_left) + (
                sum2_right - sum_right**2 / counts_right_safe
            )
            score = np.where(valid, sse, np.inf)
            # Per-node minimum and its first (lowest-position) occurrence.
            minval = np.minimum.reduceat(score, starts2)
            at_min = np.flatnonzero(score == minval[seg2])
            seg_min = seg2[at_min]
            first = np.empty(seg_min.size, dtype=bool)
            first[0] = True
            first[1:] = seg_min[1:] != seg_min[:-1]
            best_pos = at_min[first]
            next_pos = np.minimum(best_pos + 1, vs.size - 1)
            scores[:, slot] = minval
            thrs[:, slot] = 0.5 * (vs[best_pos] + vs[next_pos])
            vnexts[:, slot] = vs[next_pos]

        # Fast path: the globally best feature slot per node is accepted when
        # its threshold provably separates the chosen position (no tie
        # swallow-up), which mirrors the sequential selection outcome.
        node_idx = np.arange(m2)
        jstar = np.argmin(scores, axis=1)
        sstar = scores[node_idx, jstar]
        tstar = thrs[node_idx, jstar]
        has_split = np.isfinite(sstar)
        quick = has_split & (tstar < vnexts[node_idx, jstar])
        chosen_feature = np.full(m2, -1, dtype=np.intp)
        chosen_thr = np.zeros(m2)
        chosen_feature[quick] = F[node_idx, jstar][quick]
        chosen_thr[quick] = tstar[quick]
        # Slow path (rare float-adjacency ties): replicate the reference
        # builder's sequential scan, including its running-best-score quirk.
        for i in np.flatnonzero(has_split & ~quick):
            best_score = np.inf
            lo, hi = starts2[i], ends2[i]
            n_i = hi - lo
            for j in range(k):
                s_ij = scores[i, j]
                if not (s_ij < best_score):
                    continue
                best_score = s_ij
                t_ij = thrs[i, j]
                cnt = int(np.count_nonzero(vals_by_slot[j][lo:hi] <= t_ij))
                if min_leaf <= cnt <= n_i - min_leaf:
                    chosen_feature[i] = F[i, j]
                    chosen_thr[i] = t_ij

        split_nodes = chosen_feature >= 0
        if not np.any(split_nodes):
            emit(stor_of, node_values)
            break

        # Allocate child node ids: two consecutive breadth-first local ids per
        # split node, in frontier order per tree (the frontier keeps each
        # tree's nodes contiguous, so a rank-within-tree subtraction assigns
        # exactly the ids sequential per-node allocation produced).
        stor_children = np.repeat(stor2[split_nodes], 2)
        n_children = stor_children.size
        child_idx = np.arange(n_children, dtype=np.intp)
        first_of_tree = np.empty(n_children, dtype=bool)
        first_of_tree[0] = True
        first_of_tree[1:] = stor_children[1:] != stor_children[:-1]
        tree_start = np.maximum.accumulate(np.where(first_of_tree, child_idx, 0))
        child_local = node_counts[stor_children] + (child_idx - tree_start)
        node_counts += np.bincount(stor_children, minlength=num_trees)

        # Emit this level's records: split info for split nodes, leaves for
        # the rest of the frontier.
        feature_block = np.full(m, -1, dtype=np.intp)
        thr_block = np.zeros(m)
        left_block = np.full(m, -1, dtype=np.intp)
        right_block = np.full(m, -1, dtype=np.intp)
        pos_m = np.flatnonzero(splittable)[split_nodes]
        feature_block[pos_m] = chosen_feature[split_nodes]
        thr_block[pos_m] = chosen_thr[split_nodes]
        left_block[pos_m] = child_local[0::2]
        right_block[pos_m] = child_local[1::2]
        emit(stor_of, node_values, feature_block, thr_block, left_block, right_block)

        # Partition the samples of every split node into its two children
        # with one stable segmented sort (left block first, order preserved).
        feat_per_sample = chosen_feature[seg2]
        keep2 = feat_per_sample >= 0
        rows3, yv3 = rows2[keep2], yv2[keep2]
        seg_kept = seg2[keep2]
        go_left = X_all[rows3, feat_per_sample[keep2]] <= chosen_thr[seg2][keep2]
        remap = np.full(m2, -1, dtype=np.intp)
        q = int(np.count_nonzero(split_nodes))
        remap[split_nodes] = np.arange(q, dtype=np.intp)
        seg_new = remap[seg_kept]
        order_children = np.lexsort((~go_left, seg_new))
        rows_next = rows3[order_children]
        yv_next = yv3[order_children]
        sizes_split = sizes2[split_nodes]
        starts_split = np.zeros(q, dtype=np.intp)
        np.cumsum(sizes_split[:-1], out=starts_split[1:])
        left_counts = np.add.reduceat(go_left.astype(np.intp), starts_split)
        sizes_next = np.empty(2 * q, dtype=np.intp)
        sizes_next[0::2] = left_counts
        sizes_next[1::2] = sizes_split - left_counts

        rows, yv = rows_next, yv_next
        sizes, stor_of = sizes_next, stor_children
        depth += 1

    # -------------------------------------------------------------- freeze
    # Concatenate the level blocks and carve out each tree's node arrays.
    # Within one tree, records were emitted in breadth-first local-id order,
    # so a stable grouping by tree id yields arrays indexed by local id.
    stor_all = np.concatenate(rec_stor)
    order = np.argsort(stor_all, kind="stable")
    value_all = np.concatenate(rec_value)[order]
    feature_all = np.concatenate(rec_feature)[order]
    threshold_all = np.concatenate(rec_threshold)[order]
    left_all = np.concatenate(rec_left)[order]
    right_all = np.concatenate(rec_right)[order]
    tree_ends = np.cumsum(np.bincount(stor_all, minlength=num_trees))

    frozen: List[_ArrayTree] = []
    lo = 0
    for t in range(num_trees):
        hi = int(tree_ends[t])
        frozen.append(
            _ArrayTree(
                feature=feature_all[lo:hi],
                threshold=threshold_all[lo:hi],
                left=left_all[lo:hi],
                right=right_all[lo:hi],
                value=value_all[lo:hi],
                max_depth=max_depth,
            )
        )
        lo = hi
    forests: List[List[_ArrayTree]] = []
    cursor = 0
    for boots in bootstrap_rows_per_job:
        forests.append(frozen[cursor : cursor + len(boots)])
        cursor += len(boots)
    return forests


def _build_forest_levelwise(
    X: np.ndarray,
    y: np.ndarray,
    bootstrap_rows: Sequence[np.ndarray],
    rng: np.random.Generator,
    max_depth: int,
    min_samples_split: int,
    min_samples_leaf: int,
    n_split_features: int,
) -> List[_ArrayTree]:
    """Fit one forest level-wise: a single-job :func:`_build_forest_fleet`."""
    return _build_forest_fleet(
        [X],
        [y],
        [bootstrap_rows],
        [rng],
        max_depth=max_depth,
        min_samples_split=min_samples_split,
        min_samples_leaf=min_samples_leaf,
        n_split_features=n_split_features,
    )[0]


class RandomForestSurrogate(Surrogate):
    """Bagged ensemble of :class:`DecisionTreeRegressor`.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, max_features:
        Passed to each tree.
    bootstrap:
        Whether each tree trains on a bootstrap resample.
    fit_algorithm:
        ``"levelwise"`` (default) builds all trees jointly, one depth level at
        a time, with segmented NumPy passes — the fast path the asynchronous
        search relies on for cheap refits.  ``"recursive"`` builds each tree
        with the reference depth-first :class:`DecisionTreeRegressor`; both
        produce statistically equivalent forests.
    seed:
        Seed of the forest's random generator (feature subsampling and
        bootstrap resampling).
    """

    def __init__(
        self,
        n_estimators: int = 12,
        max_depth: int = 18,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: Optional[object] = "sqrt",
        bootstrap: bool = True,
        fit_algorithm: str = "levelwise",
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if fit_algorithm not in ("levelwise", "recursive"):
            raise ValueError(f"unknown fit_algorithm {fit_algorithm!r}")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid minimum sample constraints")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.fit_algorithm = fit_algorithm
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._trees: List[object] = []
        self._fused_cache: Optional[Tuple] = None
        self.fitted = False

    def _n_split_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(math.ceil(math.sqrt(d))))
        return max(1, min(d, int(self.max_features)))

    def _bootstrap_rows(self, n: int) -> List[np.ndarray]:
        if self.bootstrap and n > 1:
            # One (trees, n) draw consumes the generator exactly like one
            # size-n draw per tree (row-major fill), at one call.
            return list(self._rng.integers(0, n, size=(self.n_estimators, n)))
        return [np.arange(n) for _ in range(self.n_estimators)]

    def _fused_tables(self) -> Tuple:
        """Concatenated node tables of all trees (cached until the next fit).

        Returns ``(feature, threshold, left, right, value, roots, depth_cap)``
        where child pointers are offset into the concatenated arrays and
        ``roots`` holds each tree's root position.
        """
        if self._fused_cache is None:
            parts = [_tree_arrays(tree) for tree in self._trees]
            sizes = np.asarray([p[0].shape[0] for p in parts], dtype=np.intp)
            roots = np.zeros(len(parts), dtype=np.intp)
            np.cumsum(sizes[:-1], out=roots[1:])
            self._fused_cache = (
                np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]),
                np.concatenate([p[2] + off for p, off in zip(parts, roots)]),
                np.concatenate([p[3] + off for p, off in zip(parts, roots)]),
                np.concatenate([p[4] for p in parts]),
                roots,
                max(p[5] for p in parts),
            )
        return self._fused_cache

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestSurrogate":
        X, y = self._validate(X, y)
        self._fused_cache = None
        if self.fit_algorithm == "levelwise":
            self._trees = _build_forest_levelwise(
                X,
                y,
                bootstrap_rows=self._bootstrap_rows(X.shape[0]),
                rng=self._rng,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                n_split_features=self._n_split_features(X.shape[1]),
            )
            self.fitted = True
            return self
        # Reference path: per-tree bootstrap + recursive build, with the same
        # interleaved RNG draw order as the original implementation.
        n = X.shape[0]
        self._trees = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=self._rng,
            )
            if self.bootstrap and n > 1:
                sample = self._rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree.fit(X[sample], y[sample])
            self._trees.append(tree)
        self.fitted = True
        return self

    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if not self.fitted:
            raise RuntimeError("the forest has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        # One fused traversal over all (tree, row) pairs instead of one
        # vectorised traversal per tree: bit-identical predictions (traversal
        # is pure gather/compare and the moment reduction sees the same
        # (trees, n) stack), at a fraction of the per-tree call overhead.
        feature, threshold, left, right, value, roots, depth_cap = self._fused_tables()
        n = X.shape[0]
        nodes = np.repeat(roots, n)
        row_map = np.tile(np.arange(n, dtype=np.intp), len(self._trees))
        for _ in range(depth_cap + 1):
            is_internal = feature[nodes] >= 0
            if not np.any(is_internal):
                break
            at = np.nonzero(is_internal)[0]
            nd = nodes[at]
            go_left = X[row_map[at], feature[nd]] <= threshold[nd]
            nodes[at] = np.where(go_left, left[nd], right[nd])
        predictions = value[nodes].reshape(len(self._trees), n)
        if n == 1:
            # Keep single-row predictions on the same reduction path as
            # batched ones: over a (trees, 1) array the outer-axis reduction
            # is contiguous and NumPy switches to pairwise summation, which
            # differs in the last ulp from the sequential row adds used for
            # wider batches.  Widening to two identical columns pins the
            # batched path, so scoring a row alone or inside any batch is
            # bit-identical (the service-style evaluation batching relies on
            # this).
            predictions = np.concatenate([predictions, predictions], axis=1)
            mean = predictions.mean(axis=0)[:1]
            std = np.maximum(predictions.std(axis=0)[:1], 1e-9)
            return mean, std
        mean = predictions.mean(axis=0)
        std = predictions.std(axis=0)
        # A forest of identical trees (tiny datasets) still needs non-zero
        # uncertainty for the acquisition function to explore.
        std = np.maximum(std, 1e-9)
        return mean, std


# --------------------------------------------------------------------- fleet
def _tree_arrays(tree: object) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Flat node arrays of a fitted tree (either storage representation)."""
    if isinstance(tree, _ArrayTree):
        return tree.feature, tree.threshold, tree.left, tree.right, tree.value, tree.max_depth
    return (
        np.asarray(tree._feature, dtype=np.intp),
        np.asarray(tree._threshold, dtype=float),
        np.asarray(tree._left, dtype=np.intp),
        np.asarray(tree._right, dtype=np.intp),
        np.asarray(tree._value, dtype=float),
        tree.max_depth,
    )


def fleet_compatibility_key(model: RandomForestSurrogate, num_features: int) -> Tuple:
    """The hyperparameters a fleet fit requires its members to share.

    Used both by :func:`fit_forest_fleet` (to reject mixed fleets) and by
    batch drivers grouping surrogates into compatible fleets — one
    definition, so the two can never drift apart.
    """
    return (
        num_features,
        model.max_depth,
        model.min_samples_split,
        model.min_samples_leaf,
        model._n_split_features(num_features),
    )


def fit_forest_fleet(
    fits: Sequence[Tuple[RandomForestSurrogate, np.ndarray, np.ndarray]],
) -> None:
    """Fit several independent random forests in one level-wise joint pass.

    ``fits`` is a sequence of ``(forest, X, y)`` triples — typically the RF
    surrogates of several concurrent campaigns, each with its own training
    set.  Every forest ends up **bit-identical** to ``forest.fit(X, y)`` run
    on its own (same bootstrap draws, same feature subsets, same node arrays;
    see :func:`_build_forest_fleet`), but the per-level NumPy pass overhead —
    the dominant cost of small refits — is paid once for the fleet instead of
    once per forest.

    All forests must use the level-wise fit algorithm, share the same split
    hyperparameters (``max_depth``, ``min_samples_split``,
    ``min_samples_leaf`` and the resolved number of split features) and train
    on the same feature dimensionality; forests may differ in
    ``n_estimators`` and training-set size.
    """
    if not fits:
        return
    models = [model for model, _, _ in fits]
    if len({id(model) for model in models}) != len(models):
        raise ValueError("each forest may appear only once per fleet fit")
    Xs: List[np.ndarray] = []
    ys: List[np.ndarray] = []
    rngs: List[np.random.Generator] = []
    shared = None
    for model, X, y in fits:
        if model.fit_algorithm != "levelwise":
            raise ValueError("fleet fitting requires fit_algorithm='levelwise'")
        X, y = model._validate(X, y)
        key = fleet_compatibility_key(model, X.shape[1])
        if shared is None:
            shared = key
        elif key != shared:
            raise ValueError(
                f"incompatible fleet member: {key} != {shared} "
                "(group forests by split hyperparameters and dimensionality)"
            )
        Xs.append(X)
        ys.append(y)
        rngs.append(model._rng)
    # Bootstrap draws only after every member validated: an error above must
    # not leave earlier members' RNG streams advanced (a later solo fit would
    # no longer be bit-identical).
    boots = [model._bootstrap_rows(X.shape[0]) for (model, _, _), X in zip(fits, Xs)]
    forests = _build_forest_fleet(
        Xs,
        ys,
        boots,
        rngs,
        max_depth=shared[1],
        min_samples_split=shared[2],
        min_samples_leaf=shared[3],
        n_split_features=shared[4],
    )
    for model, trees in zip(models, forests):
        model._trees = trees
        model._fused_cache = None
        model.fitted = True


def predict_forest_fleet(
    jobs: Sequence[Tuple[RandomForestSurrogate, np.ndarray]],
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Predict with several forests, each over its own candidate matrix.

    One fused vectorised traversal walks every (forest, tree, candidate)
    triple at once, so the per-tree/per-level NumPy call overhead of
    :meth:`RandomForestSurrogate.predict` is paid once for the fleet.  The
    returned per-job ``(mean, std)`` pairs are **bit-identical** to calling
    ``forest.predict(X)`` per job: node traversal is pure gather/compare and
    the per-job moment reduction runs on the same ``(trees, n)`` stack a solo
    predict builds.
    """
    if not jobs:
        return []
    feats: List[np.ndarray] = []
    thrs: List[np.ndarray] = []
    lefts: List[np.ndarray] = []
    rights: List[np.ndarray] = []
    values: List[np.ndarray] = []
    Xs: List[np.ndarray] = []
    root_parts: List[np.ndarray] = []
    rowmap_parts: List[np.ndarray] = []
    block_shapes: List[Tuple[int, int]] = []
    node_off = 0
    row_off = 0
    max_depth = 0
    for forest, X in jobs:
        if not forest.fitted:
            raise RuntimeError("the forest has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Xs.append(X)
        n = X.shape[0]
        f, t, l, r, v, roots, depth_cap = forest._fused_tables()
        feats.append(f)
        thrs.append(t)
        lefts.append(l + node_off)
        rights.append(r + node_off)
        values.append(v)
        root_parts.append(np.repeat(roots + node_off, n))
        rowmap_parts.append(np.tile(row_off + np.arange(n, dtype=np.intp), len(forest._trees)))
        node_off += f.shape[0]
        max_depth = max(max_depth, depth_cap)
        block_shapes.append((len(forest._trees), n))
        row_off += n
    feature = np.concatenate(feats)
    threshold = np.concatenate(thrs)
    left = np.concatenate(lefts)
    right = np.concatenate(rights)
    value = np.concatenate(values)
    X_all = np.vstack(Xs)
    nodes = np.concatenate(root_parts)
    row_map = np.concatenate(rowmap_parts)

    for _ in range(max_depth + 1):
        is_internal = feature[nodes] >= 0
        if not np.any(is_internal):
            break
        at = np.nonzero(is_internal)[0]
        f = feature[nodes[at]]
        t = threshold[nodes[at]]
        go_left = X_all[row_map[at], f] <= t
        nodes[at] = np.where(go_left, left[nodes[at]], right[nodes[at]])
    preds = value[nodes]

    results: List[Tuple[np.ndarray, np.ndarray]] = []
    cursor = 0
    for num_trees, n in block_shapes:
        block = preds[cursor : cursor + num_trees * n].reshape(num_trees, n)
        cursor += num_trees * n
        if n == 1:
            # Same single-row reduction-path normalisation as
            # RandomForestSurrogate.predict.
            block = np.concatenate([block, block], axis=1)
            results.append(
                (block.mean(axis=0)[:1], np.maximum(block.std(axis=0)[:1], 1e-9))
            )
            continue
        mean = block.mean(axis=0)
        std = np.maximum(block.std(axis=0), 1e-9)
        results.append((mean, std))
    return results
