"""Multi-point proposal via the constant-liar strategy.

Asynchronous BO must hand out several configurations at once (one per idle
worker).  The paper uses the constant-liar strategy (Ginsbourger et al.): after
selecting the best candidate by the acquisition function, the model is updated
with that candidate and a "lie" equal to the worst objective collected so far,
which pushes the next selection away from the already-chosen region; the
process repeats until enough configurations have been generated.

Two implementations are provided:

* ``strategy="refit"`` — the literal algorithm: the surrogate copy is refitted
  with the lie after every pick.  Exact but expensive for large batches.
* ``strategy="kernel_penalty"`` (default) — a fast approximation: instead of
  refitting, the acquisition scores of candidates close (in unit-hypercube
  distance) to an already-picked candidate are reduced by the amount the lie
  would have reduced them (their exploration bonus collapses and their mean is
  pulled toward the lie).  This preserves the diversification effect at a cost
  independent of the batch size, which matters because the virtual-time
  experiments hand out batches of up to 128 configurations.

The deviation is documented in DESIGN.md; the ``refit`` strategy is available
for exact reproduction and is exercised by the test suite and an ablation
benchmark.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.acquisition import UCBAcquisition
from repro.core.surrogate.base import Surrogate

__all__ = ["ConstantLiar"]


class ConstantLiar:
    """Select a batch of candidate indices using the constant-liar strategy.

    Parameters
    ----------
    strategy:
        ``"kernel_penalty"`` (fast approximation, default) or ``"refit"``
        (literal constant liar).
    penalty_length_scale:
        Neighbourhood radius (in unit-hypercube distance per dimension) of the
        kernel penalty.
    """

    def __init__(self, strategy: str = "kernel_penalty", penalty_length_scale: float = 0.15):
        if strategy not in ("kernel_penalty", "refit"):
            raise ValueError(f"unknown liar strategy {strategy!r}")
        if penalty_length_scale <= 0:
            raise ValueError("penalty_length_scale must be positive")
        self.strategy = strategy
        self.penalty_length_scale = penalty_length_scale

    def select(
        self,
        n: int,
        surrogate: Surrogate,
        acquisition: UCBAcquisition,
        candidates_encoded: np.ndarray,
        candidates_unit: np.ndarray,
        train_X: np.ndarray,
        train_y: np.ndarray,
        predictions: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> List[int]:
        """Return the indices of ``n`` selected candidates.

        Parameters
        ----------
        n:
            Number of configurations to select (the number of idle workers).
        surrogate:
            The fitted surrogate model.
        acquisition:
            The UCB acquisition.
        candidates_encoded:
            Candidate matrix in the surrogate's encoding.
        candidates_unit:
            Candidate matrix in the unit hypercube (used for the kernel
            penalty distances).
        train_X, train_y:
            Current training data (needed by the ``refit`` strategy).
        predictions:
            Optional precomputed ``(mean, std)`` surrogate scores of the
            candidate matrix (e.g. from a sharded scoring pass).  Used by the
            kernel-penalty strategy instead of its own ``predict`` call; the
            refit strategy re-predicts per pick and ignores them (its first
            prediction equals the precomputed one).
        """
        if n <= 0:
            return []
        num_candidates = candidates_encoded.shape[0]
        n = min(n, num_candidates)
        if self.strategy == "refit":
            return self._select_refit(
                n, surrogate, acquisition, candidates_encoded, train_X, train_y
            )
        return self._select_kernel_penalty(
            n, surrogate, acquisition, candidates_encoded, candidates_unit, predictions
        )

    # ------------------------------------------------------------------ exact
    def _select_refit(
        self,
        n: int,
        surrogate: Surrogate,
        acquisition: UCBAcquisition,
        candidates_encoded: np.ndarray,
        train_X: np.ndarray,
        train_y: np.ndarray,
    ) -> List[int]:
        lie = float(np.min(train_y)) if train_y.size else 0.0
        model = copy.deepcopy(surrogate)
        # Preallocate the augmented training set once (train_X may be a view
        # into the optimizer's incremental cache — it is copied here, not
        # mutated) instead of re-stacking it on every pick.
        m = train_X.shape[0]
        X_aug = np.empty((m + n, train_X.shape[1]), dtype=float)
        X_aug[:m] = train_X
        y_aug = np.empty(m + n, dtype=float)
        y_aug[:m] = train_y
        selected: List[int] = []
        available = np.ones(candidates_encoded.shape[0], dtype=bool)
        for i in range(n):
            mean, std = model.predict(candidates_encoded)
            scores = acquisition(mean, std)
            scores[~available] = -np.inf
            pick = int(np.argmax(scores))
            selected.append(pick)
            available[pick] = False
            X_aug[m + i] = candidates_encoded[pick]
            y_aug[m + i] = lie
            model = copy.deepcopy(surrogate)
            model.fit(X_aug[: m + i + 1], y_aug[: m + i + 1])
        return selected

    # ---------------------------------------------------------- approximation
    def _select_kernel_penalty(
        self,
        n: int,
        surrogate: Surrogate,
        acquisition: UCBAcquisition,
        candidates_encoded: np.ndarray,
        candidates_unit: np.ndarray,
        predictions: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> List[int]:
        mean, std = (
            predictions if predictions is not None else surrogate.predict(candidates_encoded)
        )
        scores = acquisition(mean, std)
        # Magnitude of the penalty: collapsing the confidence bonus plus
        # pulling the mean toward the worst observation is, at the selected
        # point itself, roughly the candidate's full score range.
        span = float(np.max(scores) - np.min(scores)) if scores.size > 1 else 1.0
        span = max(span, 1e-9)
        length2 = (self.penalty_length_scale**2) * candidates_unit.shape[1]
        selected: List[int] = []
        available = np.ones(candidates_encoded.shape[0], dtype=bool)
        working = scores.copy()
        for _ in range(n):
            masked = np.where(available, working, -np.inf)
            pick = int(np.argmax(masked))
            selected.append(pick)
            available[pick] = False
            # Discourage candidates near the pick, proportionally to proximity.
            d2 = np.sum((candidates_unit - candidates_unit[pick]) ** 2, axis=1)
            working = working - span * np.exp(-0.5 * d2 / length2)
        return selected
