"""Manager-overhead models: how long the search itself takes.

The paper's Fig. 4 (d) and (f) hinge on the cost of updating the surrogate
model: the random forest refit is cheap, so workers are kept busy close to
100 % of the time, while the Gaussian process has :math:`O(n^3)` update cost
and eventually takes minutes per update, starving the workers.

The virtual-time search charges this cost to the manager between receiving
results and submitting new configurations.  Two models are provided:

* :class:`AnalyticOverheadModel` (default) — a calibrated closed-form model of
  the update and candidate-selection time as a function of the number of
  observations ``n`` and the batch size.  Fully reproducible and independent
  of the speed of the machine running the reproduction.
* :class:`MeasuredOverheadModel` — uses the wall-clock time actually spent in
  the optimizer's ``tell``/``ask`` (scaled by a constant), for studies where
  the absolute cost of this reproduction's own models is of interest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

from repro.core.optimizer import BayesianOptimizer
from repro.core.surrogate import (
    ConstantSurrogate,
    GaussianProcessSurrogate,
    RandomForestSurrogate,
    TreeParzenEstimator,
)

__all__ = ["AnalyticOverheadModel", "MeasuredOverheadModel", "make_overhead_model"]


@dataclass(frozen=True)
class AnalyticOverheadModel:
    """Closed-form manager overhead (seconds of search time).

    Calibrated so that on the paper's scale (Theta login/MOM nodes, a few
    hundred to ~1500 evaluations in one hour):

    * the RF surrogate costs a few seconds per update at n ≈ 1000 — enough to
      stay near-100 % worker utilisation with 128 workers and minute-long
      evaluations;
    * the GP surrogate crosses one minute per update around n ≈ 400 and keeps
      growing cubically, which reproduces the utilisation collapse of
      Fig. 4 (f);
    * random sampling is essentially free.

    Attributes
    ----------
    rf_per_point:
        RF coefficient of the ``n log n`` term, seconds.
    gp_cubic:
        GP coefficient of the ``n^3`` term, seconds.
    tpe_per_point:
        TPE coefficient of the ``n`` term, seconds.
    per_candidate:
        Cost of scoring one sampled candidate during ask(), seconds.
    constant:
        Fixed per-interaction overhead (bookkeeping, serialisation), seconds.
    """

    rf_per_point: float = 4.0e-4
    gp_cubic: float = 1.2e-6
    tpe_per_point: float = 2.0e-3
    per_candidate: float = 1.0e-3
    constant: float = 0.2

    def tell_cost(self, optimizer: BayesianOptimizer, num_new: int) -> float:
        """Search-time cost of ingesting ``num_new`` results and refitting."""
        n = optimizer.num_observations
        surrogate = optimizer.surrogate
        if optimizer.random_sampling or isinstance(surrogate, ConstantSurrogate):
            return self.constant * 0.05
        if isinstance(surrogate, GaussianProcessSurrogate):
            return self.constant + self.gp_cubic * float(n) ** 3
        if isinstance(surrogate, TreeParzenEstimator):
            return self.constant + self.tpe_per_point * n
        if isinstance(surrogate, RandomForestSurrogate):
            return self.constant + self.rf_per_point * n * math.log2(max(n, 2))
        return self.constant + self.rf_per_point * n * math.log2(max(n, 2))

    def ask_cost(self, optimizer: BayesianOptimizer, batch_size: int) -> float:
        """Search-time cost of generating a batch of ``batch_size`` proposals."""
        if optimizer.random_sampling:
            return self.constant * 0.05
        candidates = optimizer.num_candidates
        cost = self.constant + self.per_candidate * candidates
        if isinstance(optimizer.surrogate, GaussianProcessSurrogate):
            # GP prediction is O(n) per candidate.
            cost += 2.0e-6 * candidates * max(optimizer.num_observations, 1)
        return cost


@dataclass(frozen=True)
class MeasuredOverheadModel:
    """Manager overhead taken from the optimizer's measured wall-clock times.

    Attributes
    ----------
    scale:
        Multiplier applied to the measured durations (e.g. to account for the
        original experiments running on slower KNL service nodes).
    """

    scale: float = 1.0

    def tell_cost(self, optimizer: BayesianOptimizer, num_new: int) -> float:
        return self.scale * optimizer.last_tell_duration

    def ask_cost(self, optimizer: BayesianOptimizer, batch_size: int) -> float:
        return self.scale * optimizer.last_ask_duration


def make_overhead_model(kind: Union[str, AnalyticOverheadModel, MeasuredOverheadModel]):
    """Build an overhead model from "analytic"/"measured" or pass through."""
    if isinstance(kind, (AnalyticOverheadModel, MeasuredOverheadModel)):
        return kind
    name = str(kind).lower()
    if name == "analytic":
        return AnalyticOverheadModel()
    if name == "measured":
        return MeasuredOverheadModel()
    raise ValueError(f"unknown overhead model {kind!r} (expected 'analytic' or 'measured')")
