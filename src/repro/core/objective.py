"""Objective definitions.

DeepHyper maximises the objective it is given; the paper minimises the HEP
workflow run time by maximising ``-log(runtime)`` (§III-C): the logarithm lets
the search discriminate between small run times, and failed or timed-out
evaluations return NaN.

:class:`Objective` encapsulates this transformation so that every component
(search, history, metrics) can convert between *objective space* (maximised)
and *run-time space* (minimised, what the figures report) without sprinkling
sign conventions around the code base.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["Objective", "runtime_objective", "FAILURE_OBJECTIVE"]

#: Objective value recorded for failed evaluations when a numeric placeholder
#: is required (e.g. to keep surrogate training data rectangular).  Chosen far
#: below any realistic ``-log(runtime)`` value.
FAILURE_OBJECTIVE = -25.0


@dataclass(frozen=True)
class Objective:
    """A maximised objective derived from a measured run time.

    Parameters
    ----------
    use_log:
        If True (paper default) the objective is ``-log(runtime)``; otherwise
        it is ``-runtime``.
    failure_value:
        Numeric stand-in for NaN objectives when a finite value is needed
        (model fitting); NaN is preserved in the recorded history.
    """

    use_log: bool = True
    failure_value: float = FAILURE_OBJECTIVE

    # ------------------------------------------------------------ conversions
    def from_runtime(self, runtime: float) -> float:
        """Objective value of a measured run time (NaN maps to NaN)."""
        if runtime is None or not math.isfinite(runtime) or runtime <= 0:
            return float("nan")
        return -math.log(runtime) if self.use_log else -runtime

    def to_runtime(self, objective: float) -> float:
        """Run time corresponding to an objective value (NaN maps to NaN)."""
        if objective is None or not math.isfinite(objective):
            return float("nan")
        return math.exp(-objective) if self.use_log else -objective

    def fill_failure(self, objective: float) -> float:
        """Replace NaN objectives with the finite failure placeholder."""
        if objective is None or not math.isfinite(objective):
            return self.failure_value
        return float(objective)

    def is_failure(self, objective: float) -> bool:
        """Whether an objective value corresponds to a failed evaluation."""
        return objective is None or not math.isfinite(objective)


def runtime_objective(
    evaluate: Callable[[dict], float],
    objective: Optional[Objective] = None,
) -> Callable[[dict], float]:
    """Wrap a run-time evaluator into a maximised objective function.

    Parameters
    ----------
    evaluate:
        Callable mapping a configuration to a run time in seconds (NaN on
        failure).
    objective:
        The :class:`Objective` transform (defaults to ``-log(runtime)``).

    Returns
    -------
    Callable mapping a configuration to the maximised objective value.
    """
    transform = objective or Objective()

    def wrapped(configuration: dict) -> float:
        return transform.from_runtime(evaluate(configuration))

    return wrapped
