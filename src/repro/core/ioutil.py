"""Crash-safe filesystem primitives shared by every durable writer.

A process killed half-way through a plain ``write_text`` leaves a torn file
behind, and the analysis layer's mtime/size-keyed parsed-CSV cache would then
treat the torn bytes as authoritative.  Every on-disk artefact that must
survive a crash — history CSVs, the campaign journal's manifest and
checkpoint records — therefore goes through the same two primitives:

* :func:`atomic_write_text` / :func:`atomic_write_bytes` — write to a
  temporary file in the *same directory* (so the final rename never crosses a
  filesystem boundary), flush, ``fsync``, then ``os.replace`` onto the target
  name.  Readers observe either the complete old content or the complete new
  content, never a mixture.
* :func:`fsync_file` — flush+fsync an open append-mode handle, used by the
  journal to make its append-only column files durable before the checkpoint
  record that references them is replaced.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import IO, Union

__all__ = ["atomic_write_bytes", "atomic_write_text", "fsync_file"]


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Durably replace ``path``'s content with ``data`` (all-or-nothing).

    The bytes are written to a uniquely named temporary file next to the
    target, fsynced, and renamed over it with ``os.replace`` — atomic on
    POSIX, so a crash at any point leaves either the previous file or the new
    one, never a torn mixture.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        # Leave no temporary droppings behind on failure.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Durably replace ``path``'s content with ``text`` (all-or-nothing)."""
    atomic_write_bytes(path, text.encode("utf-8"))


def fsync_file(handle: IO) -> None:
    """Flush and fsync an open file handle (durability barrier)."""
    handle.flush()
    os.fsync(handle.fileno())
