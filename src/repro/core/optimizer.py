"""The ask/tell Bayesian optimizer (sampling-based, §III-A).

One optimizer instance drives one autotuning run.  Its lifecycle mirrors
Algorithm 1's optimization loop:

* :meth:`ask` — sample a large number of candidate configurations from the
  prior (uniform/log-uniform by default, the VAE-based informative prior when
  transfer learning is enabled), score them with the surrogate model through
  the UCB acquisition, and return a batch chosen by the constant-liar
  strategy.  Before enough data has been collected the optimizer simply
  returns prior samples (the initialisation phase).
* :meth:`tell` — record completed evaluations and refit the surrogate.

The hot path is columnar: candidates are sampled as per-parameter NumPy
columns (:meth:`~repro.core.space.SearchSpace.sample_columns`), encoded
column-wise, and only the configurations actually proposed are materialised
as dicts.  The evaluated history is kept as an *incremental* encoded cache —
``tell`` appends encoded rows and objective values into growing buffers, so
neither ``tell`` nor ``ask`` ever re-encodes the full history (the pre-PR
behaviour re-encoded all ``n`` observations on every interaction, making the
Python-side overhead grow linearly per iteration).  Duplicate detection uses
raw-value key rows (:meth:`~repro.core.space.SearchSpace.key_array`) hashed
once per configuration instead of per-candidate ``repr`` tuples.  Surrogates
that advertise :attr:`~repro.core.surrogate.base.Surrogate.supports_partial_fit`
(the GP's rank-1 Cholesky extension) are handed only the rows appended since
the last fit instead of the whole training matrix.

The optimizer measures the wall-clock time spent fitting the surrogate and
generating candidates (:attr:`last_tell_duration`, :attr:`last_ask_duration`)
so the virtual-time search can charge a "measured" manager overhead; an
analytic overhead model is also available (:mod:`repro.core.overhead`).
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.acquisition import DEFAULT_KAPPA, UCBAcquisition
from repro.core.arrays import grow_buffer
from repro.core.liar import ConstantLiar
from repro.core.objective import Objective
from repro.core.priors import IndependentPrior, JointPrior
from repro.core.space import (
    CategoricalParameter,
    ColumnBatch,
    Configuration,
    ConfigsLike,
    SearchSpace,
)
from repro.core.surrogate import (
    ConstantSurrogate,
    GaussianProcessSurrogate,
    RandomForestSurrogate,
    Surrogate,
)

__all__ = ["BayesianOptimizer", "make_surrogate"]


def make_surrogate(kind: Union[str, Surrogate], seed: int = 0) -> Surrogate:
    """Build a surrogate from its name ("RF", "GP", "RAND") or pass through."""
    if isinstance(kind, Surrogate):
        return kind
    name = str(kind).upper()
    if name in ("RF", "RANDOM_FOREST", "RANDOMFOREST"):
        return RandomForestSurrogate(seed=seed)
    if name in ("GP", "GAUSSIAN_PROCESS", "GAUSSIANPROCESS"):
        return GaussianProcessSurrogate()
    if name in ("RAND", "RANDOM", "DUMMY", "NONE"):
        return ConstantSurrogate()
    raise ValueError(f"unknown surrogate kind {kind!r} (expected RF, GP or RAND)")


class BayesianOptimizer:
    """Sampling-based Bayesian optimizer over a mixed search space.

    Parameters
    ----------
    space:
        The search space.
    surrogate:
        Surrogate model or its name ("RF", "GP", "RAND").
    prior:
        Joint prior used to generate candidate configurations; defaults to the
        space's independent uniform/log-uniform prior.  Transfer learning
        replaces this with the VAE-based informative prior.
    kappa:
        UCB exploration weight (paper default 1.96).
    num_candidates:
        Number of candidate configurations sampled per :meth:`ask`.
    n_initial_points:
        Number of evaluations before the surrogate is trusted; until then
        :meth:`ask` returns prior samples.
    encoding:
        "numeric" (ordinal, used by tree models) or "one_hot" (used by the
        GP).  "auto" picks per surrogate type.
    liar_strategy:
        Constant-liar flavour ("kernel_penalty" or "refit").
    random_sampling:
        If True, :meth:`ask` never uses the surrogate (the paper's RAND
        baseline).
    refit_interval:
        Minimum number of *new* observations between surrogate refits.  The
        default (1) refits on every ``tell`` as DeepHyper does; larger values
        trade a slightly staler model for faster campaign wall-clock time in
        the large reproduction sweeps (the charged *search-time* overhead is
        unaffected — see :mod:`repro.core.overhead`).
    incremental:
        If True (default), the encoded history is cached incrementally:
        ``tell`` appends encoded rows into growing buffers and ``ask``/``fit``
        reuse them.  If False, the full history is re-encoded on every
        interaction — the pre-cache behaviour, kept selectable so the
        regression tests can assert both paths produce bit-identical
        proposals and the benchmarks can quantify the cache's effect.
    seed:
        Seed of the optimizer's RNG.
    """

    def __init__(
        self,
        space: SearchSpace,
        surrogate: Union[str, Surrogate] = "RF",
        prior: Optional[JointPrior] = None,
        kappa: float = DEFAULT_KAPPA,
        num_candidates: int = 512,
        n_initial_points: int = 10,
        encoding: str = "auto",
        liar_strategy: str = "kernel_penalty",
        random_sampling: bool = False,
        refit_interval: int = 1,
        incremental: bool = True,
        objective: Optional[Objective] = None,
        seed: int = 0,
    ):
        if num_candidates < 1:
            raise ValueError("num_candidates must be >= 1")
        if n_initial_points < 1:
            raise ValueError("n_initial_points must be >= 1")
        self.space = space
        self.surrogate = make_surrogate(surrogate, seed=seed)
        self.prior = prior if prior is not None else IndependentPrior(space)
        self.acquisition = UCBAcquisition(kappa=kappa)
        self.num_candidates = int(num_candidates)
        self.n_initial_points = int(n_initial_points)
        self.liar = ConstantLiar(strategy=liar_strategy)
        self.random_sampling = bool(random_sampling)
        if refit_interval < 1:
            raise ValueError("refit_interval must be >= 1")
        self.refit_interval = int(refit_interval)
        self.incremental = bool(incremental)
        self._new_since_fit = 0
        self.objective = objective or Objective()
        self.rng = np.random.default_rng(seed)

        if encoding == "auto":
            encoding = (
                "one_hot"
                if isinstance(self.surrogate, GaussianProcessSurrogate)
                else "numeric"
            )
        if encoding not in ("numeric", "one_hot"):
            raise ValueError(f"unknown encoding {encoding!r}")
        self.encoding = encoding

        self._configs: List[Configuration] = []
        self._objectives: List[float] = []
        self._evaluated_keys: set = set()
        # Incremental encoded-history cache (capacity-doubling buffers).
        self._enc_dim = (
            space.one_hot_dimension() if self.encoding == "one_hot" else len(space)
        )
        self._X_buf = np.empty((0, self._enc_dim), dtype=float)
        self._y_buf = np.empty(0, dtype=float)
        self._n_rows = 0
        # Rows already incorporated into the surrogate (via fit/partial_fit);
        # lets tell() hand partial-fit-capable models only the new rows.
        self._n_fitted_rows = 0
        self.last_tell_duration = 0.0
        self.last_ask_duration = 0.0
        self.num_fits = 0

    # ------------------------------------------------------------- properties
    @property
    def num_observations(self) -> int:
        """Number of evaluations told to the optimizer so far."""
        return len(self._configs)

    def _encode(self, configs: ConfigsLike) -> np.ndarray:
        if self.encoding == "one_hot":
            return self.space.to_one_hot_array(configs)
        return self.space.to_numeric_array(configs)

    @staticmethod
    def _key(config: Configuration) -> tuple:
        """Legacy repr-based dedup key (kept for tests and benchmarks)."""
        return tuple(sorted((k, repr(v)) for k, v in config.items()))

    def _key_bytes(self, configs: ConfigsLike) -> List[bytes]:
        """One stable dedup key per configuration, from the raw-value rows."""
        return [row.tobytes() for row in self.space.key_array(configs)]

    # ------------------------------------------------------- history buffers
    def _append_history(self, X_new: np.ndarray, y_new: np.ndarray) -> None:
        """Append encoded rows/objectives into the capacity-doubling buffers."""
        needed = self._n_rows + X_new.shape[0]
        self._X_buf = grow_buffer(self._X_buf, needed)
        self._y_buf = grow_buffer(self._y_buf, needed)
        self._X_buf[self._n_rows : needed] = X_new
        self._y_buf[self._n_rows : needed] = y_new
        self._n_rows = needed

    def _train_data(self) -> Tuple[np.ndarray, np.ndarray]:
        """The encoded training matrix and objective vector.

        With the incremental cache these are views into the append-only
        buffers; without it the full history is re-encoded (pre-cache
        behaviour, bit-identical because the column codecs are elementwise).
        """
        if self.incremental:
            return self._X_buf[: self._n_rows], self._y_buf[: self._n_rows]
        X = self._encode(self._configs)
        y = np.asarray(self._objectives, dtype=float)
        return X, y

    # ------------------------------------------------------------------- tell
    def tell(self, configurations: Sequence[Configuration], objectives: Sequence[float]) -> None:
        """Record completed evaluations and refit the surrogate.

        ``objectives`` are maximised values; NaN marks failures and is
        replaced by the objective's failure placeholder for model fitting.
        """
        if len(configurations) != len(objectives):
            raise ValueError("configurations and objectives must have equal length")
        if not configurations:
            return
        start = time.perf_counter()
        new_configs = [dict(config) for config in configurations]
        batch = ColumnBatch.from_configurations(self.space, new_configs)
        filled = [self.objective.fill_failure(obj) for obj in objectives]
        self._configs.extend(new_configs)
        self._objectives.extend(filled)
        self._evaluated_keys.update(self._key_bytes(batch))
        self._new_since_fit += len(new_configs)
        if self.incremental:
            self._append_history(self._encode(batch), np.asarray(filled, dtype=float))
        should_fit = (
            not self.random_sampling
            and self.num_observations >= self.n_initial_points
            and (not self.surrogate.fitted or self._new_since_fit >= self.refit_interval)
        )
        if should_fit:
            X, y = self._train_data()
            fitted_rows = self._n_fitted_rows
            if (
                self.surrogate.supports_partial_fit
                and self.surrogate.fitted
                and 0 < fitted_rows < X.shape[0]
            ):
                # Incremental surrogates (the GP's rank-1 Cholesky extension)
                # only see the rows appended since the last fit.
                self.surrogate.partial_fit(X[fitted_rows:], y[fitted_rows:])
            else:
                self.surrogate.fit(X, y)
            self._n_fitted_rows = X.shape[0]
            self.num_fits += 1
            self._new_since_fit = 0
        self.last_tell_duration = time.perf_counter() - start

    # -------------------------------------------------------------------- ask
    def ask(self, n: int = 1) -> List[Configuration]:
        """Propose ``n`` configurations for evaluation."""
        if n < 1:
            raise ValueError("n must be >= 1")
        start = time.perf_counter()
        use_model = (
            not self.random_sampling
            and self.surrogate.fitted
            and self.num_observations >= self.n_initial_points
        )
        if not use_model:
            proposals = self._sample_unique(n)
            self.last_ask_duration = time.perf_counter() - start
            return proposals

        # Candidate generation from the (possibly informative) prior, columnar.
        candidates = self.space.sample_columns(self.num_candidates, self.rng, prior=self.prior)
        keys = self._key_bytes(candidates)
        evaluated = self._evaluated_keys
        fresh_idx = np.fromiter(
            (i for i, key in enumerate(keys) if key not in evaluated),
            dtype=np.intp,
        )
        fresh_configs: Optional[List[Configuration]] = None
        if fresh_idx.shape[0] < n:
            # Not enough unseen candidates: top up via the unique sampler and
            # fall back to a materialised (row-major) fresh set.
            fresh_configs = candidates.take(fresh_idx).to_configurations()
            fresh_configs.extend(self._sample_unique(n - len(fresh_configs)))
            fresh: ConfigsLike = ColumnBatch.from_configurations(self.space, fresh_configs)
        else:
            fresh = candidates.take(fresh_idx)
        encoded = self._encode(fresh)
        unit = self.space.to_unit_array(fresh)
        train_X, train_y = self._train_data()
        indices = self.liar.select(
            n,
            surrogate=self.surrogate,
            acquisition=self.acquisition,
            candidates_encoded=encoded,
            candidates_unit=unit,
            train_X=train_X,
            train_y=train_y,
        )
        if fresh_configs is not None:
            proposals = [fresh_configs[i] for i in indices]
        else:
            proposals = fresh.take(np.asarray(indices, dtype=np.intp)).to_configurations()
        self.last_ask_duration = time.perf_counter() - start
        return proposals

    def _sample_unique(self, n: int) -> List[Configuration]:
        """Sample ``n`` prior configurations, avoiding duplicates if possible.

        When the (finite) space is already exhausted — every distinct
        configuration has been evaluated — resampling can never produce a
        fresh configuration, so the loop is short-circuited and duplicates are
        knowingly returned: handing a worker a repeated configuration is
        preferable to stalling the asynchronous search.
        """
        cardinality = self.space.cardinality
        if math.isfinite(cardinality) and len(self._evaluated_keys) >= cardinality:
            return self.space.sample_columns(n, self.rng, prior=self.prior).to_configurations()
        proposals: List[Configuration] = []
        attempts = 0
        while len(proposals) < n and attempts < 20:
            batch = self.space.sample_columns(max(n, 8), self.rng, prior=self.prior)
            keys = self._key_bytes(batch)
            configs = batch.to_configurations()
            for config, key in zip(configs, keys):
                if len(proposals) >= n:
                    break
                if key not in self._evaluated_keys:
                    proposals.append(config)
            attempts += 1
        while len(proposals) < n:
            # Duplicate fallback: the attempt budget is spent (near-exhausted
            # space or extremely concentrated prior); accept repeats.
            proposals.extend(
                self.space.sample_columns(
                    n - len(proposals), self.rng, prior=self.prior
                ).to_configurations()
            )
        return proposals[:n]

    # ------------------------------------------------------------------- best
    def best(self) -> Optional[Configuration]:
        """The best configuration told so far (None before any tell)."""
        if not self._configs:
            return None
        idx = int(np.argmax(self._objectives))
        return self._configs[idx]

    def categorical_column_indices(self) -> List[int]:
        """Indices of categorical columns in the numeric encoding (for TPE)."""
        return [
            j
            for j, p in enumerate(self.space.parameters)
            if isinstance(p, CategoricalParameter)
        ]
