"""The ask/tell Bayesian optimizer (sampling-based, §III-A).

One optimizer instance drives one autotuning run.  Its lifecycle mirrors
Algorithm 1's optimization loop:

* :meth:`ask` — sample a large number of candidate configurations from the
  prior (uniform/log-uniform by default, the VAE-based informative prior when
  transfer learning is enabled), score them with the surrogate model through
  the UCB acquisition, and return a batch chosen by the constant-liar
  strategy.  Before enough data has been collected the optimizer simply
  returns prior samples (the initialisation phase).
* :meth:`tell` — record completed evaluations and refit the surrogate.

The hot path is columnar: candidates are sampled as per-parameter NumPy
columns (:meth:`~repro.core.space.SearchSpace.sample_columns`), encoded
column-wise, and only the configurations actually proposed are materialised
as dicts.  The evaluated history is kept as an *incremental* encoded cache —
``tell`` appends encoded rows and objective values into growing buffers, so
neither ``tell`` nor ``ask`` ever re-encodes the full history (the pre-PR
behaviour re-encoded all ``n`` observations on every interaction, making the
Python-side overhead grow linearly per iteration).  Duplicate detection uses
raw-value key rows (:meth:`~repro.core.space.SearchSpace.key_array`) hashed
once per configuration instead of per-candidate ``repr`` tuples.  Surrogates
that advertise :attr:`~repro.core.surrogate.base.Surrogate.supports_partial_fit`
(the GP's rank-1 Cholesky extension) are handed only the rows appended since
the last fit instead of the whole training matrix.

The optimizer measures the wall-clock time spent fitting the surrogate and
generating candidates (:attr:`last_tell_duration`, :attr:`last_ask_duration`)
so the virtual-time search can charge a "measured" manager overhead; an
analytic overhead model is also available (:mod:`repro.core.overhead`).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.acquisition import DEFAULT_KAPPA, UCBAcquisition
from repro.core.arrays import grow_buffer
from repro.core.liar import ConstantLiar
from repro.core.objective import Objective
from repro.core.priors import IndependentPrior, JointPrior, sample_columns_fleet
from repro.core.space import (
    CategoricalParameter,
    ColumnBatch,
    Configuration,
    ConfigsLike,
    SearchSpace,
)
from repro.core.surrogate import (
    ConstantSurrogate,
    GaussianProcessSurrogate,
    RandomForestSurrogate,
    Surrogate,
)

__all__ = [
    "BayesianOptimizer",
    "CandidateScoringError",
    "PreparedAsk",
    "make_surrogate",
    "prepare_ask_fleet",
]


class CandidateScoringError(RuntimeError):
    """A candidate-pool ``predict`` failed inside the sharded scoring path.

    Raised by :meth:`BayesianOptimizer._predict_candidates` in place of the
    bare surrogate exception, which would otherwise surface mid-concatenation
    with no indication of *which* shard (or, when ``score_executor`` maps the
    shards on a thread pool, which task) failed.  The message carries the
    shard index, shard count, shard shape and surrogate type so the runner's
    quarantine path can record an actionable error against the owning
    campaign instead of killing the whole tick.
    """

    def __init__(
        self,
        shard_index: int,
        num_shards: int,
        rows: int,
        surrogate: str,
        cause: BaseException,
    ):
        super().__init__(
            f"candidate scoring failed on shard {shard_index + 1}/{num_shards} "
            f"({rows} rows, {surrogate}): {cause!r}"
        )
        self.shard_index = int(shard_index)
        self.num_shards = int(num_shards)
        self.rows = int(rows)
        self.surrogate = surrogate


@dataclass
class PreparedAsk:
    """One :meth:`BayesianOptimizer.ask` in flight, between its phases.

    Either ``proposals`` is already decided (initialisation phase / random
    sampling), or the encoded candidate pool awaits surrogate scores.
    ``wants_scores`` is the single source of truth for whether precomputed
    pool scores would be used — the refit liar re-predicts per pick and
    discards them, so external scorers should skip pools that don't want
    scores.
    """

    n: int
    proposals: Optional[List[Configuration]] = None
    fresh: Optional[ConfigsLike] = None
    fresh_configs: Optional[List[Configuration]] = None
    encoded: Optional[np.ndarray] = None
    unit: Optional[np.ndarray] = None
    wants_scores: bool = False


def make_surrogate(kind: Union[str, Surrogate], seed: int = 0) -> Surrogate:
    """Build a surrogate from its name ("RF", "GP", "RAND") or pass through."""
    if isinstance(kind, Surrogate):
        return kind
    name = str(kind).upper()
    if name in ("RF", "RANDOM_FOREST", "RANDOMFOREST"):
        return RandomForestSurrogate(seed=seed)
    if name in ("GP", "GAUSSIAN_PROCESS", "GAUSSIANPROCESS"):
        return GaussianProcessSurrogate()
    if name in ("RAND", "RANDOM", "DUMMY", "NONE"):
        return ConstantSurrogate()
    raise ValueError(f"unknown surrogate kind {kind!r} (expected RF, GP or RAND)")


class BayesianOptimizer:
    """Sampling-based Bayesian optimizer over a mixed search space.

    Parameters
    ----------
    space:
        The search space.
    surrogate:
        Surrogate model or its name ("RF", "GP", "RAND").
    prior:
        Joint prior used to generate candidate configurations; defaults to the
        space's independent uniform/log-uniform prior.  Transfer learning
        replaces this with the VAE-based informative prior.
    kappa:
        UCB exploration weight (paper default 1.96).
    num_candidates:
        Number of candidate configurations sampled per :meth:`ask`.
    n_initial_points:
        Number of evaluations before the surrogate is trusted; until then
        :meth:`ask` returns prior samples.
    encoding:
        "numeric" (ordinal, used by tree models) or "one_hot" (used by the
        GP).  "auto" picks per surrogate type.
    liar_strategy:
        Constant-liar flavour ("kernel_penalty" or "refit").
    random_sampling:
        If True, :meth:`ask` never uses the surrogate (the paper's RAND
        baseline).
    refit_interval:
        Minimum number of *new* observations between surrogate refits.  The
        default (1) refits on every ``tell`` as DeepHyper does; larger values
        trade a slightly staler model for faster campaign wall-clock time in
        the large reproduction sweeps (the charged *search-time* overhead is
        unaffected — see :mod:`repro.core.overhead`).
    incremental:
        If True (default), the encoded history is cached incrementally:
        ``tell`` appends encoded rows into growing buffers and ``ask``/``fit``
        reuse them.  If False, the full history is re-encoded on every
        interaction — the pre-cache behaviour, kept selectable so the
        regression tests can assert both paths produce bit-identical
        proposals and the benchmarks can quantify the cache's effect.
    score_shards:
        Number of row-contiguous shards the candidate matrix is split into
        for surrogate scoring during :meth:`ask`.  ``1`` (default) scores the
        whole pool in one ``predict`` call; larger values score shard-by-shard
        (optionally mapped over ``score_executor``) and concatenate — the
        proposals are bit-identical for any shard count because RF/GP
        predictions are row-local.
    score_executor:
        Optional executor with a ``map`` method (e.g.
        :class:`concurrent.futures.ThreadPoolExecutor`) used to score shards
        concurrently; ``None`` scores them sequentially.
    seed:
        Seed of the optimizer's RNG.
    """

    def __init__(
        self,
        space: SearchSpace,
        surrogate: Union[str, Surrogate] = "RF",
        prior: Optional[JointPrior] = None,
        kappa: float = DEFAULT_KAPPA,
        num_candidates: int = 512,
        n_initial_points: int = 10,
        encoding: str = "auto",
        liar_strategy: str = "kernel_penalty",
        random_sampling: bool = False,
        refit_interval: int = 1,
        incremental: bool = True,
        score_shards: int = 1,
        score_executor: Optional[object] = None,
        objective: Optional[Objective] = None,
        seed: int = 0,
    ):
        if num_candidates < 1:
            raise ValueError("num_candidates must be >= 1")
        if n_initial_points < 1:
            raise ValueError("n_initial_points must be >= 1")
        if score_shards < 1:
            raise ValueError("score_shards must be >= 1")
        self.space = space
        self.surrogate = make_surrogate(surrogate, seed=seed)
        self.prior = prior if prior is not None else IndependentPrior(space)
        self.acquisition = UCBAcquisition(kappa=kappa)
        self.num_candidates = int(num_candidates)
        self.n_initial_points = int(n_initial_points)
        self.liar = ConstantLiar(strategy=liar_strategy)
        self.random_sampling = bool(random_sampling)
        if refit_interval < 1:
            raise ValueError("refit_interval must be >= 1")
        self.refit_interval = int(refit_interval)
        self.incremental = bool(incremental)
        self.score_shards = int(score_shards)
        self.score_executor = score_executor
        self._new_since_fit = 0
        self.objective = objective or Objective()
        self.rng = np.random.default_rng(seed)

        if encoding == "auto":
            encoding = (
                "one_hot"
                if isinstance(self.surrogate, GaussianProcessSurrogate)
                else "numeric"
            )
        if encoding not in ("numeric", "one_hot"):
            raise ValueError(f"unknown encoding {encoding!r}")
        self.encoding = encoding

        self._configs: List[Configuration] = []
        self._objectives: List[float] = []
        self._evaluated_keys: set = set()
        # Incremental encoded-history cache (capacity-doubling buffers).
        self._enc_dim = (
            space.one_hot_dimension() if self.encoding == "one_hot" else len(space)
        )
        self._X_buf = np.empty((0, self._enc_dim), dtype=float)
        self._y_buf = np.empty(0, dtype=float)
        self._n_rows = 0
        # Rows already incorporated into the surrogate (via fit/partial_fit);
        # lets tell() hand partial-fit-capable models only the new rows.
        self._n_fitted_rows = 0
        self.last_tell_duration = 0.0
        self.last_ask_duration = 0.0
        self.num_fits = 0

    # ------------------------------------------------------------- properties
    @property
    def num_observations(self) -> int:
        """Number of evaluations told to the optimizer so far."""
        return len(self._configs)

    def _encode(self, configs: ConfigsLike) -> np.ndarray:
        if self.encoding == "one_hot":
            return self.space.to_one_hot_array(configs)
        return self.space.to_numeric_array(configs)

    @staticmethod
    def _key(config: Configuration) -> tuple:
        """Legacy repr-based dedup key (kept for tests and benchmarks)."""
        return tuple(sorted((k, repr(v)) for k, v in config.items()))

    def _key_bytes(self, configs: ConfigsLike) -> List[bytes]:
        """One stable dedup key per configuration, from the raw-value rows."""
        return [row.tobytes() for row in self.space.key_array(configs)]

    # ------------------------------------------------------- history buffers
    def _append_history(self, X_new: np.ndarray, y_new: np.ndarray) -> None:
        """Append encoded rows/objectives into the capacity-doubling buffers."""
        needed = self._n_rows + X_new.shape[0]
        self._X_buf = grow_buffer(self._X_buf, needed)
        self._y_buf = grow_buffer(self._y_buf, needed)
        self._X_buf[self._n_rows : needed] = X_new
        self._y_buf[self._n_rows : needed] = y_new
        self._n_rows = needed

    def _train_data(self) -> Tuple[np.ndarray, np.ndarray]:
        """The encoded training matrix and objective vector.

        With the incremental cache these are views into the append-only
        buffers; without it the full history is re-encoded (pre-cache
        behaviour, bit-identical because the column codecs are elementwise).
        """
        if self.incremental:
            return self._X_buf[: self._n_rows], self._y_buf[: self._n_rows]
        X = self._encode(self._configs)
        y = np.asarray(self._objectives, dtype=float)
        return X, y

    # ------------------------------------------------------------------- tell
    def tell(self, configurations: Sequence[Configuration], objectives: Sequence[float]) -> None:
        """Record completed evaluations and refit the surrogate.

        ``objectives`` are maximised values; NaN marks failures and is
        replaced by the objective's failure placeholder for model fitting.

        ``tell`` is :meth:`ingest` followed by :meth:`fit_now` when a fit is
        due; multi-campaign drivers call the two halves separately so several
        optimizers' surrogate fits can be grouped into one fleet pass.
        """
        if not configurations:
            if len(configurations) != len(objectives):
                raise ValueError("configurations and objectives must have equal length")
            return
        start = time.perf_counter()
        if self.ingest(configurations, objectives):
            self.fit_now()
        self.last_tell_duration = time.perf_counter() - start

    def ingest(self, configurations: Sequence[Configuration], objectives: Sequence[float]) -> bool:
        """Record completed evaluations without fitting.

        Returns True when a surrogate (re)fit is now due — the caller is then
        responsible for either :meth:`fit_now` or an external fit (e.g.
        :func:`~repro.core.surrogate.random_forest.fit_forest_fleet` over
        :meth:`training_data`) followed by :meth:`mark_fitted`.
        """
        if len(configurations) != len(objectives):
            raise ValueError("configurations and objectives must have equal length")
        if not configurations:
            return False
        new_configs = [dict(config) for config in configurations]
        if len(new_configs) <= 4:
            # The asynchronous loop tells one or two evaluations at a time;
            # the row-major codecs' scalar path beats building a ColumnBatch.
            batch: ConfigsLike = new_configs
        else:
            batch = ColumnBatch.from_configurations(self.space, new_configs)
        filled = [self.objective.fill_failure(obj) for obj in objectives]
        self._configs.extend(new_configs)
        self._objectives.extend(filled)
        self._evaluated_keys.update(self._key_bytes(batch))
        self._new_since_fit += len(new_configs)
        if self.incremental:
            self._append_history(self._encode(batch), np.asarray(filled, dtype=float))
        return (
            not self.random_sampling
            and self.num_observations >= self.n_initial_points
            and (not self.surrogate.fitted or self._new_since_fit >= self.refit_interval)
        )

    def training_data(self) -> Tuple[np.ndarray, np.ndarray]:
        """The encoded training matrix and objective vector (read-only views)."""
        return self._train_data()

    @property
    def fitted_rows(self) -> int:
        """History rows already incorporated into the surrogate.

        External fleet drivers use this to hand partial-fit-capable
        surrogates only the rows of :meth:`training_data` appended since the
        last fit — the same slice :meth:`fit_now` would hand them.
        """
        return self._n_fitted_rows

    def fit_now(self) -> None:
        """Fit the surrogate on the current training data (after :meth:`ingest`)."""
        X, y = self._train_data()
        fitted_rows = self._n_fitted_rows
        if (
            self.surrogate.supports_partial_fit
            and self.surrogate.fitted
            and 0 < fitted_rows < X.shape[0]
        ):
            # Incremental surrogates (the GP's rank-1 Cholesky extension)
            # only see the rows appended since the last fit.
            self.surrogate.partial_fit(X[fitted_rows:], y[fitted_rows:])
        else:
            self.surrogate.fit(X, y)
        self.mark_fitted()

    def mark_fitted(self) -> None:
        """Record that the surrogate now reflects the full evaluated history.

        Called by :meth:`fit_now`, or by drivers that fitted the surrogate
        externally (the multi-campaign fleet fit).
        """
        self._n_fitted_rows = self._n_rows if self.incremental else len(self._configs)
        self.num_fits += 1
        self._new_since_fit = 0

    # -------------------------------------------------------------------- ask
    def ask(self, n: int = 1) -> List[Configuration]:
        """Propose ``n`` configurations for evaluation.

        ``ask`` runs :meth:`prepare_ask` (candidate generation), scores the
        pool with :meth:`_predict_candidates` (sharded when ``score_shards``
        > 1) and selects the batch with :meth:`finish_ask`; the split lets
        multi-campaign drivers interleave the phases across optimizers.
        """
        start = time.perf_counter()
        prepared = self.prepare_ask(n)
        if prepared.proposals is not None:
            self.last_ask_duration = time.perf_counter() - start
            return prepared.proposals
        proposals = self.finish_ask(prepared, None, None)
        self.last_ask_duration = time.perf_counter() - start
        return proposals

    def prepare_ask(self, n: int = 1) -> "PreparedAsk":
        """Generate and encode the fresh candidate pool for one ``ask``.

        During the initialisation phase (or with random sampling) the batch
        is decided immediately and returned in ``PreparedAsk.proposals``;
        otherwise the prepared pool awaits surrogate scores.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        use_model = (
            not self.random_sampling
            and self.surrogate.fitted
            and self.num_observations >= self.n_initial_points
        )
        if not use_model:
            return PreparedAsk(n=n, proposals=self._sample_unique(n))

        # Candidate generation from the (possibly informative) prior, columnar.
        candidates = self.space.sample_columns(self.num_candidates, self.rng, prior=self.prior)
        keys = self._key_bytes(candidates)
        evaluated = self._evaluated_keys
        fresh_idx = np.fromiter(
            (i for i, key in enumerate(keys) if key not in evaluated),
            dtype=np.intp,
        )
        fresh_configs: Optional[List[Configuration]] = None
        if fresh_idx.shape[0] < n:
            # Not enough unseen candidates: top up via the unique sampler and
            # fall back to a materialised (row-major) fresh set.
            fresh_configs = candidates.take(fresh_idx).to_configurations()
            fresh_configs.extend(self._sample_unique(n - len(fresh_configs)))
            fresh: ConfigsLike = ColumnBatch.from_configurations(self.space, fresh_configs)
        else:
            fresh = candidates.take(fresh_idx)
        encoded = self._encode(fresh)
        unit = self.space.to_unit_array(fresh)
        return PreparedAsk(
            n=n,
            fresh=fresh,
            fresh_configs=fresh_configs,
            encoded=encoded,
            unit=unit,
            wants_scores=self.liar.strategy != "refit",
        )

    def _predict_candidates(self, encoded: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Surrogate scores for the candidate pool, shard-by-shard if configured.

        RF and GP predictions are row-local, so scoring ``score_shards``
        row-contiguous shards and concatenating is bit-identical to one full
        ``predict`` call (pinned by the test suite); the shard map optionally
        runs on ``score_executor``.
        """
        shards = min(self.score_shards, max(1, int(encoded.shape[0])))
        if shards <= 1:
            return self.surrogate.predict(encoded)
        chunks = np.array_split(encoded, shards)
        if self.score_executor is not None:
            parts = list(
                self.score_executor.map(
                    self._predict_shard, range(shards), [shards] * shards, chunks
                )
            )
        else:
            parts = [
                self._predict_shard(index, shards, chunk)
                for index, chunk in enumerate(chunks)
            ]
        mean = np.concatenate([p[0] for p in parts])
        std = np.concatenate([p[1] for p in parts])
        return mean, std

    def _predict_shard(
        self, index: int, num_shards: int, chunk: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One shard's ``predict``, with failures wrapped in shard context.

        A bare exception escaping ``score_executor.map`` loses which shard
        died; :class:`CandidateScoringError` keeps the shard index/shape and
        surrogate type attached (and propagates unchanged through the
        executor), so the runner's quarantine path records the failure
        against the owning campaign with enough context to reproduce it.
        """
        try:
            return self.surrogate.predict(chunk)
        except CandidateScoringError:
            raise
        except Exception as error:
            raise CandidateScoringError(
                shard_index=index,
                num_shards=num_shards,
                rows=int(chunk.shape[0]),
                surrogate=type(self.surrogate).__name__,
                cause=error,
            ) from error

    def finish_ask(
        self,
        prepared: "PreparedAsk",
        mean: Optional[np.ndarray],
        std: Optional[np.ndarray],
    ) -> List[Configuration]:
        """Select the proposal batch from a scored candidate pool.

        ``mean``/``std`` may be ``None``: pools that want scores
        (``prepared.wants_scores``) are then scored here via the (sharded)
        scoring path, and pools that don't (the refit liar re-predicts per
        pick) proceed without.
        """
        if mean is None and prepared.wants_scores:
            mean, std = self._predict_candidates(prepared.encoded)
        train_X, train_y = self._train_data()
        indices = self.liar.select(
            prepared.n,
            surrogate=self.surrogate,
            acquisition=self.acquisition,
            candidates_encoded=prepared.encoded,
            candidates_unit=prepared.unit,
            train_X=train_X,
            train_y=train_y,
            predictions=None if mean is None else (mean, std),
        )
        if prepared.fresh_configs is not None:
            return [prepared.fresh_configs[i] for i in indices]
        return prepared.fresh.take(np.asarray(indices, dtype=np.intp)).to_configurations()

    def _sample_unique(self, n: int) -> List[Configuration]:
        """Sample ``n`` prior configurations, avoiding duplicates if possible.

        When the (finite) space is already exhausted — every distinct
        configuration has been evaluated — resampling can never produce a
        fresh configuration, so the loop is short-circuited and duplicates are
        knowingly returned: handing a worker a repeated configuration is
        preferable to stalling the asynchronous search.
        """
        cardinality = self.space.cardinality
        if math.isfinite(cardinality) and len(self._evaluated_keys) >= cardinality:
            return self.space.sample_columns(n, self.rng, prior=self.prior).to_configurations()
        proposals: List[Configuration] = []
        attempts = 0
        while len(proposals) < n and attempts < 20:
            batch = self.space.sample_columns(max(n, 8), self.rng, prior=self.prior)
            keys = self._key_bytes(batch)
            configs = batch.to_configurations()
            for config, key in zip(configs, keys):
                if len(proposals) >= n:
                    break
                if key not in self._evaluated_keys:
                    proposals.append(config)
            attempts += 1
        while len(proposals) < n:
            # Duplicate fallback: the attempt budget is spent (near-exhausted
            # space or extremely concentrated prior); accept repeats.
            proposals.extend(
                self.space.sample_columns(
                    n - len(proposals), self.rng, prior=self.prior
                ).to_configurations()
            )
        return proposals[:n]

    # ------------------------------------------------------------------- best
    def best(self) -> Optional[Configuration]:
        """The best configuration told so far (None before any tell)."""
        if not self._configs:
            return None
        idx = int(np.argmax(self._objectives))
        return self._configs[idx]

    def categorical_column_indices(self) -> List[int]:
        """Indices of categorical columns in the numeric encoding (for TPE)."""
        return [
            j
            for j, p in enumerate(self.space.parameters)
            if isinstance(p, CategoricalParameter)
        ]


def _share_stacked_indices(
    stacked: ColumnBatch, members: Sequence[ColumnBatch]
) -> None:
    """Slice the stacked batch's memoised discrete indices into its members.

    Domain indices are exact integers, so a slice of the stacked index column
    equals the member-computed column bitwise; seeding the member caches lets
    ``take``/re-encoding reuse the fleet pass instead of recomputing.
    """
    offset = 0
    for member in members:
        stop = offset + len(member)
        for name, arr in stacked._indices.items():
            member._indices.setdefault(name, arr[offset:stop])
        offset = stop


def prepare_ask_fleet(
    requests: Sequence[Tuple[BayesianOptimizer, int]],
) -> List[PreparedAsk]:
    """One stacked candidate-proposal pass over several optimizers (fleet ask).

    ``requests`` pairs each member optimizer with the number of proposals it
    wants.  All members must tune equal search spaces (same parameters, same
    order) and share one encoding — the runner groups them that way via
    :func:`~repro.service.grouping.plan_tick_groups`.

    Per member the result is **bitwise identical** to
    ``member.prepare_ask(n)``:

    * every random draw comes from the member's own generator in the member's
      own order — candidate columns are assembled parameter-major across the
      fleet for plain independent priors and member-major otherwise
      (:func:`~repro.core.priors.sample_columns_fleet`), and the
      ``_sample_unique`` draws of the initialisation and shortfall paths stay
      per member;
    * the space codecs (``key_array``, the numeric/one-hot encodings,
      ``to_unit_array``) are row-local, so encoding one stacked sheet and
      slicing per member reproduces each member's solo bits;
    * dedup tests each member's slice against that member's own evaluated
      keys, in the member's candidate order.

    The stacked sheets are encode-only (:meth:`ColumnBatch.concat`):
    materialisation (``take``, ``to_configurations``) goes through each
    member's own columns, so cross-member dtype promotion cannot leak into
    proposed configurations.
    """
    requests = list(requests)
    if not requests:
        return []
    rep, _ = requests[0]
    space = rep.space
    for opt, n in requests:
        if n < 1:
            raise ValueError("n must be >= 1")
        if opt.space is not space and opt.space != space:
            raise ValueError("fleet asks require members over equal search spaces")
        if opt.encoding != rep.encoding:
            raise ValueError("fleet asks require members sharing one encoding")

    prepared: List[Optional[PreparedAsk]] = [None] * len(requests)
    model_members: List[int] = []
    for i, (opt, n) in enumerate(requests):
        use_model = (
            not opt.random_sampling
            and opt.surrogate.fitted
            and opt.num_observations >= opt.n_initial_points
        )
        if use_model:
            model_members.append(i)
        else:
            prepared[i] = PreparedAsk(n=n, proposals=opt._sample_unique(n))
    if not model_members:
        return prepared

    # One stacked candidate sheet: per-member draws, fleet-assembled.
    column_dicts = sample_columns_fleet(
        [requests[i][0].prior for i in model_members],
        [requests[i][0].num_candidates for i in model_members],
        [requests[i][0].rng for i in model_members],
    )
    cand_batches = [
        ColumnBatch(requests[i][0].space, cols)
        for i, cols in zip(model_members, column_dicts)
    ]
    stacked = ColumnBatch.concat(cand_batches)
    keys = [row.tobytes() for row in space.key_array(stacked)]
    _share_stacked_indices(stacked, cand_batches)

    # Fused dedup: each member's key slice against its own evaluated set.
    fresh_parts: List[Tuple[int, ColumnBatch, Optional[List[Configuration]]]] = []
    offset = 0
    for i, candidates in zip(model_members, cand_batches):
        opt, n = requests[i]
        member_keys = keys[offset : offset + len(candidates)]
        offset += len(candidates)
        evaluated = opt._evaluated_keys
        fresh_idx = np.fromiter(
            (j for j, key in enumerate(member_keys) if key not in evaluated),
            dtype=np.intp,
        )
        fresh_configs: Optional[List[Configuration]] = None
        if fresh_idx.shape[0] < n:
            fresh_configs = candidates.take(fresh_idx).to_configurations()
            fresh_configs.extend(opt._sample_unique(n - len(fresh_configs)))
            fresh: ConfigsLike = ColumnBatch.from_configurations(opt.space, fresh_configs)
        else:
            fresh = candidates.take(fresh_idx)
        fresh_parts.append((i, fresh, fresh_configs))

    # One shared encode of the stacked fresh sheet, sliced back per member.
    stacked_fresh = ColumnBatch.concat([fresh for _, fresh, _ in fresh_parts])
    encoded_all = rep._encode(stacked_fresh)
    unit_all = space.to_unit_array(stacked_fresh)
    offset = 0
    for i, fresh, fresh_configs in fresh_parts:
        opt, n = requests[i]
        stop = offset + len(fresh)
        prepared[i] = PreparedAsk(
            n=n,
            fresh=fresh,
            fresh_configs=fresh_configs,
            encoded=encoded_all[offset:stop],
            unit=unit_all[offset:stop],
            wants_scores=opt.liar.strategy != "refit",
        )
        offset = stop
    return prepared
