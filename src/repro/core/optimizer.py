"""The ask/tell Bayesian optimizer (sampling-based, §III-A).

One optimizer instance drives one autotuning run.  Its lifecycle mirrors
Algorithm 1's optimization loop:

* :meth:`ask` — sample a large number of candidate configurations from the
  prior (uniform/log-uniform by default, the VAE-based informative prior when
  transfer learning is enabled), score them with the surrogate model through
  the UCB acquisition, and return a batch chosen by the constant-liar
  strategy.  Before enough data has been collected the optimizer simply
  returns prior samples (the initialisation phase).
* :meth:`tell` — record completed evaluations and refit the surrogate.

The optimizer measures the wall-clock time spent fitting the surrogate and
generating candidates (:attr:`last_tell_duration`, :attr:`last_ask_duration`)
so the virtual-time search can charge a "measured" manager overhead; an
analytic overhead model is also available (:mod:`repro.core.overhead`).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.acquisition import DEFAULT_KAPPA, UCBAcquisition
from repro.core.liar import ConstantLiar
from repro.core.objective import Objective
from repro.core.priors import IndependentPrior, JointPrior
from repro.core.space import CategoricalParameter, Configuration, SearchSpace
from repro.core.surrogate import (
    ConstantSurrogate,
    GaussianProcessSurrogate,
    RandomForestSurrogate,
    Surrogate,
)

__all__ = ["BayesianOptimizer", "make_surrogate"]


def make_surrogate(kind: Union[str, Surrogate], seed: int = 0) -> Surrogate:
    """Build a surrogate from its name ("RF", "GP", "RAND") or pass through."""
    if isinstance(kind, Surrogate):
        return kind
    name = str(kind).upper()
    if name in ("RF", "RANDOM_FOREST", "RANDOMFOREST"):
        return RandomForestSurrogate(seed=seed)
    if name in ("GP", "GAUSSIAN_PROCESS", "GAUSSIANPROCESS"):
        return GaussianProcessSurrogate()
    if name in ("RAND", "RANDOM", "DUMMY", "NONE"):
        return ConstantSurrogate()
    raise ValueError(f"unknown surrogate kind {kind!r} (expected RF, GP or RAND)")


class BayesianOptimizer:
    """Sampling-based Bayesian optimizer over a mixed search space.

    Parameters
    ----------
    space:
        The search space.
    surrogate:
        Surrogate model or its name ("RF", "GP", "RAND").
    prior:
        Joint prior used to generate candidate configurations; defaults to the
        space's independent uniform/log-uniform prior.  Transfer learning
        replaces this with the VAE-based informative prior.
    kappa:
        UCB exploration weight (paper default 1.96).
    num_candidates:
        Number of candidate configurations sampled per :meth:`ask`.
    n_initial_points:
        Number of evaluations before the surrogate is trusted; until then
        :meth:`ask` returns prior samples.
    encoding:
        "numeric" (ordinal, used by tree models) or "one_hot" (used by the
        GP).  "auto" picks per surrogate type.
    liar_strategy:
        Constant-liar flavour ("kernel_penalty" or "refit").
    random_sampling:
        If True, :meth:`ask` never uses the surrogate (the paper's RAND
        baseline).
    refit_interval:
        Minimum number of *new* observations between surrogate refits.  The
        default (1) refits on every ``tell`` as DeepHyper does; larger values
        trade a slightly staler model for faster campaign wall-clock time in
        the large reproduction sweeps (the charged *search-time* overhead is
        unaffected — see :mod:`repro.core.overhead`).
    seed:
        Seed of the optimizer's RNG.
    """

    def __init__(
        self,
        space: SearchSpace,
        surrogate: Union[str, Surrogate] = "RF",
        prior: Optional[JointPrior] = None,
        kappa: float = DEFAULT_KAPPA,
        num_candidates: int = 512,
        n_initial_points: int = 10,
        encoding: str = "auto",
        liar_strategy: str = "kernel_penalty",
        random_sampling: bool = False,
        refit_interval: int = 1,
        objective: Optional[Objective] = None,
        seed: int = 0,
    ):
        if num_candidates < 1:
            raise ValueError("num_candidates must be >= 1")
        if n_initial_points < 1:
            raise ValueError("n_initial_points must be >= 1")
        self.space = space
        self.surrogate = make_surrogate(surrogate, seed=seed)
        self.prior = prior if prior is not None else IndependentPrior(space)
        self.acquisition = UCBAcquisition(kappa=kappa)
        self.num_candidates = int(num_candidates)
        self.n_initial_points = int(n_initial_points)
        self.liar = ConstantLiar(strategy=liar_strategy)
        self.random_sampling = bool(random_sampling)
        if refit_interval < 1:
            raise ValueError("refit_interval must be >= 1")
        self.refit_interval = int(refit_interval)
        self._new_since_fit = 0
        self.objective = objective or Objective()
        self.rng = np.random.default_rng(seed)

        if encoding == "auto":
            encoding = (
                "one_hot"
                if isinstance(self.surrogate, GaussianProcessSurrogate)
                else "numeric"
            )
        if encoding not in ("numeric", "one_hot"):
            raise ValueError(f"unknown encoding {encoding!r}")
        self.encoding = encoding

        self._configs: List[Configuration] = []
        self._objectives: List[float] = []
        self._evaluated_keys: set = set()
        self.last_tell_duration = 0.0
        self.last_ask_duration = 0.0
        self.num_fits = 0

    # ------------------------------------------------------------- properties
    @property
    def num_observations(self) -> int:
        """Number of evaluations told to the optimizer so far."""
        return len(self._configs)

    def _encode(self, configs: Sequence[Configuration]) -> np.ndarray:
        if self.encoding == "one_hot":
            return self.space.to_one_hot_array(configs)
        return self.space.to_numeric_array(configs)

    @staticmethod
    def _key(config: Configuration) -> tuple:
        return tuple(sorted((k, repr(v)) for k, v in config.items()))

    # ------------------------------------------------------------------- tell
    def tell(self, configurations: Sequence[Configuration], objectives: Sequence[float]) -> None:
        """Record completed evaluations and refit the surrogate.

        ``objectives`` are maximised values; NaN marks failures and is
        replaced by the objective's failure placeholder for model fitting.
        """
        if len(configurations) != len(objectives):
            raise ValueError("configurations and objectives must have equal length")
        if not configurations:
            return
        start = time.perf_counter()
        for config, obj in zip(configurations, objectives):
            self._configs.append(dict(config))
            self._objectives.append(self.objective.fill_failure(obj))
            self._evaluated_keys.add(self._key(config))
            self._new_since_fit += 1
        should_fit = (
            not self.random_sampling
            and self.num_observations >= self.n_initial_points
            and (not self.surrogate.fitted or self._new_since_fit >= self.refit_interval)
        )
        if should_fit:
            X = self._encode(self._configs)
            y = np.asarray(self._objectives, dtype=float)
            self.surrogate.fit(X, y)
            self.num_fits += 1
            self._new_since_fit = 0
        self.last_tell_duration = time.perf_counter() - start

    # -------------------------------------------------------------------- ask
    def ask(self, n: int = 1) -> List[Configuration]:
        """Propose ``n`` configurations for evaluation."""
        if n < 1:
            raise ValueError("n must be >= 1")
        start = time.perf_counter()
        use_model = (
            not self.random_sampling
            and self.surrogate.fitted
            and self.num_observations >= self.n_initial_points
        )
        if not use_model:
            proposals = self._sample_unique(n)
            self.last_ask_duration = time.perf_counter() - start
            return proposals

        # Candidate generation from the (possibly informative) prior.
        candidates = self.space.sample(self.num_candidates, self.rng, prior=self.prior)
        # Filter out configurations already evaluated.
        fresh = [c for c in candidates if self._key(c) not in self._evaluated_keys]
        if len(fresh) < n:
            fresh.extend(self._sample_unique(n - len(fresh)))
        encoded = self._encode(fresh)
        unit = self.space.to_unit_array(fresh)
        train_X = self._encode(self._configs)
        train_y = np.asarray(self._objectives, dtype=float)
        indices = self.liar.select(
            n,
            surrogate=self.surrogate,
            acquisition=self.acquisition,
            candidates_encoded=encoded,
            candidates_unit=unit,
            train_X=train_X,
            train_y=train_y,
        )
        proposals = [fresh[i] for i in indices]
        self.last_ask_duration = time.perf_counter() - start
        return proposals

    def _sample_unique(self, n: int) -> List[Configuration]:
        """Sample ``n`` prior configurations, avoiding duplicates if possible."""
        proposals: List[Configuration] = []
        attempts = 0
        while len(proposals) < n and attempts < 20:
            batch = self.space.sample(max(n, 8), self.rng, prior=self.prior)
            for config in batch:
                if len(proposals) >= n:
                    break
                if self._key(config) not in self._evaluated_keys:
                    proposals.append(config)
            attempts += 1
        while len(proposals) < n:
            proposals.extend(self.space.sample(n - len(proposals), self.rng, prior=self.prior))
        return proposals[:n]

    # ------------------------------------------------------------------- best
    def best(self) -> Optional[Configuration]:
        """The best configuration told so far (None before any tell)."""
        if not self._configs:
            return None
        idx = int(np.argmax(self._objectives))
        return self._configs[idx]

    def categorical_column_indices(self) -> List[int]:
        """Indices of categorical columns in the numeric encoding (for TPE)."""
        return [
            j
            for j, p in enumerate(self.space.parameters)
            if isinstance(p, CategoricalParameter)
        ]
