"""Sampling priors over parameters and configurations.

Bayesian optimization in the paper samples candidate configurations from a
*prior* distribution over the search space:

* without transfer learning, the prior is the user-defined one — uniform or
  log-uniform per parameter (Section III-B, "Typically, BO starts with
  user-defined prior distributions");
* with transfer learning, the prior is *informative*: a tabular VAE fitted on
  the top-q% configurations of a previous run (see
  :mod:`repro.core.transfer`), combined with uninformative priors for any
  parameter that did not exist in the previous space (Algorithm 1, l. 3-10).

This module provides the per-parameter priors, the independent joint prior,
and a mixture wrapper used to blend an informative prior with a fraction of
uniform exploration.

Sampling is columnar: per-parameter priors draw whole NumPy columns
(:meth:`ParameterPrior.sample_array`) and joint priors assemble column
dictionaries (:meth:`JointPrior.sample_columns`), so the optimizer's
candidate-generation hot path never materialises per-configuration Python
dicts.  The row-major ``sample``/``sample_configurations`` methods are thin
materialising wrappers kept for API compatibility.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.space import (
    CategoricalParameter,
    ColumnBatch,
    Configuration,
    IntegerParameter,
    OrdinalParameter,
    Parameter,
    RealParameter,
    SearchSpace,
)

__all__ = [
    "ParameterPrior",
    "UniformPrior",
    "LogUniformPrior",
    "CategoricalPrior",
    "JointPrior",
    "IndependentPrior",
    "MixturePrior",
    "default_prior",
    "sample_columns_fleet",
]


class ParameterPrior:
    """Base class: a distribution over a single parameter's values."""

    def __init__(self, parameter: Parameter):
        self.parameter = parameter

    def sample_array(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` values as a NumPy column (the hot-path entry point)."""
        raise NotImplementedError

    def sample(self, n: int, rng: np.random.Generator) -> List[Any]:
        """Draw ``n`` values as a list of Python scalars."""
        return self.sample_array(n, rng).tolist()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.parameter.name!r})"


class UniformPrior(ParameterPrior):
    """Uniform prior over the parameter's domain (Algorithm 1, l. 6)."""

    def sample_array(self, n: int, rng: np.random.Generator) -> np.ndarray:
        p = self.parameter
        if isinstance(p, RealParameter):
            return rng.uniform(p.low, p.high, size=n)
        if isinstance(p, IntegerParameter):
            return rng.integers(p.low, p.high + 1, size=n)
        # categorical / ordinal: uniform over categories.
        return np.asarray(p.sample(rng, size=n))


class LogUniformPrior(ParameterPrior):
    """Log-uniform prior (used for batch-size-like parameters in Fig. 1)."""

    def __init__(self, parameter: Parameter):
        super().__init__(parameter)
        if not isinstance(parameter, (RealParameter, IntegerParameter)):
            raise TypeError("LogUniformPrior requires a numeric parameter")
        if parameter.low <= 0:
            raise ValueError("LogUniformPrior requires a positive lower bound")

    def sample_array(self, n: int, rng: np.random.Generator) -> np.ndarray:
        p = self.parameter
        lo, hi = np.log(p.low), np.log(p.high)
        raw = np.exp(rng.uniform(lo, hi, size=n))
        if isinstance(p, IntegerParameter):
            return np.clip(np.rint(raw), p.low, p.high).astype(int)
        return raw


class CategoricalPrior(ParameterPrior):
    """Multinoulli prior over categories (Algorithm 1, l. 8).

    Parameters
    ----------
    parameter:
        A categorical or ordinal parameter.
    probabilities:
        Per-category probabilities.  Defaults to uniform.
    """

    def __init__(
        self,
        parameter: Parameter,
        probabilities: Optional[Sequence[float]] = None,
    ):
        super().__init__(parameter)
        if isinstance(parameter, CategoricalParameter):
            values = parameter.categories
        elif isinstance(parameter, OrdinalParameter):
            values = parameter.values
        else:
            raise TypeError("CategoricalPrior requires a categorical/ordinal parameter")
        self.values = tuple(values)
        self._values_array = np.empty(len(self.values), dtype=object)
        for i, value in enumerate(self.values):
            self._values_array[i] = value
        if probabilities is None:
            probabilities = [1.0 / len(self.values)] * len(self.values)
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape != (len(self.values),):
            raise ValueError(
                f"need {len(self.values)} probabilities, got {probabilities.shape}"
            )
        if np.any(probabilities < 0):
            raise ValueError("probabilities must be non-negative")
        total = probabilities.sum()
        if total <= 0:
            raise ValueError("probabilities must not all be zero")
        self.probabilities = probabilities / total
        # Precomputed inverse-CDF table: drawing via rng.random + searchsorted
        # consumes the generator exactly like rng.choice(..., p=...) does
        # internally (same uniforms, same cutoffs), minus choice's per-call
        # validation overhead — this is the innermost loop of candidate
        # sampling.
        self._cdf = self.probabilities.cumsum()
        self._cdf /= self._cdf[-1]

    def sample_array(self, n: int, rng: np.random.Generator) -> np.ndarray:
        idx = self._cdf.searchsorted(rng.random(n), side="right")
        return self._values_array[idx]


class JointPrior:
    """Base class for joint distributions over whole configurations."""

    space: SearchSpace

    def sample_configurations(self, n: int, rng: np.random.Generator) -> List[Configuration]:
        """Draw ``n`` full configurations of :attr:`space` (row-major dicts)."""
        raise NotImplementedError

    def sample_columns(self, n: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        """Draw ``n`` configurations as per-parameter columns.

        The default implementation materialises row-major configurations and
        re-extracts columns — subclasses override it with a direct columnar
        path so candidate generation stays free of per-row Python objects.
        """
        configs = self.sample_configurations(n, rng)
        return ColumnBatch.from_configurations(self.space, configs).columns


class IndependentPrior(JointPrior):
    """A joint prior that samples each parameter independently.

    Parameters
    ----------
    space:
        The search space the prior covers.
    priors:
        Optional mapping from parameter name to :class:`ParameterPrior`.
        Parameters without an entry use their default prior
        (:func:`default_prior`).
    """

    def __init__(
        self,
        space: SearchSpace,
        priors: Optional[Mapping[str, ParameterPrior]] = None,
    ):
        self.space = space
        self._priors: Dict[str, ParameterPrior] = {}
        priors = dict(priors or {})
        for p in space:
            prior = priors.pop(p.name, None)
            self._priors[p.name] = prior if prior is not None else default_prior(p)
        if priors:
            raise ValueError(f"priors given for unknown parameters: {sorted(priors)}")

    def prior_for(self, name: str) -> ParameterPrior:
        """The per-parameter prior for ``name``."""
        return self._priors[name]

    def sample_columns(self, n: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        if n <= 0:
            return {name: prior.sample_array(0, rng) for name, prior in self._priors.items()}
        return {name: prior.sample_array(n, rng) for name, prior in self._priors.items()}

    def sample_configurations(self, n: int, rng: np.random.Generator) -> List[Configuration]:
        if n <= 0:
            return []
        return ColumnBatch(self.space, self.sample_columns(n, rng)).to_configurations()


class MixturePrior(JointPrior):
    """A mixture of joint priors, sampled with fixed weights.

    Used to blend an informative (VAE) prior with a small fraction of uniform
    exploration so that the biased search retains non-zero support over the
    whole space.
    """

    def __init__(self, components: Sequence[JointPrior], weights: Sequence[float]):
        if len(components) != len(weights) or not components:
            raise ValueError("components and weights must be non-empty and equal length")
        weights = np.asarray(weights, dtype=float)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("weights must be non-negative and not all zero")
        self.components = list(components)
        self.weights = weights / weights.sum()
        self.space = components[0].space

    def sample_columns(self, n: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        if n <= 0:
            return {p.name: np.empty(0, dtype=object) for p in self.space}
        counts = rng.multinomial(n, self.weights)
        parts: List[Dict[str, np.ndarray]] = []
        for component, count in zip(self.components, counts):
            if count > 0:
                parts.append(component.sample_columns(int(count), rng))
        permutation = rng.permutation(n)
        return _concat_shuffle_columns(self.space, parts, permutation)

    def sample_configurations(self, n: int, rng: np.random.Generator) -> List[Configuration]:
        if n <= 0:
            return []
        return ColumnBatch(self.space, self.sample_columns(n, rng)).to_configurations()


def _concat_shuffle_columns(
    space: SearchSpace,
    parts: Sequence[Mapping[str, np.ndarray]],
    permutation: np.ndarray,
) -> Dict[str, np.ndarray]:
    """Concatenate column dictionaries and apply one shared row permutation."""
    out: Dict[str, np.ndarray] = {}
    for p in space:
        pieces = [np.asarray(part[p.name]) for part in parts]
        if len(pieces) == 1:
            column = pieces[0]
        else:
            # Preserve object columns through concatenation (mixed dtypes
            # between components must not silently up-cast).
            if any(piece.dtype == object for piece in pieces):
                pieces = [piece.astype(object) for piece in pieces]
            column = np.concatenate(pieces)
        out[p.name] = column[permutation]
    return out


def sample_columns_fleet(
    priors: Sequence[JointPrior],
    counts: Sequence[int],
    rngs: Sequence[np.random.Generator],
) -> List[Dict[str, np.ndarray]]:
    """Draw each member's candidate columns for one stacked fleet sheet.

    ``priors[k]``, ``counts[k]`` and ``rngs[k]`` describe fleet member ``k``:
    its joint prior, how many candidates it wants, and its own generator.
    All members must cover equal search spaces (same parameters in the same
    order); the caller is expected to have grouped them that way.

    Per member the returned columns are **bitwise identical** to
    ``priors[k].sample_columns(counts[k], rngs[k])``.  Members whose prior is
    exactly :class:`IndependentPrior` are assembled parameter-major — one
    pass per parameter across the fleet — which keeps each member's draw
    order (p1, p2, ... in space order) unchanged; only the interleaving
    *between* members differs, and members own independent generators, so
    nothing observable moves.  Members with any other joint prior (mixtures,
    transfer-learning priors) fall back to one member-major
    ``sample_columns`` call each, which is trivially identical.
    """
    if not (len(priors) == len(counts) == len(rngs)):
        raise ValueError("priors, counts and rngs must have equal lengths")
    independent = [type(prior) is IndependentPrior for prior in priors]
    results: List[Dict[str, np.ndarray]] = []
    for k, prior in enumerate(priors):
        if independent[k]:
            results.append({})
        else:
            results.append(prior.sample_columns(counts[k], rngs[k]))
    if any(independent):
        first = priors[independent.index(True)]
        for p in first.space:
            name = p.name
            for k, prior in enumerate(priors):
                if independent[k]:
                    n = counts[k] if counts[k] > 0 else 0
                    results[k][name] = prior.prior_for(name).sample_array(n, rngs[k])
    return results


def default_prior(parameter: Parameter) -> ParameterPrior:
    """The user-defined (uninformative) prior for a parameter.

    Log-uniform for numeric parameters declared ``log=True``, uniform
    otherwise, multinoulli-uniform for categorical/ordinal parameters.
    """
    if isinstance(parameter, (RealParameter, IntegerParameter)):
        if parameter.log:
            return LogUniformPrior(parameter)
        return UniformPrior(parameter)
    if isinstance(parameter, (CategoricalParameter, OrdinalParameter)):
        return CategoricalPrior(parameter)
    return UniformPrior(parameter)
