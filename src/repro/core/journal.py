"""Durable campaign journal: crash-safe sidecar for a running campaign.

A one-hour campaign that dies at minute 55 — manager crash, node failure,
queue eviction — loses everything under the CSV-only persistence model: the
history CSV is written once at the end, and even if it were streamed, the
optimizer's RNG cursor, the surrogate's fitted state and the evaluator's
in-flight evaluations are not in it.  The journal fixes that without touching
the CSV interchange format: each journaled campaign owns a sidecar directory
holding

* **append-only binary column files** mirroring the
  :class:`~repro.core.history.SearchHistory` buffers — one little-endian
  ``float64``/``int64`` file per metadata column, one per parameter
  (categorical/ordinal values are stored as their domain index), plus one
  file of ``(submitted, completed)`` busy-interval pairs;
* **``meta.json``** — the immutable campaign fingerprint (space layout, seed,
  worker count, budgets), written once and atomically at creation;
* **``checkpoint.json``** — the small mutable record, atomically replaced at
  every checkpoint *after* the data files are fsynced: row/interval counts,
  the optimizer RNG state, the evaluator state, the surrogate *fit schedule*
  (the history row count at every fit, plus the surrogate RNG state captured
  just before the most recent fit) and the prior-refresh schedule.

Recovery (:meth:`repro.core.search.CampaignExecution.resume`) never replays
evaluations: the history rows are read back from the column files (truncated
to the checkpointed counts, which discards any torn tail from a crash
mid-append), the optimizer re-ingests them along the recorded fit boundaries
— partial-fit surrogates (GP) replay every fit event so their incremental
factors take the same growth path, from-scratch surrogates (RF) replay only
the final fit after restoring the pre-fit RNG state — prior refreshes are
re-trained against the same truncated history prefixes they originally saw,
and the evaluator reloads its pending evaluations with their already-decided
runtimes.  The resumed campaign is bit-identical to one that never crashed.

The **read side** is :class:`JournalReader`: a zero-copy, memory-mapped view
of a journaled campaign at its checkpoint watermark.  Each per-column append
file is ``np.memmap``-ed up to the committed row count — bytes past the
watermark (a live writer's uncheckpointed appends, or a torn tail left by a
crash) are simply never mapped, so one writer and any number of reader
processes can share a journal directory without locking and without
rewriting anything.  :func:`open_journal_reader` serves readers through an
LRU-bounded cache keyed by the checkpoint record's identity, so a cold
analysis sweep over thousands of stored campaigns neither re-reads column
data nor accumulates an unbounded number of live mappings
(:func:`set_journal_cache_limit` / :func:`clear_journal_cache` mirror the
parsed-CSV cache controls in :mod:`repro.analysis.csvio`).
"""

from __future__ import annotations

import json
import mmap
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.history import Evaluation, SearchHistory
from repro.core.ioutil import atomic_write_text, fsync_file
from repro.core.objective import Objective
from repro.core.space import IntegerParameter, RealParameter, SearchSpace

__all__ = [
    "CampaignJournal",
    "JournalError",
    "JournalReader",
    "open_journal_reader",
    "clear_journal_cache",
    "set_journal_cache_limit",
]

FORMAT_VERSION = 1
META_NAME = "meta.json"
CHECKPOINT_NAME = "checkpoint.json"

#: Metadata columns journaled for every history row, in file order.
_META_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("objective", "<f8"),
    ("runtime", "<f8"),
    ("submitted", "<f8"),
    ("completed", "<f8"),
    ("worker", "<i8"),
    ("eval_id", "<i8"),
)


class JournalError(RuntimeError):
    """A campaign journal is missing, malformed, or does not match the search."""


def _json_default(value: Any):
    """Encode the NumPy scalars that leak into evaluator state and configs."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"not JSON-serialisable: {value!r} ({type(value).__name__})")


def _dump_json(payload: Dict) -> str:
    # allow_nan keeps NaN/Infinity round-tripping (runtimes of failed and
    # hung evaluations); repr-based float formatting is exact for float64.
    return json.dumps(payload, default=_json_default, allow_nan=True)


class _ParamCodec:
    """Binary codec for one parameter's value column.

    Real parameters store their values as ``float64`` (exact round trip);
    integer parameters as ``int64``; categorical and ordinal parameters as
    the ``int64`` index into their declared domain, so the decoded value is
    the *identical* Python object the space defines (bools stay bools,
    strings stay strings).
    """

    def __init__(self, param):
        self.param = param
        self.name = param.name
        if isinstance(param, RealParameter):
            self.dtype = "<f8"
        elif isinstance(param, IntegerParameter):
            self.dtype = "<i8"
        elif getattr(param, "_domain", None) is not None:
            self.dtype = "<i8"
        else:
            raise JournalError(
                f"parameter {param.name!r} of type {type(param).__name__} "
                "has no journal codec"
            )

    def encode(self, values: Sequence) -> np.ndarray:
        param = self.param
        if isinstance(param, RealParameter):
            return np.asarray([float(v) for v in values], dtype="<f8")
        if isinstance(param, IntegerParameter):
            return np.asarray([int(v) for v in values], dtype="<i8")
        return np.asarray([param.index_of(v) for v in values], dtype="<i8")

    def decode(self, column: np.ndarray) -> List:
        param = self.param
        # tolist() converts the whole column to native Python scalars in one
        # C pass — element-wise iteration over a memory-mapped column would
        # pay one buffer access per value instead.
        values = column.tolist()
        if isinstance(param, (RealParameter, IntegerParameter)):
            return values
        domain = param._domain
        return [domain[v] for v in values]

    def decode_element(self, value):
        param = self.param
        if isinstance(param, RealParameter):
            return float(value)
        if isinstance(param, IntegerParameter):
            return int(value)
        return param._domain[int(value)]


def _space_fingerprint(space: SearchSpace) -> List[List[str]]:
    return [[p.name, type(p).__name__] for p in space.parameters]


class CampaignJournal:
    """The writer side of one campaign's durable sidecar directory.

    Use :meth:`create` for a fresh campaign (existing journal files in the
    directory are truncated) and :meth:`attach` when resuming — attach rolls
    the data files back to the last checkpoint's counts, discarding any torn
    post-crash tail, and continues appending from there.

    Parameters
    ----------
    directory:
        The sidecar directory (created if missing).
    space:
        The campaign's search space (defines the column files).
    fsync:
        Whether to fsync the data files before each checkpoint record is
        replaced (default).  Disabling trades crash durability for speed —
        the journal stays *consistent* (the checkpoint still only references
        rows it believes are on disk) but a power loss may roll further back.
    checkpoint_interval:
        Checkpoint every this-many manager ticks (1 = every tick).  Ticks
        between checkpoints are lost on a crash and transparently re-executed
        on resume — the replay is deterministic, so the result is unchanged.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        space: SearchSpace,
        fsync: bool = True,
        checkpoint_interval: int = 1,
    ):
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.directory = Path(directory)
        self.space = space
        self.fsync = bool(fsync)
        self.checkpoint_interval = int(checkpoint_interval)
        self._codecs = [_ParamCodec(p) for p in space.parameters]
        self._handles: Dict[str, object] = {}
        self.num_rows = 0
        self.num_intervals = 0
        self._fit_rows: List[int] = []
        self._pre_fit_rng: Optional[Dict] = None
        self._refresh_rows: List[int] = []

    # ------------------------------------------------------------ file layout
    def _meta_path(self) -> Path:
        return self.directory / META_NAME

    def _checkpoint_path(self) -> Path:
        return self.directory / CHECKPOINT_NAME

    def _data_files(self) -> List[Tuple[str, str]]:
        """``(filename, dtype)`` of every data file, in a fixed order."""
        files = [(f"m_{name}.bin", dtype) for name, dtype in _META_COLUMNS]
        files.extend(
            (f"p{i}.bin", codec.dtype) for i, codec in enumerate(self._codecs)
        )
        files.append(("intervals.bin", "<f8"))
        return files

    # ------------------------------------------------------------ construction
    @classmethod
    def create(
        cls,
        directory: Union[str, Path],
        space: SearchSpace,
        fsync: bool = True,
        checkpoint_interval: int = 1,
    ) -> "CampaignJournal":
        """Open a fresh journal, truncating any previous files in the way."""
        journal = cls(
            directory, space, fsync=fsync, checkpoint_interval=checkpoint_interval
        )
        journal.directory.mkdir(parents=True, exist_ok=True)
        checkpoint = journal._checkpoint_path()
        if checkpoint.exists():
            checkpoint.unlink()
        for name, _ in journal._data_files():
            (journal.directory / name).write_bytes(b"")
        journal._open_handles()
        return journal

    @classmethod
    def attach(
        cls,
        directory: Union[str, Path],
        space: SearchSpace,
        fsync: bool = True,
        checkpoint_interval: int = 1,
    ) -> "CampaignJournal":
        """Reopen a journal at its last checkpoint (for a resumed campaign).

        Data files are truncated to the checkpointed counts first: appends
        that happened after the final checkpoint (including a torn partial
        write from the crash itself) are rolled back, so the files and the
        checkpoint record always agree.
        """
        journal = cls(
            directory, space, fsync=fsync, checkpoint_interval=checkpoint_interval
        )
        checkpoint = journal._read_checkpoint()
        if checkpoint is None:
            raise JournalError(f"no checkpoint to attach to in {journal.directory}")
        journal.num_rows = int(checkpoint["num_rows"])
        journal.num_intervals = int(checkpoint["num_intervals"])
        journal._fit_rows = [int(r) for r in checkpoint["fit_rows"]]
        journal._pre_fit_rng = checkpoint.get("pre_fit_rng")
        journal._refresh_rows = [int(r) for r in checkpoint["refresh_rows"]]
        try:
            for name, dtype in journal._data_files():
                path = journal.directory / name
                count = journal.num_intervals * 2 if name == "intervals.bin" else journal.num_rows
                expected = count * np.dtype(dtype).itemsize
                size = path.stat().st_size if path.exists() else -1
                if size < expected:
                    raise JournalError(
                        f"journal data file {name} holds {size} bytes, "
                        f"checkpoint requires {expected}"
                    )
                if size > expected:
                    with open(path, "r+b") as handle:
                        handle.truncate(expected)
            journal._open_handles()
        except BaseException:
            # A half-done attach (missing/short data file, truncate or open
            # failure) must not leak whatever handles were already opened.
            journal.close()
            raise
        return journal

    def _open_handles(self) -> None:
        try:
            for name, _ in self._data_files():
                self._handles[name] = open(self.directory / name, "ab")
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Close the append handles (idempotent; the journal can re-attach).

        Every handle is closed even when one of them raises — the first
        error propagates after the sweep — and a second ``close()`` is a
        no-op, so cleanup paths (failed attach, registry eviction, ``with``
        blocks in callers) can call it unconditionally.
        """
        handles = list(self._handles.values())
        self._handles.clear()
        first_error: Optional[BaseException] = None
        for handle in handles:
            try:
                handle.close()
            except BaseException as error:  # pragma: no cover - OS-level rarity
                if first_error is None:
                    first_error = error
        if first_error is not None:  # pragma: no cover - OS-level rarity
            raise first_error

    # ------------------------------------------------------------------- meta
    def write_meta(self, extra: Dict) -> None:
        """Write the immutable campaign fingerprint (once, atomically)."""
        meta = {
            "format": FORMAT_VERSION,
            "space": _space_fingerprint(self.space),
        }
        meta.update(extra)
        atomic_write_text(self._meta_path(), _dump_json(meta))

    @staticmethod
    def exists(directory: Union[str, Path]) -> bool:
        """Whether ``directory`` already holds a campaign journal.

        The meta record is the journal's birth certificate (written first,
        atomically), so its presence is the create-or-attach pivot used by
        the campaign registry and ``CBOSearch.start_or_resume``.
        """
        return (Path(directory) / META_NAME).exists()

    @staticmethod
    def read_meta(directory: Union[str, Path]) -> Dict:
        path = Path(directory) / META_NAME
        if not path.exists():
            raise JournalError(f"no campaign journal at {directory} ({META_NAME} missing)")
        return json.loads(path.read_text())

    def _read_checkpoint(self) -> Optional[Dict]:
        path = self._checkpoint_path()
        if not path.exists():
            return None
        return json.loads(path.read_text())

    @staticmethod
    def read_checkpoint(directory: Union[str, Path]) -> Optional[Dict]:
        """The last committed checkpoint record (None before the first)."""
        path = Path(directory) / CHECKPOINT_NAME
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # ---------------------------------------------------------------- appends
    def append_rows(self, history: SearchHistory) -> None:
        """Append history rows past the journal's current row count."""
        stop = len(history)
        start = self.num_rows
        if stop <= start:
            return
        if history.has_incomplete_rows:
            raise JournalError("cannot journal a history with incomplete rows")
        meta, params = history.column_block(start, stop)
        for name, dtype in _META_COLUMNS:
            self._handles[f"m_{name}.bin"].write(
                np.ascontiguousarray(meta[name], dtype=dtype).tobytes()
            )
        for i, codec in enumerate(self._codecs):
            self._handles[f"p{i}.bin"].write(codec.encode(params[codec.name]).tobytes())
        self.num_rows = stop

    def append_intervals(self, intervals: Sequence[Tuple[float, float]]) -> None:
        """Append busy intervals past the journal's current interval count."""
        start = self.num_intervals
        if len(intervals) <= start:
            return
        block = np.asarray(intervals[start:], dtype="<f8")
        self._handles["intervals.bin"].write(np.ascontiguousarray(block).tobytes())
        self.num_intervals = len(intervals)

    # ------------------------------------------------------------------ events
    def note_fit(self, rows: int, surrogate_rng_state: Optional[Dict]) -> None:
        """Record a surrogate fit over the first ``rows`` history rows.

        ``surrogate_rng_state`` is the surrogate RNG's state captured *before*
        the fit runs (None for RNG-free surrogates); only the most recent one
        is retained — it is all a from-scratch surrogate needs to replay its
        final fit.
        """
        self._fit_rows.append(int(rows))
        self._pre_fit_rng = surrogate_rng_state

    def note_prior_refresh(self, rows: int) -> None:
        """Record a prior refresh trained on the first ``rows`` history rows."""
        self._refresh_rows.append(int(rows))

    # -------------------------------------------------------------- checkpoint
    def checkpoint(self, payload: Dict) -> None:
        """Commit everything appended so far plus the caller's state snapshot.

        The data handles are fsynced first (unless ``fsync=False``), then the
        checkpoint record referencing them is atomically replaced — a reader
        therefore never observes a checkpoint that points past the durable
        data.
        """
        if self.fsync:
            for handle in self._handles.values():
                fsync_file(handle)
        else:
            for handle in self._handles.values():
                handle.flush()
        record = {
            "format": FORMAT_VERSION,
            "num_rows": self.num_rows,
            "num_intervals": self.num_intervals,
            "fit_rows": self._fit_rows,
            "pre_fit_rng": self._pre_fit_rng,
            "refresh_rows": self._refresh_rows,
        }
        record.update(payload)
        atomic_write_text(self._checkpoint_path(), _dump_json(record))

    # ---------------------------------------------------------------- reading
    @classmethod
    def read_data(
        cls,
        directory: Union[str, Path],
        space: SearchSpace,
        checkpoint: Dict,
        objective=None,
    ) -> Tuple[SearchHistory, List[Tuple[float, float]]]:
        """Reconstruct the history and busy intervals a checkpoint references.

        Only the checkpointed prefix of each column file is read — bytes past
        it (appends the crash tore or never committed) are ignored.
        """
        journal = cls(directory, space)
        n = int(checkpoint["num_rows"])
        columns: Dict[str, np.ndarray] = {}
        for name, dtype in _META_COLUMNS:
            columns[name] = journal._read_column(f"m_{name}.bin", dtype, n)
        values = [
            codec.decode(journal._read_column(f"p{i}.bin", codec.dtype, n))
            for i, codec in enumerate(journal._codecs)
        ]
        history = SearchHistory(space, objective=objective)
        names = [codec.name for codec in journal._codecs]
        for i in range(n):
            history.append(
                Evaluation(
                    configuration={
                        name: column[i] for name, column in zip(names, values)
                    },
                    objective=float(columns["objective"][i]),
                    runtime=float(columns["runtime"][i]),
                    submitted=float(columns["submitted"][i]),
                    completed=float(columns["completed"][i]),
                    worker=int(columns["worker"][i]),
                    eval_id=int(columns["eval_id"][i]),
                )
            )
        pairs = journal._read_column(
            "intervals.bin", "<f8", int(checkpoint["num_intervals"]) * 2
        )
        intervals = [
            (float(pairs[2 * i]), float(pairs[2 * i + 1]))
            for i in range(int(checkpoint["num_intervals"]))
        ]
        return history, intervals

    def _read_column(self, name: str, dtype: str, count: int) -> np.ndarray:
        path = self.directory / name
        data = path.read_bytes() if path.exists() else b""
        needed = count * np.dtype(dtype).itemsize
        if len(data) < needed:
            raise JournalError(
                f"journal data file {name} holds {len(data)} bytes, "
                f"checkpoint requires {needed}"
            )
        return np.frombuffer(data[:needed], dtype=dtype)

    # -------------------------------------------------------------- validation
    @staticmethod
    def validate_meta(meta: Dict, space: SearchSpace, **expected) -> None:
        """Check a journal's fingerprint against the resuming search.

        ``expected`` holds scalar fields (seed, num_workers, surrogate, ...)
        that must match what the meta recorded; mismatches raise
        :class:`JournalError` — resuming under a different configuration
        would silently diverge from the original run instead.
        """
        if meta.get("format") != FORMAT_VERSION:
            raise JournalError(f"unsupported journal format {meta.get('format')!r}")
        fingerprint = _space_fingerprint(space)
        if meta.get("space") != fingerprint:
            raise JournalError(
                "journal space fingerprint does not match the resuming search"
            )
        for key, value in expected.items():
            if meta.get(key) != value:
                raise JournalError(
                    f"journal {key}={meta.get(key)!r} does not match the "
                    f"resuming search ({value!r})"
                )


def _object_column(values: Sequence) -> np.ndarray:
    """Pack decoded parameter values into the object-dtype column layout
    :class:`~repro.core.history.SearchHistory` stores natively."""
    column = np.empty(len(values), dtype=object)
    column[:] = values
    return column


class JournalReader:
    """Zero-copy, read-only view of a journaled campaign at its watermark.

    The reader loads the journal's ``meta.json`` (validating format and
    space fingerprint) and the last committed ``checkpoint.json``, then
    memory-maps each column file up to the checkpoint's row count — the
    *watermark*.  Bytes past the watermark are never mapped, so a torn tail
    from a crash, or appends a live writer has not checkpointed yet, are
    invisible: a reader attached mid-run always observes exactly the
    checkpointed prefix, bit-identical to the writer's in-memory history at
    that point.  Nothing is rewritten, so N reader processes and one writer
    coexist on the same directory without locking.

    :meth:`history` returns a read-only
    :class:`~repro.core.history.SearchHistory` whose metadata columns *are*
    the mapped files (no copy, no parse); parameter columns decode lazily on
    first access, so metric sweeps that only touch objectives/runtimes/
    timestamps never pay for configuration decoding.

    A journal whose checkpoint has not been written yet (created but never
    committed) reads as empty.  Use :func:`open_journal_reader` for the
    cached entry point.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        space: SearchSpace,
        objective: Optional[Objective] = None,
    ):
        self.directory = Path(directory)
        self.space = space
        self.objective = objective
        self.meta = CampaignJournal.read_meta(self.directory)
        CampaignJournal.validate_meta(self.meta, space)
        self.checkpoint = CampaignJournal.read_checkpoint(self.directory)
        #: Committed-row watermark: rows past it are never mapped.
        self.num_rows = 0 if self.checkpoint is None else int(self.checkpoint["num_rows"])
        self.num_intervals = (
            0 if self.checkpoint is None else int(self.checkpoint["num_intervals"])
        )
        self._codecs = [_ParamCodec(p) for p in space.parameters]
        self._history: Optional[SearchHistory] = None
        self._intervals: Optional[List[Tuple[float, float]]] = None
        self._raw_params: Dict[int, np.ndarray] = {}
        self._closed = False
        #: Reference count: the creator holds one reference; :meth:`retain`
        #: adds holders, :meth:`close` releases them.  The reader really
        #: closes only when the last holder releases, which makes cache
        #: eviction safe while another thread still uses the reader.
        self._refs = 1
        self._refs_lock = threading.Lock()

    # ---------------------------------------------------------------- mapping
    def _map_column(self, name: str, dtype: str, count: int) -> np.ndarray:
        """Memory-map the first ``count`` elements of one column file."""
        if count == 0:
            return np.empty(0, dtype=dtype)
        path = self.directory / name
        needed = count * np.dtype(dtype).itemsize
        try:
            with open(path, "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                if size < needed:
                    raise JournalError(
                        f"journal data file {name} holds {size} bytes, "
                        f"checkpoint requires {needed}"
                    )
                # Read-only shared mapping of just the committed prefix.  The
                # descriptor closes immediately after (the mapping survives
                # it), so a cached reader costs address space, not
                # descriptors.  ``np.memmap`` would do the same but
                # canonicalises the path on every call — a measurable cost
                # when sweeping thousands of column files.
                mapped = mmap.mmap(handle.fileno(), needed, access=mmap.ACCESS_READ)
        except FileNotFoundError:
            raise JournalError(
                f"journal data file {name} holds -1 bytes, "
                f"checkpoint requires {needed}"
            ) from None
        return np.frombuffer(mapped, dtype=np.dtype(dtype), count=count)

    # ------------------------------------------------------------------ views
    def history(self) -> SearchHistory:
        """The checkpointed history prefix as a read-only zero-copy view.

        The returned history is shared by every caller of the same reader
        (it is immutable); ``history.copy()`` thaws it into an independent
        mutable history when a caller needs to extend it.
        """
        if self._closed:
            raise JournalError(f"journal reader for {self.directory} is closed")
        if self._history is None:
            n = self.num_rows
            meta_columns = {
                name: self._map_column(f"m_{name}.bin", dtype, n)
                for name, dtype in _META_COLUMNS
            }
            loaders: Dict[str, Callable[[], np.ndarray]] = {
                codec.name: (
                    lambda i=i, codec=codec: _object_column(
                        codec.decode(self._raw_param(i))
                    )
                )
                for i, codec in enumerate(self._codecs)
            }
            element_loaders = {
                codec.name: (
                    lambda row, i=i, codec=codec: codec.decode_element(
                        self._raw_param(i)[row]
                    )
                )
                for i, codec in enumerate(self._codecs)
            }
            self._history = SearchHistory.from_columns(
                self.space,
                meta_columns,
                loaders,
                objective=self.objective,
                param_element_loaders=element_loaders,
            )
        return self._history

    def _raw_param(self, i: int) -> np.ndarray:
        """The (cached) typed mapping of parameter column ``i``.

        Shared by the full-column and per-element loaders so a ``best()``
        followed by a full decode maps the file once.
        """
        column = self._raw_params.get(i)
        if column is None:
            codec = self._codecs[i]
            column = self._raw_params[i] = self._map_column(
                f"p{i}.bin", codec.dtype, self.num_rows
            )
        return column

    def intervals(self) -> List[Tuple[float, float]]:
        """The checkpointed ``(submitted, completed)`` busy intervals."""
        if self._closed:
            raise JournalError(f"journal reader for {self.directory} is closed")
        if self._intervals is None:
            pairs = self._map_column("intervals.bin", "<f8", self.num_intervals * 2)
            flat = pairs.tolist()
            self._intervals = list(zip(flat[0::2], flat[1::2]))
        return list(self._intervals)

    def retain(self) -> "JournalReader":
        """Register an additional holder of this reader (thread-safe).

        Every ``retain()`` must be balanced by a :meth:`close`; the reader
        only really closes on the last release.  Used by
        :func:`open_journal_reader` callers that keep a cached reader beyond
        the current call, so a concurrent cache eviction (which releases the
        cache's own reference) cannot close the mappings under them.
        """
        with self._refs_lock:
            if self._closed:
                raise JournalError(
                    f"journal reader for {self.directory} is closed"
                )
            self._refs += 1
        return self

    def close(self) -> None:
        """Release one reference; the last release drops the mappings.

        Idempotent once closed.  Histories already handed out stay valid —
        they keep their own references, and the pages unmap only when the
        last view dies; closing just stops *this* reader from pinning them
        any longer.
        """
        with self._refs_lock:
            if self._closed:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._closed = True
        self._history = None
        self._intervals = None
        self._raw_params = {}

    # ------------------------------------------------------------------- peek
    @staticmethod
    def peek(directory: Union[str, Path]) -> Dict:
        """Cheap space-free status of a stored campaign (registry/monitoring).

        Maps only the objective and runtime columns — no search space, no
        parameter decoding, no optimizer replay — and returns a JSON-ready
        summary: evaluation count, failure count, best runtime/objective and
        the checkpoint's ``finished`` flag.  This is how the campaign
        registry reports on studies that are journaled on disk but not live
        in the process.
        """
        directory = Path(directory)
        meta = CampaignJournal.read_meta(directory)
        if meta.get("format") != FORMAT_VERSION:
            raise JournalError(f"unsupported journal format {meta.get('format')!r}")
        checkpoint = CampaignJournal.read_checkpoint(directory)
        payload: Dict[str, Any] = {
            "directory": str(directory),
            "num_evaluations": 0,
            "num_failures": 0,
            "finished": False,
            "best_runtime": None,
            "best_objective": None,
            "max_time": meta.get("max_time"),
            "num_workers": meta.get("num_workers"),
        }
        if checkpoint is None:
            return payload
        n = int(checkpoint["num_rows"])
        payload["num_evaluations"] = n
        payload["finished"] = bool(checkpoint.get("finished", False))
        if n:
            reader = JournalReader.__new__(JournalReader)
            reader.directory = directory
            objectives = reader._map_column("m_objective.bin", "<f8", n)
            finite = np.flatnonzero(np.isfinite(objectives))
            payload["num_failures"] = n - int(finite.size)
            if finite.size:
                # First maximum, matching SearchHistory.best() tie-breaking.
                best = int(finite[np.argmax(objectives[finite])])
                runtimes = reader._map_column("m_runtime.bin", "<f8", n)
                payload["best_objective"] = float(objectives[best])
                payload["best_runtime"] = float(runtimes[best])
        return payload


# --------------------------------------------------------------- reader cache
#: LRU reader cache: (resolved directory, checkpoint mtime_ns, checkpoint
#: size) → [(space, objective, reader), ...] in least-recently-used order
#: (oldest first).  A writer's new checkpoint changes the key, so a cached
#: reader is never stale; the short value list guards against the same
#: journal being read against different spaces/objectives.
_READER_CACHE: "OrderedDict[Tuple[str, int, int], List[Tuple[SearchSpace, Objective, JournalReader]]]" = OrderedDict()

#: Cache bound: beyond this many distinct checkpoints the least-recently-used
#: readers are dropped, so a sweep over thousands of journaled campaigns
#: keeps a bounded number of live mappings instead of one per campaign ever
#: touched.
_READER_CACHE_MAX = 128

#: Guards every mutation of ``_READER_CACHE`` (lookup + insert + LRU
#: reordering + eviction are one critical section).  Re-entrant because
#: eviction runs inside ``open_journal_reader`` which already holds it.
_READER_CACHE_LOCK = threading.RLock()


def clear_journal_cache() -> None:
    """Drop (and close) every cached journal reader (thread-safe)."""
    with _READER_CACHE_LOCK:
        for entries in _READER_CACHE.values():
            for _, _, reader in entries:
                reader.close()
        _READER_CACHE.clear()


def set_journal_cache_limit(max_readers: int) -> int:
    """Set the journal reader cache bound; returns the previous bound.

    Mirrors :func:`repro.analysis.csvio.set_history_cache_limit`: shrinking
    evicts least-recently-used readers immediately, ``0`` disables caching
    (every open maps afresh).
    """
    global _READER_CACHE_MAX
    if max_readers < 0:
        raise ValueError("max_readers must be >= 0")
    with _READER_CACHE_LOCK:
        previous = _READER_CACHE_MAX
        _READER_CACHE_MAX = int(max_readers)
        _evict_reader_cache()
    return previous


def _evict_reader_cache() -> None:
    with _READER_CACHE_LOCK:
        while len(_READER_CACHE) > _READER_CACHE_MAX:
            _, entries = _READER_CACHE.popitem(last=False)
            for _, _, reader in entries:
                reader.close()


def open_journal_reader(
    directory: Union[str, Path],
    space: SearchSpace,
    objective: Optional[Objective] = None,
    retain: bool = False,
) -> JournalReader:
    """Open a :class:`JournalReader` through the LRU-bounded cache.

    The cache key is the checkpoint record's ``(path, mtime, size)``
    identity: re-opening an unchanged campaign returns the already-mapped
    reader (and its shared zero-copy history) instantly, while a journal
    whose writer committed a new checkpoint gets a fresh reader at the new
    watermark — the stale entry for the same directory is dropped.  Hits
    refresh LRU order, so bulk sweeps evict the campaigns they are done
    with, not the ones they are about to revisit.

    Thread-safe: lookup, insertion and eviction run under one lock, and
    eviction only *releases* the cache's reference — it cannot close a
    reader out from under a holder that called :meth:`JournalReader.retain`.
    With ``retain=True`` the returned reader carries an extra reference owned
    by the caller, who must balance it with ``close()``; the default returns
    a borrowed reference valid until the entry is evicted (histories already
    obtained stay valid either way).
    """
    directory = Path(directory)
    checkpoint_path = directory / CHECKPOINT_NAME
    if _READER_CACHE_MAX == 0 or not checkpoint_path.exists():
        return JournalReader(directory, space, objective=objective)
    stat = checkpoint_path.stat()
    resolved = str(directory.resolve())
    key = (resolved, stat.st_mtime_ns, stat.st_size)
    wanted = objective or Objective()
    with _READER_CACHE_LOCK:
        entries = _READER_CACHE.get(key)
        if entries is None:
            for stale in [k for k in _READER_CACHE if k[0] == resolved]:
                for _, _, reader in _READER_CACHE.pop(stale):
                    reader.close()
            entries = _READER_CACHE[key] = []
        else:
            _READER_CACHE.move_to_end(key)
        for cached_space, cached_objective, reader in entries:
            if cached_space == space and cached_objective == wanted:
                return reader.retain() if retain else reader
        reader = JournalReader(directory, space, objective=wanted)
        entries.append((space, wanted, reader))
        _evict_reader_cache()
        return reader.retain() if retain else reader
