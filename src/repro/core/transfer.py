"""Transfer learning: from a previous run's history to an informative prior.

This is the heart of the paper's contribution (Algorithm 1, lines 1–10):

1. select the top-q% configurations ``Q_p`` of the previous history ``H_p``;
2. fit a tabular VAE on ``Q_p`` to model their joint distribution;
3. build a joint sampling prior for the *current* space that samples the
   parameters shared with the previous space from the VAE, and any *new*
   parameter from its uninformative prior (uniform for numeric parameters,
   multinoulli for categorical ones);
4. hand that prior to the asynchronous BO, which uses it both for the
   initialisation batch and for generating candidate configurations inside
   the optimization loop — biasing the whole search toward the previously
   high-performing region.

The source and target spaces may differ in their parameter sets (the paper's
unique capability); only the shared parameters are learned from, and they are
interpreted with the *target* space's definitions so bounds and encodings stay
consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.history import SearchHistory
from repro.core.priors import IndependentPrior, JointPrior, _concat_shuffle_columns, default_prior
from repro.core.space import (
    ColumnBatch,
    Configuration,
    IntegerParameter,
    RealParameter,
    SearchSpace,
)
from repro.core.vae.transforms import TabularTransform
from repro.core.vae.tvae import TabularVAE

__all__ = [
    "PreparedTransferFit",
    "TransferLearningPrior",
    "fit_transfer_prior",
    "prepare_transfer_prior",
]


class TransferLearningPrior(JointPrior):
    """Joint prior combining a VAE over shared parameters with defaults for new ones.

    Parameters
    ----------
    space:
        The *current* (target) search space.
    vae:
        Tabular VAE trained on the top configurations of the previous run.
    transform:
        The tabular transform over the shared-parameter subspace.
    new_parameters:
        Names of parameters present in ``space`` but absent from the previous
        space (they are sampled from their uninformative priors).
    uniform_fraction:
        Fraction of samples drawn entirely from the uninformative prior, so
        the biased search keeps non-zero support over the whole space.
    top_configurations:
        The configurations the VAE was trained on (kept for inspection and
        for the fallback when the VAE could not be trained).
    top_batch:
        Optional columnar form of ``top_configurations`` over the shared
        subspace (built once by :func:`fit_transfer_prior`); when omitted it
        is derived from ``top_configurations``.
    """

    def __init__(
        self,
        space: SearchSpace,
        vae: Optional[TabularVAE],
        transform: TabularTransform,
        new_parameters: List[str],
        uniform_fraction: float = 0.05,
        top_configurations: Optional[List[Configuration]] = None,
        top_batch: Optional[ColumnBatch] = None,
    ):
        if not (0.0 <= uniform_fraction <= 1.0):
            raise ValueError("uniform_fraction must be in [0, 1]")
        self.space = space
        self.vae = vae
        self.transform = transform
        self.new_parameters = list(new_parameters)
        self.uniform_fraction = float(uniform_fraction)
        self.top_configurations = list(top_configurations or [])
        self._uninformative = IndependentPrior(space)
        self._new_priors = {
            name: default_prior(space[name]) for name in self.new_parameters
        }
        # The shared-subspace machinery of the fallback sampler is resolved
        # once here instead of per sample_columns call.
        names = [c.parameter.name for c in transform.columns]
        self._shared_space = SearchSpace([c.parameter for c in transform.columns])
        if top_batch is not None and len(top_batch) > 0:
            self._top_batch: Optional[ColumnBatch] = top_batch
        elif self.top_configurations:
            self._top_batch = ColumnBatch.from_configurations(
                self._shared_space,
                [{name: c[name] for name in names} for c in self.top_configurations],
            )
        else:
            self._top_batch = None

    # --------------------------------------------------------------- sampling
    def sample_columns(self, n: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        """Sample ``n`` configurations as per-parameter columns (hot path).

        The VAE decodes whole columns, new parameters are drawn as columns
        from their uninformative priors, and the informative/uniform parts are
        mixed with a single shared permutation — no intermediate Python dicts.
        """
        if n <= 0:
            return {p.name: np.empty(0, dtype=object) for p in self.space}
        n_uniform = int(rng.binomial(n, self.uniform_fraction)) if self.uniform_fraction else 0
        n_informed = n - n_uniform
        parts: List[Dict[str, np.ndarray]] = []
        if n_informed > 0:
            parts.append(self._sample_informed_columns(n_informed, rng))
        if n_uniform > 0:
            parts.append(self._uninformative.sample_columns(n_uniform, rng))
        permutation = rng.permutation(n)
        return _concat_shuffle_columns(self.space, parts, permutation)

    def sample_configurations(self, n: int, rng: np.random.Generator) -> List[Configuration]:
        if n <= 0:
            return []
        return ColumnBatch(self.space, self.sample_columns(n, rng)).to_configurations()

    def _sample_informed_columns(self, n: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        columns = dict(self._sample_shared_columns(n, rng))
        for name, prior in self._new_priors.items():
            columns[name] = prior.sample_array(n, rng)
        # Shared columns are decoded with the *target* space's parameter
        # definitions and new columns come from in-domain priors, so values
        # are already legal; numeric columns are still clipped as a cheap
        # safety net against bound drift between campaigns.
        for p in self.space:
            if isinstance(p, (RealParameter, IntegerParameter)):
                columns[p.name] = np.clip(columns[p.name], p.low, p.high)
        return columns

    def _sample_shared_columns(self, n: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        """Sample the shared-parameter part (VAE if available, else resample Q_p)."""
        if self.vae is not None and self.vae.fitted:
            rows = self.vae.sample(n, rng)
            return self.transform.decode_columns(rows, rng=rng, sample_categories=True).columns
        # Fallback (tiny Q_p): resample the precomputed columnar Q_p directly.
        if self._top_batch is not None:
            picks = rng.integers(0, len(self._top_batch), size=n)
            return self._top_batch.take(picks).columns
        # Last resort: uninformative sampling of the shared subspace.
        return IndependentPrior(self._shared_space).sample_columns(n, rng)

    # ------------------------------------------------------------- inspection
    @property
    def shared_parameters(self) -> List[str]:
        """Names of the parameters sampled from the learned distribution."""
        return [c.parameter.name for c in self.transform.columns]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<TransferLearningPrior shared={len(self.shared_parameters)} "
            f"new={len(self.new_parameters)} vae={'yes' if self.vae else 'no'}>"
        )


@dataclass
class PreparedTransferFit:
    """A constructed-but-untrained transfer VAE, awaiting its (fleet) fit.

    :func:`prepare_transfer_prior` returns one of these when the selected
    top set is large enough for a VAE.  ``train()`` runs the exact solo fit
    (same design matrix, epochs and batch size :func:`fit_transfer_prior`
    would have used — the VAE owns its seeded RNG, so a deferred fit is
    bitwise identical to an eager one); fleet drivers instead hand several
    members' ``vae``/``design`` pairs to one
    :class:`~repro.core.vae.tvae.VAEFleet` pass, which is likewise
    bit-identical per member.  The fit **must** complete before the prior's
    first sample: :class:`TransferLearningPrior` silently falls back to
    top-batch resampling while ``vae.fitted`` is False.
    """

    vae: TabularVAE
    design: np.ndarray
    epochs: int
    batch_size: int

    def train(self) -> None:
        """Run the deferred solo fit (no-op once the VAE is fitted)."""
        if not self.vae.fitted:
            self.vae.fit(self.design, epochs=self.epochs, batch_size=self.batch_size)


def prepare_transfer_prior(
    source_history: SearchHistory,
    target_space: SearchSpace,
    quantile: float = 0.10,
    epochs: int = 300,
    latent_dim: int = 8,
    hidden=(64, 64),
    uniform_fraction: float = 0.05,
    min_configurations_for_vae: int = 8,
    seed: int = 0,
) -> Tuple[TransferLearningPrior, Optional[PreparedTransferFit]]:
    """:func:`fit_transfer_prior` minus the VAE training pass.

    Returns the prior plus the pending fit (``None`` when the top set is too
    small for a VAE).  Everything up to and including VAE *construction* is
    identical to the eager path; only ``vae.fit`` is deferred, so training
    the pending fit — solo via :meth:`PreparedTransferFit.train` or fused
    through a :class:`~repro.core.vae.tvae.VAEFleet` — yields a prior
    bitwise identical to :func:`fit_transfer_prior`'s.
    """
    source_space = source_history.space
    shared_names = [p.name for p in target_space if p.name in source_space]
    new_names = [p.name for p in target_space if p.name not in source_space]
    if not shared_names:
        raise ValueError(
            "the source and target spaces share no parameters; transfer learning "
            "cannot be applied"
        )
    shared_space = target_space.subspace(shared_names, name="shared")
    transform = TabularTransform(shared_space)

    # Keep only the shared parameters and clip them into the target bounds
    # (bounds may legitimately change between campaigns).
    if source_history.has_incomplete_rows:
        # Row-tolerant fallback: histories with hand-built evaluations may
        # define the shared parameters while lacking source-only ones; only
        # rows missing a *shared* parameter are dropped.
        top_shared: List[Configuration] = []
        for config in source_history.top_quantile(quantile):
            restricted = {
                name: config[name] for name in shared_names if name in config
            }
            if len(restricted) == len(shared_names):
                top_shared.append(shared_space.clip(restricted))
        top_batch = ColumnBatch.from_configurations(shared_space, top_shared)
    else:
        # Hot path, columnar end to end: select Q_p on the history's
        # objective column, fancy-index only the shared parameter columns,
        # clip them as columns and encode them as columns — the selection
        # never materialises one dict per historical evaluation (H_p has
        # 1500+ rows at paper scale, Q_p a handful) and the VAE's design
        # matrix is built without intermediate row dicts.
        source_batch = source_history.top_quantile_columns(quantile)
        top_batch = ColumnBatch(
            shared_space,
            shared_space.clip_columns(
                {name: source_batch.column(name) for name in shared_names}
            ),
        )
        top_shared = top_batch.to_configurations()

    vae: Optional[TabularVAE] = None
    pending: Optional[PreparedTransferFit] = None
    if len(top_batch) >= min_configurations_for_vae:
        X = transform.encode_columns(top_batch)
        vae = TabularVAE(
            input_dim=transform.dimension,
            numeric_columns=transform.numeric_columns,
            categorical_blocks=transform.categorical_blocks,
            latent_dim=min(latent_dim, max(2, transform.dimension // 2)),
            hidden=hidden,
            seed=seed,
        )
        pending = PreparedTransferFit(
            vae=vae,
            design=X,
            epochs=epochs,
            batch_size=min(64, max(4, len(top_batch))),
        )

    prior = TransferLearningPrior(
        space=target_space,
        vae=vae,
        transform=transform,
        new_parameters=new_names,
        uniform_fraction=uniform_fraction,
        top_configurations=top_shared,
        top_batch=top_batch,
    )
    return prior, pending


def fit_transfer_prior(
    source_history: SearchHistory,
    target_space: SearchSpace,
    quantile: float = 0.10,
    epochs: int = 300,
    latent_dim: int = 8,
    hidden=(64, 64),
    uniform_fraction: float = 0.05,
    min_configurations_for_vae: int = 8,
    seed: int = 0,
) -> TransferLearningPrior:
    """Build the informative prior of Algorithm 1 from a previous history.

    Parameters
    ----------
    source_history:
        History ``H_p`` of the previous autotuning run.
    target_space:
        Parameter space ``D_c`` of the current run (may differ from the
        previous space).
    quantile:
        Top fraction ``q`` of configurations used to train the VAE.
    epochs, latent_dim, hidden:
        VAE training budget and architecture.
    uniform_fraction:
        Fraction of prior samples drawn uniformly (exploration safeguard).
    min_configurations_for_vae:
        Below this number of selected configurations the VAE is skipped and
        the prior resamples the selected configurations directly.
    seed:
        Seed for VAE initialisation and training.
    """
    prior, pending = prepare_transfer_prior(
        source_history,
        target_space,
        quantile=quantile,
        epochs=epochs,
        latent_dim=latent_dim,
        hidden=hidden,
        uniform_fraction=uniform_fraction,
        min_configurations_for_vae=min_configurations_for_vae,
        seed=seed,
    )
    if pending is not None:
        pending.train()
    return prior
