"""Acquisition functions for sampling-based Bayesian optimization.

The paper ranks sampled candidate configurations with the lower confidence
bound ``LCB(x) = µ(x) − κ·σ(x)`` (Eq. 2) and *minimises* it, which — because
DeepHyper maximises the objective ``-log(runtime)`` — is equivalent to
*maximising* the upper confidence bound ``UCB(x) = µ(x) + κ·σ(x)``.  Both
forms are provided; the optimizer uses the UCB-maximisation convention
throughout, with the paper's default κ = 1.96 (a 95 % confidence band).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["lower_confidence_bound", "upper_confidence_bound", "expected_improvement", "UCBAcquisition"]

#: The paper's default exploration/exploitation trade-off (95 % interval).
DEFAULT_KAPPA = 1.96


def lower_confidence_bound(mean: np.ndarray, std: np.ndarray, kappa: float = DEFAULT_KAPPA) -> np.ndarray:
    """``µ − κσ`` — minimised when the objective is minimised (Eq. 2)."""
    _check(mean, std, kappa)
    return np.asarray(mean) - kappa * np.asarray(std)


def upper_confidence_bound(mean: np.ndarray, std: np.ndarray, kappa: float = DEFAULT_KAPPA) -> np.ndarray:
    """``µ + κσ`` — maximised when the objective is maximised."""
    _check(mean, std, kappa)
    return np.asarray(mean) + kappa * np.asarray(std)


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.0
) -> np.ndarray:
    """Expected improvement over ``best`` for a maximised objective.

    Provided for completeness (GPtune-style frameworks use EI); the main
    search uses the confidence-bound family.
    """
    from scipy.stats import norm

    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    improvement = mean - best - xi
    z = improvement / std
    return improvement * norm.cdf(z) + std * norm.pdf(z)


def _check(mean: np.ndarray, std: np.ndarray, kappa: float) -> None:
    if kappa < 0:
        raise ValueError("kappa must be non-negative")
    mean = np.asarray(mean)
    std = np.asarray(std)
    if mean.shape != std.shape:
        raise ValueError(f"mean and std shapes differ: {mean.shape} vs {std.shape}")


@dataclass(frozen=True)
class UCBAcquisition:
    """Callable upper-confidence-bound acquisition with a fixed κ.

    ``kappa = 0`` is pure exploitation (greedy); large κ is pure exploration
    (§III-A).
    """

    kappa: float = DEFAULT_KAPPA

    def __call__(self, mean: np.ndarray, std: np.ndarray) -> np.ndarray:
        return upper_confidence_bound(mean, std, self.kappa)

    def rank(self, mean: np.ndarray, std: np.ndarray) -> np.ndarray:
        """Candidate indices sorted from most to least promising."""
        scores = self(mean, std)
        return np.argsort(scores)[::-1]
