"""Dense layers, activations and MLP container with manual backpropagation.

The networks used by the tabular VAE are small (two hidden layers of 64-128
units, a few thousand training rows at most), so a straightforward NumPy
implementation with explicit forward/backward methods is both sufficient and
easy to verify — the test suite checks the analytic gradients against finite
differences.

Two families of layers live here:

* the scalar family (:class:`Dense`, :class:`MLP`) — one network, 2-D
  activations ``(batch, features)``;
* the fleet family (:class:`DenseFleet`, :class:`MLPFleet`) — ``K``
  independent networks advanced in lock step, with stacked ``(K, in, out)``
  weights driven by one batched contraction (``np.matmul`` over the stacked
  operands) per layer.  Each stacked slice sees exactly the 2-D problem a
  solo layer would, so fleet activations and gradients are **bitwise
  identical** per member to running the members one by one — the property
  the fused :class:`~repro.core.vae.tvae.VAEFleet` training relies on.

The elementwise activations (:class:`ReLU`, :class:`Tanh`) are shape-agnostic
and shared by both families.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Layer", "Dense", "ReLU", "Tanh", "MLP", "DenseFleet", "MLPFleet"]


class Layer:
    """Base class: a differentiable transformation with learnable parameters."""

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def parameters(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """List of ``(parameter, gradient)`` array pairs (updated in place)."""
        return []

    def zero_grad(self) -> None:
        """Reset accumulated gradients to zero."""
        for _, grad in self.parameters():
            grad[...] = 0.0


class Dense(Layer):
    """Affine layer ``y = x W + b`` with Xavier/Glorot initialisation."""

    def __init__(self, in_dim: int, out_dim: int, rng: Optional[np.random.Generator] = None):
        if in_dim < 1 or out_dim < 1:
            raise ValueError("layer dimensions must be positive")
        rng = rng or np.random.default_rng()
        limit = np.sqrt(6.0 / (in_dim + out_dim))
        self.W = rng.uniform(-limit, limit, size=(in_dim, out_dim))
        self.b = np.zeros(out_dim)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.W + self.b

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.dW += self._x.T @ grad_output
        self.db += grad_output.sum(axis=0)
        return grad_output @ self.W.T

    def parameters(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        return [(self.W, self.dW), (self.b, self.db)]


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._out**2)


class MLP(Layer):
    """A simple sequential stack of layers."""

    def __init__(self, layers: Sequence[Layer]):
        self.layers = list(layers)

    @classmethod
    def build(
        cls,
        in_dim: int,
        hidden: Sequence[int],
        out_dim: int,
        rng: Optional[np.random.Generator] = None,
        activation: str = "relu",
    ) -> "MLP":
        """Construct ``in_dim → hidden… → out_dim`` with the given activation."""
        act = {"relu": ReLU, "tanh": Tanh}[activation]
        layers: List[Layer] = []
        prev = in_dim
        for width in hidden:
            layers.append(Dense(prev, width, rng))
            layers.append(act())
            prev = width
        layers.append(Dense(prev, out_dim, rng))
        return cls(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        params: List[Tuple[np.ndarray, np.ndarray]] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params


# --------------------------------------------------------------------- fleets
class DenseFleet(Layer):
    """``K`` independent :class:`Dense` layers with stacked weights.

    The weights live in one ``(K, in, out)`` array (bias ``(K, out)``) and a
    forward pass contracts the whole fleet at once:
    ``y = matmul(x, W) + b[:, None, :]`` over activations of shape
    ``(K, batch, in)``.  NumPy's stacked ``matmul`` runs the same 2-D kernel
    per slice as ``x[k] @ W[k]``, so every member's outputs and gradients are
    bitwise identical to a solo :class:`Dense` seeing the same inputs.
    """

    def __init__(self, W: np.ndarray, b: np.ndarray):
        W = np.asarray(W, dtype=float)
        b = np.asarray(b, dtype=float)
        if W.ndim != 3 or b.ndim != 2 or W.shape[0] != b.shape[0] or W.shape[2] != b.shape[1]:
            raise ValueError("DenseFleet needs W of shape (K, in, out) and b of shape (K, out)")
        self.W = W
        self.b = b
        self.dW = np.zeros_like(W)
        self.db = np.zeros_like(b)
        self._x: Optional[np.ndarray] = None

    @classmethod
    def from_members(cls, members: Sequence[Dense]) -> "DenseFleet":
        """Stack the weights of ``K`` compatible :class:`Dense` layers."""
        if not members:
            raise ValueError("need at least one member layer")
        shape = members[0].W.shape
        if any(m.W.shape != shape for m in members):
            raise ValueError("all member layers must share the same (in, out) shape")
        return cls(np.stack([m.W for m in members]), np.stack([m.b for m in members]))

    def write_back(self, members: Sequence[Dense]) -> None:
        """Copy the trained stacked weights back into the member layers."""
        if len(members) != self.W.shape[0]:
            raise ValueError("member count does not match the fleet size")
        for k, member in enumerate(members):
            member.W[...] = self.W[k]
            member.b[...] = self.b[k]
            member.dW[...] = self.dW[k]
            member.db[...] = self.db[k]

    @property
    def fleet_size(self) -> int:
        """Number of member layers."""
        return self.W.shape[0]

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return np.matmul(x, self.W) + self.b[:, None, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.dW += np.matmul(self._x.transpose(0, 2, 1), grad_output)
        self.db += grad_output.sum(axis=1)
        return np.matmul(grad_output, self.W.transpose(0, 2, 1))

    def parameters(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        return [(self.W, self.dW), (self.b, self.db)]


class MLPFleet(Layer):
    """``K`` independent :class:`MLP` stacks advanced in lock step.

    Built from member MLPs of identical structure: every :class:`Dense` level
    becomes one :class:`DenseFleet`, elementwise activations are shared as-is
    (they are shape-agnostic and stateless between members).
    """

    def __init__(self, layers: Sequence[Layer]):
        self.layers = list(layers)

    @classmethod
    def from_members(cls, members: Sequence[MLP]) -> "MLPFleet":
        """Stack ``K`` structurally identical member MLPs."""
        if not members:
            raise ValueError("need at least one member MLP")
        depth = len(members[0].layers)
        if any(len(m.layers) != depth for m in members):
            raise ValueError("all member MLPs must have the same depth")
        layers: List[Layer] = []
        for level in range(depth):
            level_layers = [m.layers[level] for m in members]
            kinds = {type(layer) for layer in level_layers}
            if len(kinds) != 1:
                raise ValueError(f"mixed layer types at level {level}: {sorted(k.__name__ for k in kinds)}")
            if isinstance(level_layers[0], Dense):
                layers.append(DenseFleet.from_members(level_layers))
            else:
                # Elementwise activation: stateless between calls, reuse the type.
                layers.append(type(level_layers[0])())
        return cls(layers)

    def write_back(self, members: Sequence[MLP]) -> None:
        """Copy the trained stacked weights back into the member MLPs."""
        for level, layer in enumerate(self.layers):
            if isinstance(layer, DenseFleet):
                layer.write_back([m.layers[level] for m in members])

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        params: List[Tuple[np.ndarray, np.ndarray]] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params
