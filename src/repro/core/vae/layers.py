"""Dense layers, activations and MLP container with manual backpropagation.

The networks used by the tabular VAE are small (two hidden layers of 64-128
units, a few thousand training rows at most), so a straightforward NumPy
implementation with explicit forward/backward methods is both sufficient and
easy to verify — the test suite checks the analytic gradients against finite
differences.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Layer", "Dense", "ReLU", "Tanh", "MLP"]


class Layer:
    """Base class: a differentiable transformation with learnable parameters."""

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def parameters(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """List of ``(parameter, gradient)`` array pairs (updated in place)."""
        return []

    def zero_grad(self) -> None:
        """Reset accumulated gradients to zero."""
        for _, grad in self.parameters():
            grad[...] = 0.0


class Dense(Layer):
    """Affine layer ``y = x W + b`` with Xavier/Glorot initialisation."""

    def __init__(self, in_dim: int, out_dim: int, rng: Optional[np.random.Generator] = None):
        if in_dim < 1 or out_dim < 1:
            raise ValueError("layer dimensions must be positive")
        rng = rng or np.random.default_rng()
        limit = np.sqrt(6.0 / (in_dim + out_dim))
        self.W = rng.uniform(-limit, limit, size=(in_dim, out_dim))
        self.b = np.zeros(out_dim)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.W + self.b

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.dW += self._x.T @ grad_output
        self.db += grad_output.sum(axis=0)
        return grad_output @ self.W.T

    def parameters(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        return [(self.W, self.dW), (self.b, self.db)]


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._out**2)


class MLP(Layer):
    """A simple sequential stack of layers."""

    def __init__(self, layers: Sequence[Layer]):
        self.layers = list(layers)

    @classmethod
    def build(
        cls,
        in_dim: int,
        hidden: Sequence[int],
        out_dim: int,
        rng: Optional[np.random.Generator] = None,
        activation: str = "relu",
    ) -> "MLP":
        """Construct ``in_dim → hidden… → out_dim`` with the given activation."""
        act = {"relu": ReLU, "tanh": Tanh}[activation]
        layers: List[Layer] = []
        prev = in_dim
        for width in hidden:
            layers.append(Dense(prev, width, rng))
            layers.append(act())
            prev = width
        layers.append(Dense(prev, out_dim, rng))
        return cls(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        params: List[Tuple[np.ndarray, np.ndarray]] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params
