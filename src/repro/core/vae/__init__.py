"""Tabular variational autoencoder (NumPy, manual backpropagation).

The paper models the joint distribution of high-performing configurations
with a tabular VAE (TVAE, Xu et al. 2019, distributed through the SDV
package).  PyTorch is not available in this environment, so the VAE is
implemented from scratch:

* :mod:`repro.core.vae.layers` — dense layers, activations and a small MLP
  container with manual forward/backward passes, plus their fleet-stacked
  counterparts (:class:`~repro.core.vae.layers.DenseFleet`,
  :class:`~repro.core.vae.layers.MLPFleet`) driving ``K`` networks with one
  batched contraction per layer.
* :mod:`repro.core.vae.optim` — the Adam optimiser and its fleet-stacked
  variant (:class:`~repro.core.vae.optim.AdamFleet`).
* :mod:`repro.core.vae.transforms` — the tabular transform mapping mixed
  integer/real/categorical configurations onto the VAE's numeric inputs
  (unit-interval columns for numeric/ordinal parameters, one-hot blocks for
  categorical parameters) and back; both directions are columnar
  (``encode_columns``/``decode_columns``), with the row-major ``encode`` kept
  as the bit-identical reference.
* :mod:`repro.core.vae.tvae` — the VAE itself: Gaussian latent space,
  per-column reconstruction losses (Gaussian for numeric columns,
  cross-entropy for categorical blocks), trained with Adam — solo
  (:meth:`~repro.core.vae.tvae.TabularVAE.fit`) or as a fused lock-step
  fleet (:class:`~repro.core.vae.tvae.VAEFleet`, bitwise identical per
  member to sequential fits).
"""

from repro.core.vae.layers import Dense, DenseFleet, MLP, MLPFleet, ReLU, Tanh
from repro.core.vae.optim import Adam, AdamFleet
from repro.core.vae.transforms import TabularTransform
from repro.core.vae.tvae import TabularVAE, VAEFleet, vae_fleet_key

__all__ = [
    "Adam",
    "AdamFleet",
    "Dense",
    "DenseFleet",
    "MLP",
    "MLPFleet",
    "ReLU",
    "TabularTransform",
    "TabularVAE",
    "Tanh",
    "VAEFleet",
    "vae_fleet_key",
]
