"""Tabular variational autoencoder (NumPy, manual backpropagation).

The paper models the joint distribution of high-performing configurations
with a tabular VAE (TVAE, Xu et al. 2019, distributed through the SDV
package).  PyTorch is not available in this environment, so the VAE is
implemented from scratch:

* :mod:`repro.core.vae.layers` — dense layers, activations and a small MLP
  container with manual forward/backward passes.
* :mod:`repro.core.vae.optim` — the Adam optimiser.
* :mod:`repro.core.vae.transforms` — the tabular transform mapping mixed
  integer/real/categorical configurations onto the VAE's numeric inputs
  (unit-interval columns for numeric/ordinal parameters, one-hot blocks for
  categorical parameters) and back.
* :mod:`repro.core.vae.tvae` — the VAE itself: Gaussian latent space,
  per-column reconstruction losses (Gaussian for numeric columns,
  cross-entropy for categorical blocks), trained with Adam.
"""

from repro.core.vae.layers import Dense, MLP, ReLU, Tanh
from repro.core.vae.optim import Adam
from repro.core.vae.transforms import TabularTransform
from repro.core.vae.tvae import TabularVAE

__all__ = ["Adam", "Dense", "MLP", "ReLU", "TabularTransform", "TabularVAE", "Tanh"]
