"""Adam optimisers for the NumPy MLPs (solo and fleet-stacked).

:class:`Adam` drives one network's ``(parameter, gradient)`` pairs.
:class:`AdamFleet` drives the stacked parameters of a
:class:`~repro.core.vae.layers.DenseFleet`/:class:`~repro.core.vae.layers.MLPFleet`:
its moment buffers carry the fleet's leading ``K`` axis and the step count
is shared (fleet members step in lock step by construction).  Because every
Adam update is elementwise, each member's slice of a fleet update is bitwise
identical to a solo :class:`Adam` update on the same gradients.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Adam", "AdamFleet"]


class Adam:
    """Adam (Kingma & Ba, 2015) operating on ``(parameter, gradient)`` pairs.

    Parameters are updated in place; gradients are expected to have been
    accumulated by the layers' ``backward`` calls and are *not* cleared here
    (call ``zero_grad`` on the model between steps).

    Parameters
    ----------
    parameters:
        The ``(parameter, gradient)`` array pairs to optimise.
    lr:
        Learning rate.
    beta1, beta2:
        Exponential decay rates of the first and second moment estimates.
    eps:
        Numerical stabiliser.
    """

    def __init__(
        self,
        parameters: Sequence[Tuple[np.ndarray, np.ndarray]],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: List[np.ndarray] = [np.zeros_like(p) for p, _ in self.parameters]
        self._v: List[np.ndarray] = [np.zeros_like(p) for p, _ in self.parameters]
        self._t = 0

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for i, (param, grad) in enumerate(self.parameters):
            self._m[i] = b1 * self._m[i] + (1 - b1) * grad
            self._v[i] = b2 * self._v[i] + (1 - b2) * grad**2
            m_hat = self._m[i] / (1 - b1**self._t)
            v_hat = self._v[i] / (1 - b2**self._t)
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    @property
    def steps_taken(self) -> int:
        """Number of update steps applied so far."""
        return self._t


class AdamFleet(Adam):
    """Adam over fleet-stacked parameters (leading axis = fleet member).

    Every Adam update is elementwise, so the base :meth:`Adam.step` already
    advances all members at once when the moment buffers carry the stacked
    shapes; this subclass pins the fleet contract — every parameter must lead
    with the ``K`` axis, the step count is shared because members step in
    lock step — and validates it up front.

    Parameters
    ----------
    parameters:
        ``(parameter, gradient)`` pairs whose arrays carry the fleet's
        leading ``K`` axis (e.g. ``DenseFleet.parameters()``).
    fleet_size:
        Number of members ``K`` (validated against every parameter).
    lr, beta1, beta2, eps:
        As for :class:`Adam`, shared by all members.
    """

    def __init__(
        self,
        parameters: Sequence[Tuple[np.ndarray, np.ndarray]],
        fleet_size: int,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if fleet_size < 1:
            raise ValueError("fleet_size must be >= 1")
        super().__init__(parameters, lr=lr, beta1=beta1, beta2=beta2, eps=eps)
        for param, _ in self.parameters:
            if param.shape[0] != fleet_size:
                raise ValueError(
                    f"parameter of shape {param.shape} does not lead with fleet_size={fleet_size}"
                )
        self.fleet_size = int(fleet_size)
