"""The tabular variational autoencoder.

Architecture (following the TVAE of Xu et al., scaled to the size of the
autotuning histories):

* encoder: MLP ``input → hidden → hidden``, then two linear heads producing
  the latent mean ``µ`` and log-variance ``log σ²``;
* latent space: diagonal Gaussian with the reparameterisation trick;
* decoder: MLP ``latent → hidden → hidden → input``; numeric columns go
  through a sigmoid (they live in ``[0, 1]`` after the tabular transform) and
  are scored with a Gaussian reconstruction loss, categorical blocks go
  through a softmax and are scored with cross-entropy;
* loss: reconstruction + β · KL(q(z|x) ‖ N(0, I)), optimised with Adam.

Everything — forward pass, backward pass, training loop, sampling — is
implemented with NumPy; the gradients are verified against finite differences
in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.vae.layers import Dense, MLP
from repro.core.vae.optim import Adam

__all__ = ["TabularVAE", "TrainingTrace"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=1, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=1, keepdims=True)


@dataclass
class TrainingTrace:
    """Per-epoch training diagnostics."""

    loss: List[float]
    reconstruction: List[float]
    kl: List[float]

    @property
    def final_loss(self) -> float:
        """Loss of the last epoch (inf if training never ran)."""
        return self.loss[-1] if self.loss else float("inf")


class TabularVAE:
    """A VAE over tabular rows produced by
    :class:`~repro.core.vae.transforms.TabularTransform`.

    Parameters
    ----------
    input_dim:
        Number of input columns.
    numeric_columns:
        Indices of the numeric (unit-interval) columns.
    categorical_blocks:
        ``(start, stop)`` ranges of the categorical one-hot blocks.
    latent_dim:
        Dimensionality of the latent Gaussian.
    hidden:
        Hidden-layer widths shared by encoder and decoder.
    beta:
        Weight of the KL term.
    numeric_sigma:
        Standard deviation of the Gaussian reconstruction model for numeric
        columns (smaller = sharper reconstructions).
    seed:
        Seed for weight initialisation, the reparameterisation noise and
        mini-batch shuffling.
    """

    def __init__(
        self,
        input_dim: int,
        numeric_columns: Sequence[int],
        categorical_blocks: Sequence[Tuple[int, int]],
        latent_dim: int = 8,
        hidden: Sequence[int] = (64, 64),
        beta: float = 1.0,
        numeric_sigma: float = 0.15,
        seed: int = 0,
    ):
        if input_dim < 1 or latent_dim < 1:
            raise ValueError("dimensions must be positive")
        if numeric_sigma <= 0:
            raise ValueError("numeric_sigma must be positive")
        self.input_dim = int(input_dim)
        self.latent_dim = int(latent_dim)
        self.numeric_columns = list(numeric_columns)
        self.categorical_blocks = [tuple(b) for b in categorical_blocks]
        self.beta = float(beta)
        self.numeric_sigma = float(numeric_sigma)
        self.rng = np.random.default_rng(seed)

        self.encoder = MLP.build(input_dim, hidden, hidden[-1], rng=self.rng)
        self.mu_head = Dense(hidden[-1], latent_dim, rng=self.rng)
        self.logvar_head = Dense(hidden[-1], latent_dim, rng=self.rng)
        self.decoder = MLP.build(latent_dim, hidden, input_dim, rng=self.rng)
        self.fitted = False
        self.trace: Optional[TrainingTrace] = None

    # -------------------------------------------------------------- internals
    def _all_parameters(self):
        return (
            self.encoder.parameters()
            + self.mu_head.parameters()
            + self.logvar_head.parameters()
            + self.decoder.parameters()
        )

    def _zero_grad(self) -> None:
        for _, grad in self._all_parameters():
            grad[...] = 0.0

    def _decode_activations(self, logits: np.ndarray) -> np.ndarray:
        """Apply sigmoid to numeric columns and softmax to categorical blocks."""
        out = np.empty_like(logits)
        if self.numeric_columns:
            cols = self.numeric_columns
            out[:, cols] = _sigmoid(logits[:, cols])
        for start, stop in self.categorical_blocks:
            out[:, start:stop] = _softmax(logits[:, start:stop])
        return out

    def _loss_and_grad(self, X: np.ndarray) -> Tuple[float, float, np.ndarray, np.ndarray, dict]:
        """Forward pass returning losses and the gradients wrt decoder logits and latent stats."""
        n = X.shape[0]
        h = self.encoder.forward(X)
        mu = self.mu_head.forward(h)
        logvar = np.clip(self.logvar_head.forward(h), -10.0, 10.0)
        eps = self.rng.standard_normal(mu.shape)
        std = np.exp(0.5 * logvar)
        z = mu + eps * std

        logits = self.decoder.forward(z)
        recon = self._decode_activations(logits)

        # ---------------------------------------------------------- losses
        recon_loss = 0.0
        grad_logits = np.zeros_like(logits)
        if self.numeric_columns:
            cols = self.numeric_columns
            diff = recon[:, cols] - X[:, cols]
            recon_loss += float(0.5 * np.sum((diff / self.numeric_sigma) ** 2)) / n
            # d/dlogit of 0.5*((sigmoid(l)-x)/s)^2 = (sigmoid-x)/s^2 * sigmoid'
            grad_logits[:, cols] = (
                diff / (self.numeric_sigma**2) * recon[:, cols] * (1.0 - recon[:, cols])
            ) / n
        for start, stop in self.categorical_blocks:
            probs = recon[:, start:stop]
            target = X[:, start:stop]
            recon_loss += float(-np.sum(target * np.log(np.clip(probs, 1e-12, None)))) / n
            grad_logits[:, start:stop] = (probs - target) / n

        kl = float(-0.5 * np.sum(1.0 + logvar - mu**2 - np.exp(logvar))) / n
        return recon_loss, kl, grad_logits, z, {
            "mu": mu,
            "logvar": logvar,
            "eps": eps,
            "std": std,
            "n": n,
        }

    # -------------------------------------------------------------------- fit
    def fit(
        self,
        X: np.ndarray,
        epochs: int = 300,
        batch_size: int = 64,
        lr: float = 1e-3,
    ) -> TrainingTrace:
        """Train the VAE on the transformed rows ``X``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.input_dim:
            raise ValueError(f"expected {self.input_dim} columns, got {X.shape[1]}")
        if X.shape[0] < 1:
            raise ValueError("cannot train on an empty dataset")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        optimizer = Adam(self._all_parameters(), lr=lr)
        n = X.shape[0]
        batch_size = max(1, min(batch_size, n))
        trace = TrainingTrace(loss=[], reconstruction=[], kl=[])

        for _ in range(epochs):
            order = self.rng.permutation(n)
            epoch_recon, epoch_kl, batches = 0.0, 0.0, 0
            for start in range(0, n, batch_size):
                batch = X[order[start : start + batch_size]]
                self._zero_grad()
                recon_loss, kl, grad_logits, z, cache = self._loss_and_grad(batch)

                # Backward through the decoder to the latent sample.
                grad_z = self.decoder.backward(grad_logits)
                # Reparameterisation: z = mu + eps * exp(0.5*logvar)
                mu, logvar = cache["mu"], cache["logvar"]
                eps, std, nb = cache["eps"], cache["std"], cache["n"]
                grad_mu = grad_z + self.beta * mu / nb
                grad_logvar = (
                    grad_z * eps * 0.5 * std
                    + self.beta * 0.5 * (np.exp(logvar) - 1.0) / nb
                )
                grad_h = self.mu_head.backward(grad_mu) + self.logvar_head.backward(
                    grad_logvar
                )
                self.encoder.backward(grad_h)
                optimizer.step()

                epoch_recon += recon_loss
                epoch_kl += kl
                batches += 1
            trace.reconstruction.append(epoch_recon / batches)
            trace.kl.append(epoch_kl / batches)
            trace.loss.append(trace.reconstruction[-1] + self.beta * trace.kl[-1])

        self.fitted = True
        self.trace = trace
        return trace

    # ----------------------------------------------------------------- sample
    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``n`` rows from the learned distribution (decoded activations)."""
        if not self.fitted:
            raise RuntimeError("the VAE has not been fitted")
        if n < 1:
            raise ValueError("n must be >= 1")
        rng = rng or self.rng
        z = rng.standard_normal((n, self.latent_dim))
        logits = self.decoder.forward(z)
        return self._decode_activations(logits)

    def reconstruct(self, X: np.ndarray) -> np.ndarray:
        """Encode-decode ``X`` using the latent mean (no sampling noise)."""
        if not self.fitted:
            raise RuntimeError("the VAE has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        h = self.encoder.forward(X)
        mu = self.mu_head.forward(h)
        logits = self.decoder.forward(mu)
        return self._decode_activations(logits)

    def loss_on(self, X: np.ndarray) -> float:
        """Total loss (reconstruction + β·KL) on ``X`` without training."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        recon_loss, kl, _, _, _ = self._loss_and_grad(X)
        return recon_loss + self.beta * kl
