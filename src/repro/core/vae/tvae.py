"""The tabular variational autoencoder.

Architecture (following the TVAE of Xu et al., scaled to the size of the
autotuning histories):

* encoder: MLP ``input → hidden → hidden``, then two linear heads producing
  the latent mean ``µ`` and log-variance ``log σ²``;
* latent space: diagonal Gaussian with the reparameterisation trick;
* decoder: MLP ``latent → hidden → hidden → input``; numeric columns go
  through a sigmoid (they live in ``[0, 1]`` after the tabular transform) and
  are scored with a Gaussian reconstruction loss, categorical blocks go
  through a softmax and are scored with cross-entropy;
* loss: reconstruction + β · KL(q(z|x) ‖ N(0, I)), optimised with Adam.

Everything — forward pass, backward pass, training loop, sampling — is
implemented with NumPy; the gradients are verified against finite differences
in the test suite.

Two training entry points exist:

* :meth:`TabularVAE.fit` — one model, the reference training loop (with
  preallocated per-epoch batch buffers);
* :class:`VAEFleet` — ``K`` structurally identical models trained in fused
  lock-step epochs over stacked ``(K, batch, dim)`` activations, one batched
  contraction per layer.  Every member's weights, training trace and RNG
  state end up **bitwise identical** to ``K`` sequential
  :meth:`TabularVAE.fit` calls with the same seeds (asserted by the test
  suite and by ``benchmarks/bench_vae_fleet.py``); the fleet only changes
  wall-clock time.  ``VAEFleet.fit(..., fused=False)`` is the sequential
  escape hatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.vae.layers import Dense, DenseFleet, MLP, MLPFleet
from repro.core.vae.optim import Adam, AdamFleet

__all__ = ["TabularVAE", "TrainingTrace", "VAEFleet", "vae_fleet_key"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _slice_sums(arr: np.ndarray) -> np.ndarray:
    """Per-leading-slice totals of a stacked array, one ``np.sum`` per slice.

    The trace terms must reduce each member's slice exactly as the solo fit
    reduces its 2-D array.  Full reductions traverse *memory* order, and the
    fancy-indexed loss operands carry an advanced-axis-outermost layout that
    ``np.sum(arr[k])`` preserves — whereas clever stacked alternatives
    (``arr.sum(axis=(1, 2))``, ``arr.reshape(K, -1).sum(axis=1)``) re-block
    or re-copy the reduction and drift by an ulp.  Per-slice sums keep the
    fleet traces bitwise identical to sequential fits.
    """
    return np.asarray([float(np.sum(arr[k])) for k in range(arr.shape[0])])


def _softmax(x: np.ndarray) -> np.ndarray:
    # Normalise along the last axis so the same kernel serves both the solo
    # (batch, block) and the fleet-stacked (K, batch, block) activations;
    # per-row arithmetic is unchanged either way.
    shifted = x - x.max(axis=-1, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=-1, keepdims=True)


@dataclass
class TrainingTrace:
    """Per-epoch training diagnostics."""

    loss: List[float]
    reconstruction: List[float]
    kl: List[float]

    @property
    def final_loss(self) -> float:
        """Loss of the last epoch (inf if training never ran)."""
        return self.loss[-1] if self.loss else float("inf")


class TabularVAE:
    """A VAE over tabular rows produced by
    :class:`~repro.core.vae.transforms.TabularTransform`.

    Parameters
    ----------
    input_dim:
        Number of input columns.
    numeric_columns:
        Indices of the numeric (unit-interval) columns.
    categorical_blocks:
        ``(start, stop)`` ranges of the categorical one-hot blocks.
    latent_dim:
        Dimensionality of the latent Gaussian.
    hidden:
        Hidden-layer widths shared by encoder and decoder.
    beta:
        Weight of the KL term.
    numeric_sigma:
        Standard deviation of the Gaussian reconstruction model for numeric
        columns (smaller = sharper reconstructions).
    seed:
        Seed for weight initialisation, the reparameterisation noise and
        mini-batch shuffling.
    """

    def __init__(
        self,
        input_dim: int,
        numeric_columns: Sequence[int],
        categorical_blocks: Sequence[Tuple[int, int]],
        latent_dim: int = 8,
        hidden: Sequence[int] = (64, 64),
        beta: float = 1.0,
        numeric_sigma: float = 0.15,
        seed: int = 0,
    ):
        if input_dim < 1 or latent_dim < 1:
            raise ValueError("dimensions must be positive")
        if numeric_sigma <= 0:
            raise ValueError("numeric_sigma must be positive")
        self.input_dim = int(input_dim)
        self.latent_dim = int(latent_dim)
        self.numeric_columns = list(numeric_columns)
        self.categorical_blocks = [tuple(b) for b in categorical_blocks]
        self.beta = float(beta)
        self.numeric_sigma = float(numeric_sigma)
        self.rng = np.random.default_rng(seed)

        self.encoder = MLP.build(input_dim, hidden, hidden[-1], rng=self.rng)
        self.mu_head = Dense(hidden[-1], latent_dim, rng=self.rng)
        self.logvar_head = Dense(hidden[-1], latent_dim, rng=self.rng)
        self.decoder = MLP.build(latent_dim, hidden, input_dim, rng=self.rng)
        self.fitted = False
        self.trace: Optional[TrainingTrace] = None

    # -------------------------------------------------------------- internals
    def _all_parameters(self):
        return (
            self.encoder.parameters()
            + self.mu_head.parameters()
            + self.logvar_head.parameters()
            + self.decoder.parameters()
        )

    def _zero_grad(self) -> None:
        for _, grad in self._all_parameters():
            grad[...] = 0.0

    def _decode_activations(self, logits: np.ndarray) -> np.ndarray:
        """Apply sigmoid to numeric columns and softmax to categorical blocks."""
        out = np.empty_like(logits)
        if self.numeric_columns:
            cols = self.numeric_columns
            out[:, cols] = _sigmoid(logits[:, cols])
        for start, stop in self.categorical_blocks:
            out[:, start:stop] = _softmax(logits[:, start:stop])
        return out

    def _loss_and_grad(self, X: np.ndarray) -> Tuple[float, float, np.ndarray, np.ndarray, dict]:
        """Forward pass returning losses and the gradients wrt decoder logits and latent stats."""
        n = X.shape[0]
        h = self.encoder.forward(X)
        mu = self.mu_head.forward(h)
        logvar = np.clip(self.logvar_head.forward(h), -10.0, 10.0)
        eps = self.rng.standard_normal(mu.shape)
        std = np.exp(0.5 * logvar)
        z = mu + eps * std

        logits = self.decoder.forward(z)
        recon = self._decode_activations(logits)

        # ---------------------------------------------------------- losses
        recon_loss = 0.0
        grad_logits = np.zeros_like(logits)
        if self.numeric_columns:
            cols = self.numeric_columns
            diff = recon[:, cols] - X[:, cols]
            recon_loss += float(0.5 * np.sum((diff / self.numeric_sigma) ** 2)) / n
            # d/dlogit of 0.5*((sigmoid(l)-x)/s)^2 = (sigmoid-x)/s^2 * sigmoid'
            grad_logits[:, cols] = (
                diff / (self.numeric_sigma**2) * recon[:, cols] * (1.0 - recon[:, cols])
            ) / n
        for start, stop in self.categorical_blocks:
            probs = recon[:, start:stop]
            target = X[:, start:stop]
            recon_loss += float(-np.sum(target * np.log(np.clip(probs, 1e-12, None)))) / n
            grad_logits[:, start:stop] = (probs - target) / n

        kl = float(-0.5 * np.sum(1.0 + logvar - mu**2 - np.exp(logvar))) / n
        return recon_loss, kl, grad_logits, z, {
            "mu": mu,
            "logvar": logvar,
            "eps": eps,
            "std": std,
            "n": n,
        }

    # -------------------------------------------------------------------- fit
    def fit(
        self,
        X: np.ndarray,
        epochs: int = 300,
        batch_size: int = 64,
        lr: float = 1e-3,
    ) -> TrainingTrace:
        """Train the VAE on the transformed rows ``X``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.input_dim:
            raise ValueError(f"expected {self.input_dim} columns, got {X.shape[1]}")
        if X.shape[0] < 1:
            raise ValueError("cannot train on an empty dataset")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        optimizer = Adam(self._all_parameters(), lr=lr)
        n = X.shape[0]
        batch_size = max(1, min(batch_size, n))
        trace = TrainingTrace(loss=[], reconstruction=[], kl=[])
        # One gather buffer for the whole fit: each minibatch is copied into
        # it instead of fancy-indexing a fresh array per step (values are
        # identical; only the per-minibatch allocation disappears).
        batch_buf = np.empty((batch_size, X.shape[1]), dtype=float)

        for _ in range(epochs):
            order = self.rng.permutation(n)
            epoch_recon, epoch_kl, batches = 0.0, 0.0, 0
            for start in range(0, n, batch_size):
                rows = min(batch_size, n - start)
                batch = batch_buf[:rows]
                np.take(X, order[start : start + rows], axis=0, out=batch)
                self._zero_grad()
                recon_loss, kl, grad_logits, z, cache = self._loss_and_grad(batch)

                # Backward through the decoder to the latent sample.
                grad_z = self.decoder.backward(grad_logits)
                # Reparameterisation: z = mu + eps * exp(0.5*logvar)
                mu, logvar = cache["mu"], cache["logvar"]
                eps, std, nb = cache["eps"], cache["std"], cache["n"]
                grad_mu = grad_z + self.beta * mu / nb
                grad_logvar = (
                    grad_z * eps * 0.5 * std
                    + self.beta * 0.5 * (np.exp(logvar) - 1.0) / nb
                )
                grad_h = self.mu_head.backward(grad_mu) + self.logvar_head.backward(
                    grad_logvar
                )
                self.encoder.backward(grad_h)
                optimizer.step()

                epoch_recon += recon_loss
                epoch_kl += kl
                batches += 1
            trace.reconstruction.append(epoch_recon / batches)
            trace.kl.append(epoch_kl / batches)
            trace.loss.append(trace.reconstruction[-1] + self.beta * trace.kl[-1])

        self.fitted = True
        self.trace = trace
        return trace

    # ----------------------------------------------------------------- sample
    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``n`` rows from the learned distribution (decoded activations)."""
        if not self.fitted:
            raise RuntimeError("the VAE has not been fitted")
        if n < 1:
            raise ValueError("n must be >= 1")
        rng = rng or self.rng
        z = rng.standard_normal((n, self.latent_dim))
        logits = self.decoder.forward(z)
        return self._decode_activations(logits)

    def reconstruct(self, X: np.ndarray) -> np.ndarray:
        """Encode-decode ``X`` using the latent mean (no sampling noise)."""
        if not self.fitted:
            raise RuntimeError("the VAE has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        h = self.encoder.forward(X)
        mu = self.mu_head.forward(h)
        logits = self.decoder.forward(mu)
        return self._decode_activations(logits)

    def loss_on(self, X: np.ndarray) -> float:
        """Total loss (reconstruction + β·KL) on ``X`` without training."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        recon_loss, kl, _, _, _ = self._loss_and_grad(X)
        return recon_loss + self.beta * kl


# -------------------------------------------------------------------- fleets
def vae_fleet_key(
    vae: TabularVAE,
    n_rows: int,
    epochs: int,
    batch_size: int,
    lr: float = 1e-3,
) -> Tuple:
    """The training configuration a fused :class:`VAEFleet` pass must share.

    Fleet members stack their activations, so they need identical network
    structure, loss layout and per-epoch batch schedule.  Batch drivers
    (:class:`~repro.service.runner.CampaignRunner`) group due VAE refits by
    this key; :class:`VAEFleet` itself re-validates and rejects mixed fleets,
    so the two can never silently drift apart.
    """
    return (
        vae.input_dim,
        vae.latent_dim,
        tuple(layer.W.shape for layer in vae.encoder.layers if isinstance(layer, Dense)),
        tuple(layer.W.shape for layer in vae.decoder.layers if isinstance(layer, Dense)),
        tuple(type(layer).__name__ for layer in vae.encoder.layers),
        tuple(type(layer).__name__ for layer in vae.decoder.layers),
        tuple(vae.numeric_columns),
        tuple(vae.categorical_blocks),
        vae.beta,
        vae.numeric_sigma,
        int(n_rows),
        int(epochs),
        max(1, min(int(batch_size), int(n_rows))),
        float(lr),
    )


class VAEFleet:
    """Train ``K`` independent :class:`TabularVAE`\\ s in fused lock-step epochs.

    The members' encoder/decoder stacks are fused into
    :class:`~repro.core.vae.layers.MLPFleet`\\ s (one stacked ``(K, in, out)``
    contraction per layer per step) and optimised by one
    :class:`~repro.core.vae.optim.AdamFleet`; per-member RNG draws (epoch
    permutations, reparameterisation noise) come from each member's own
    generator in the member's own order.  Every member therefore finishes
    with weights, :class:`TrainingTrace` and RNG state bitwise identical to a
    sequential ``member.fit(...)`` — the fleet only amortises the Python and
    NumPy dispatch overhead of the small per-layer operations across ``K``
    models.

    Members must be structurally identical (architecture, loss layout) and
    train on datasets of equal shape with the same epochs/batch-size/learning
    rate — group heterogeneous refits with :func:`vae_fleet_key` first.

    Parameters
    ----------
    members:
        The (distinct, unfitted or refittable) member VAEs.
    """

    def __init__(self, members: Sequence[TabularVAE]):
        if not members:
            raise ValueError("need at least one member VAE")
        if len({id(m) for m in members}) != len(members):
            raise ValueError("each VAE may appear only once per fleet")
        self.members = list(members)
        first = self.members[0]
        for member in self.members[1:]:
            if (
                member.input_dim != first.input_dim
                or member.latent_dim != first.latent_dim
                or member.numeric_columns != first.numeric_columns
                or member.categorical_blocks != first.categorical_blocks
                or member.beta != first.beta
                or member.numeric_sigma != first.numeric_sigma
            ):
                raise ValueError("incompatible fleet member: architectures and loss layouts must match")

    @property
    def fleet_size(self) -> int:
        """Number of member VAEs."""
        return len(self.members)

    # -------------------------------------------------------------------- fit
    def fit(
        self,
        datasets: Sequence[np.ndarray],
        epochs: int = 300,
        batch_size: int = 64,
        lr: float = 1e-3,
        fused: bool = True,
    ) -> List[TrainingTrace]:
        """Train every member on its own dataset, in fused lock-step epochs.

        Parameters
        ----------
        datasets:
            One training matrix per member, all of equal shape
            ``(n, input_dim)``.
        epochs, batch_size, lr:
            Shared training budget (see :meth:`TabularVAE.fit`).
        fused:
            ``False`` is the sequential escape hatch: plain ``member.fit``
            calls, one after the other.  Both settings produce bitwise
            identical members; only wall-clock time differs.
        """
        if len(datasets) != len(self.members):
            raise ValueError(f"need {len(self.members)} datasets, got {len(datasets)}")
        mats = [np.atleast_2d(np.asarray(X, dtype=float)) for X in datasets]
        shape = mats[0].shape
        if any(X.shape != shape for X in mats):
            raise ValueError("fused fleet training requires datasets of equal shape")
        if shape[1] != self.members[0].input_dim:
            raise ValueError(f"expected {self.members[0].input_dim} columns, got {shape[1]}")
        if shape[0] < 1:
            raise ValueError("cannot train on an empty dataset")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not fused:
            return [
                member.fit(X, epochs=epochs, batch_size=batch_size, lr=lr)
                for member, X in zip(self.members, mats)
            ]
        return self._fit_fused(mats, epochs=epochs, batch_size=batch_size, lr=lr)

    def _fit_fused(
        self, mats: List[np.ndarray], epochs: int, batch_size: int, lr: float
    ) -> List[TrainingTrace]:
        members = self.members
        K = len(members)
        n, dim = mats[0].shape
        latent = members[0].latent_dim
        batch_size = max(1, min(batch_size, n))
        numeric = members[0].numeric_columns
        blocks = members[0].categorical_blocks
        beta = members[0].beta
        sigma = members[0].numeric_sigma

        encoder = MLPFleet.from_members([m.encoder for m in members])
        mu_head = DenseFleet.from_members([m.mu_head for m in members])
        logvar_head = DenseFleet.from_members([m.logvar_head for m in members])
        decoder = MLPFleet.from_members([m.decoder for m in members])
        params = (
            encoder.parameters()
            + mu_head.parameters()
            + logvar_head.parameters()
            + decoder.parameters()
        )
        optimizer = AdamFleet(params, fleet_size=K, lr=lr)
        traces = [TrainingTrace(loss=[], reconstruction=[], kl=[]) for _ in members]

        # Preallocated per-step buffers (the fleet analogue of fit's gather
        # buffer): the stacked minibatch and the reparameterisation noise.
        batch_buf = np.empty((K, batch_size, dim), dtype=float)
        eps_buf = np.empty((K, batch_size, latent), dtype=float)

        for _ in range(epochs):
            # Per-member draws in each member's own stream order (permutation
            # first, then one noise draw per minibatch) keep the generators in
            # lock step with a sequential member.fit.
            orders = [member.rng.permutation(n) for member in members]
            epoch_recon = np.zeros(K)
            epoch_kl = np.zeros(K)
            batches = 0
            for start in range(0, n, batch_size):
                rows = min(batch_size, n - start)
                xb = batch_buf[:, :rows, :]
                eps = eps_buf[:, :rows, :]
                for k, member in enumerate(members):
                    np.take(mats[k], orders[k][start : start + rows], axis=0, out=xb[k])
                for k, member in enumerate(members):
                    eps[k] = member.rng.standard_normal((rows, latent))

                for _, grad in params:
                    grad[...] = 0.0
                h = encoder.forward(xb)
                mu = mu_head.forward(h)
                logvar = np.clip(logvar_head.forward(h), -10.0, 10.0)
                std = np.exp(0.5 * logvar)
                z = mu + eps * std
                logits = decoder.forward(z)

                # Per-batch loss scalars accumulate member-locally first and
                # join the epoch totals once, matching the float addition
                # order of the solo fit.  The per-member reductions run as one
                # trailing-axes sum per term: NumPy reduces each leading slice
                # over the same contiguous layout a solo fit sums, so the
                # traces stay bit-identical.
                batch_recon = np.zeros(K)
                grad_logits = np.zeros_like(logits)
                if numeric:
                    rec_num = _sigmoid(logits[:, :, numeric])
                    diff = rec_num - xb[:, :, numeric]
                    grad_logits[:, :, numeric] = (
                        diff / (sigma**2) * rec_num * (1.0 - rec_num)
                    ) / rows
                    batch_recon += (0.5 * _slice_sums((diff / sigma) ** 2)) / rows
                for b_start, b_stop in blocks:
                    probs = _softmax(logits[:, :, b_start:b_stop])
                    target = xb[:, :, b_start:b_stop]
                    grad_logits[:, :, b_start:b_stop] = (probs - target) / rows
                    logp = np.log(np.clip(probs, 1e-12, None))
                    batch_recon += -_slice_sums(target * logp) / rows
                kl_terms = 1.0 + logvar - mu**2 - np.exp(logvar)
                epoch_recon += batch_recon
                epoch_kl += (-0.5 * _slice_sums(kl_terms)) / rows

                grad_z = decoder.backward(grad_logits)
                grad_mu = grad_z + beta * mu / rows
                grad_logvar = (
                    grad_z * eps * 0.5 * std
                    + beta * 0.5 * (np.exp(logvar) - 1.0) / rows
                )
                grad_h = mu_head.backward(grad_mu) + logvar_head.backward(grad_logvar)
                encoder.backward(grad_h)
                optimizer.step()
                batches += 1
            for k, trace in enumerate(traces):
                trace.reconstruction.append(float(epoch_recon[k]) / batches)
                trace.kl.append(float(epoch_kl[k]) / batches)
                trace.loss.append(trace.reconstruction[-1] + beta * trace.kl[-1])

        encoder.write_back([m.encoder for m in members])
        mu_head.write_back([m.mu_head for m in members])
        logvar_head.write_back([m.logvar_head for m in members])
        decoder.write_back([m.decoder for m in members])
        for member, trace in zip(members, traces):
            member.fitted = True
            member.trace = trace
        return traces
