"""Tabular transform between configurations and the VAE's numeric inputs.

The TVAE of Xu et al. handles mixed tabular data by transforming each column
into a numeric representation before training.  Here the transform is driven
by the :class:`~repro.core.space.SearchSpace` that produced the
configurations:

* integer, real and ordinal parameters map to a single column in ``[0, 1]``
  using the parameter's own unit transform (which already accounts for
  log-uniform scaling — the analogue of TVAE's mode-specific normalisation
  for our bounded parameters);
* categorical parameters map to a one-hot block.

Decoding inverts the mapping: numeric columns go through
``Parameter.from_unit`` (clipped to ``[0, 1]``), categorical blocks are
interpreted as probability vectors from which a category is sampled (or the
arg-max taken).

Both directions are columnar on the hot path: :meth:`TabularTransform.encode_columns`
maps per-parameter value columns (a :class:`~repro.core.space.ColumnBatch` or
a plain ``{name: column}`` mapping, e.g. straight from
:meth:`~repro.core.history.SearchHistory.top_quantile_columns`) into the
design matrix without materialising row dicts, and
:meth:`TabularTransform.decode_columns` turns VAE outputs back into a
columnar batch.  The row-major :meth:`TabularTransform.encode` /
:meth:`TabularTransform.decode` are kept as the bit-identical reference pair
(property-tested against the column path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.space import (
    CategoricalParameter,
    ColumnBatch,
    Configuration,
    Parameter,
    SearchSpace,
)

__all__ = ["ColumnSpec", "TabularTransform"]


@dataclass(frozen=True)
class ColumnSpec:
    """Layout of one parameter inside the transformed matrix."""

    parameter: Parameter
    start: int
    width: int
    is_categorical: bool

    @property
    def stop(self) -> int:
        """End column (exclusive) of this parameter's block."""
        return self.start + self.width


class TabularTransform:
    """Bidirectional mapping between configurations and VAE input rows.

    Parameters
    ----------
    space:
        The search space defining the columns.
    """

    def __init__(self, space: SearchSpace):
        self.space = space
        self._columns: List[ColumnSpec] = []
        offset = 0
        for param in space:
            if isinstance(param, CategoricalParameter):
                width = len(param.categories)
                self._columns.append(ColumnSpec(param, offset, width, True))
            else:
                width = 1
                self._columns.append(ColumnSpec(param, offset, width, False))
            offset += width
        self._dim = offset

    # ------------------------------------------------------------- properties
    @property
    def dimension(self) -> int:
        """Number of columns of the transformed representation."""
        return self._dim

    @property
    def columns(self) -> Tuple[ColumnSpec, ...]:
        """Per-parameter column layout."""
        return tuple(self._columns)

    @property
    def numeric_columns(self) -> List[int]:
        """Indices of the numeric (non-categorical) columns."""
        return [c.start for c in self._columns if not c.is_categorical]

    @property
    def categorical_blocks(self) -> List[Tuple[int, int]]:
        """``(start, stop)`` ranges of the categorical one-hot blocks."""
        return [(c.start, c.stop) for c in self._columns if c.is_categorical]

    # ----------------------------------------------------------------- encode
    def encode(self, configurations: Sequence[Configuration]) -> np.ndarray:
        """Transform row-major configurations into the numeric matrix.

        This is the reference row path: per-parameter value lists are pulled
        out of the configuration dicts and run through the same column codecs
        as :meth:`encode_columns` (which the property tests pin as
        bit-identical).
        """
        columns = {
            col.parameter.name: [config[col.parameter.name] for config in configurations]
            for col in self._columns
        }
        return self._encode_column_values(len(configurations), columns)

    def encode_columns(
        self, columns: Union["ColumnBatch", Mapping[str, Sequence]]
    ) -> np.ndarray:
        """Transform per-parameter value columns into the numeric matrix.

        The columnar hot path of the transfer-learning pipeline: columns come
        straight from :meth:`~repro.core.history.SearchHistory.top_quantile_columns`
        (or any :class:`~repro.core.space.ColumnBatch` / ``{name: column}``
        mapping covering the transform's parameters) and no per-row dict is
        ever built.  A batch of the transform's own space reuses its memoised
        categorical index columns.
        """
        if isinstance(columns, ColumnBatch):
            batch = columns
            n = len(batch)
            own_space = batch.space is self.space or batch.space == self.space
            X = np.zeros((n, self._dim), dtype=float)
            rows = np.arange(n)
            for col in self._columns:
                param = col.parameter
                if col.is_categorical:
                    if own_space:
                        idx = batch.discrete_indices(param)
                    else:
                        idx = param.indices_vec(batch.column(param.name))  # type: ignore[attr-defined]
                    X[rows, col.start + idx] = 1.0
                else:
                    X[:, col.start] = param.to_unit_vec(batch.column(param.name))
            return X
        lengths = {np.shape(np.asarray(columns[c.parameter.name]))[0] for c in self._columns}
        if len(lengths) != 1:
            raise ValueError(f"columns must have equal length, got {sorted(lengths)}")
        return self._encode_column_values(lengths.pop(), columns)

    def _encode_column_values(
        self, n: int, columns: Mapping[str, Sequence]
    ) -> np.ndarray:
        """Shared column-codec pass behind :meth:`encode`/:meth:`encode_columns`."""
        X = np.zeros((n, self._dim), dtype=float)
        rows = np.arange(n)
        for col in self._columns:
            values = columns[col.parameter.name]
            if col.is_categorical:
                idx = col.parameter.indices_vec(values)  # type: ignore[attr-defined]
                X[rows, col.start + idx] = 1.0
            else:
                X[:, col.start] = col.parameter.to_unit_vec(values)
        return X

    # ----------------------------------------------------------------- decode
    def decode_columns(
        self,
        X: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        sample_categories: bool = True,
    ) -> "ColumnBatch":
        """Transform VAE outputs into a columnar configuration batch.

        Parameters
        ----------
        X:
            Matrix of shape (n, dimension); numeric columns are interpreted as
            unit-interval positions, categorical blocks as (unnormalised)
            probability vectors.
        rng:
            Random generator used when sampling categories.
        sample_categories:
            If True, categories are sampled from the block probabilities
            (preserving the learned diversity) via one inverse-CDF draw per
            block; otherwise the arg-max is used.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self._dim:
            raise ValueError(f"expected {self._dim} columns, got {X.shape[1]}")
        if sample_categories and rng is None:
            rng = np.random.default_rng()
        n = X.shape[0]
        columns = {}
        for col in self._columns:
            param = col.parameter
            if col.is_categorical:
                block = np.clip(X[:, col.start : col.stop], 1e-12, None)
                probs = block / block.sum(axis=1, keepdims=True)
                if sample_categories:
                    cum = np.cumsum(probs, axis=1)
                    draws = rng.random(n)
                    idx = np.minimum(
                        (cum < draws[:, None]).sum(axis=1), probs.shape[1] - 1
                    )
                else:
                    idx = np.argmax(probs, axis=1)
                columns[param.name] = param._domain_array()[idx]  # type: ignore[attr-defined]
            else:
                u = np.clip(X[:, col.start], 0.0, 1.0)
                columns[param.name] = param.from_unit_vec(u)
        return ColumnBatch(self.space, columns)

    def decode(
        self,
        X: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        sample_categories: bool = True,
    ) -> List[Configuration]:
        """Transform VAE outputs back into row-major configurations.

        Materialising wrapper around :meth:`decode_columns`.
        """
        return self.decode_columns(
            X, rng=rng, sample_categories=sample_categories
        ).to_configurations()
