"""Asynchronous search loops: CBO (no transfer) and VAE-ABO (Algorithm 1).

:class:`CBOSearch` implements the distributed asynchronous Bayesian
optimization of §III-A on top of the virtual-clock evaluator:

1. sample one configuration per worker from the prior and submit them all
   (initialisation phase, Algorithm 1 l. 13-16);
2. whenever evaluations complete, record them, update the surrogate
   (``tell``), generate as many new configurations as there are idle workers
   (``ask`` with the constant-liar multi-point strategy) and submit them
   (optimization loop, l. 17-23);
3. stop when the search-time budget is exhausted (or an evaluation cap is
   reached) and return the best configuration plus the full history (l. 24-25).

The manager is charged a model-update and candidate-generation overhead in
search time (see :mod:`repro.core.overhead`), which is what differentiates RF
from GP in worker utilisation.

:class:`VAEABOSearch` is the paper's contribution: identical to
:class:`CBOSearch` except that the sampling prior is the informative prior
built from a previous run's history by :mod:`repro.core.transfer`
(top-q% selection → tabular VAE → joint sampling distribution, with
uninformative priors for parameters that are new in the current space).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.evaluator import AsyncVirtualEvaluator, DEFAULT_FAILURE_DURATION
from repro.core.history import SearchHistory
from repro.core.journal import CampaignJournal, JournalError
from repro.core.objective import Objective
from repro.core.optimizer import BayesianOptimizer
from repro.core.overhead import make_overhead_model
from repro.core.priors import JointPrior
from repro.core.space import Configuration, SearchSpace
from repro.core.surrogate.base import Surrogate
from repro.core.transfer import (
    PreparedTransferFit,
    TransferLearningPrior,
    prepare_transfer_prior,
)
from repro.core.vae.transforms import TabularTransform
from repro.core.vae.tvae import TabularVAE

__all__ = [
    "SearchResult",
    "CampaignExecution",
    "CBOSearch",
    "PreparedPriorRefresh",
    "VAEABOSearch",
]


@dataclass
class SearchResult:
    """Outcome of one autotuning run.

    Attributes
    ----------
    history:
        Full per-evaluation record.
    best_configuration:
        Best configuration found (None if every evaluation failed).
    best_runtime:
        Run time of the best configuration (NaN if none succeeded).
    best_objective:
        Objective of the best configuration (NaN if none succeeded).
    num_evaluations:
        Number of completed evaluations within the budget.
    worker_utilization:
        Fraction of worker time spent evaluating within the budget.
    search_time:
        The search-time budget that was used.
    num_workers:
        Number of workers of the run.
    busy_intervals:
        ``(submitted, completed)`` intervals of every evaluation started
        (including ones still running at the deadline) — used for the
        utilisation-over-time plot of Fig. 4 (f).
    """

    history: SearchHistory
    best_configuration: Optional[Configuration]
    best_runtime: float
    best_objective: float
    num_evaluations: int
    worker_utilization: float
    search_time: float
    num_workers: int
    busy_intervals: List[Tuple[float, float]] = field(default_factory=list)

    def best_runtime_at(self, time: float) -> float:
        """Best run time known after ``time`` seconds of search."""
        return self.history.best_runtime_at(time)


class CBOSearch:
    """Asynchronous (centralised) Bayesian optimization without transfer.

    Parameters
    ----------
    space:
        Search space of the tuning problem.
    run_function:
        Callable mapping a configuration to the measured run time in seconds
        (NaN for failures).
    num_workers:
        Number of parallel evaluation workers (128 in the paper).
    surrogate:
        Surrogate model or name: "RF" (default), "GP" or "RAND".
    prior:
        Sampling prior for candidate generation; defaults to the uniform /
        log-uniform per-parameter prior.
    kappa:
        UCB exploration weight (1.96 in the paper).
    num_candidates:
        Candidates sampled per ``ask``.
    n_initial_points:
        Evaluations before the surrogate is used.
    liar_strategy:
        Constant-liar flavour.
    overhead:
        Manager-overhead model ("analytic", "measured" or an instance).
    failure_duration:
        Worker time consumed by failed evaluations (600 s in the paper).
    objective:
        Objective transform (defaults to ``-log(runtime)``).
    incremental:
        Whether the optimizer caches the encoded history incrementally
        (default) or re-encodes it per interaction; see
        :class:`~repro.core.optimizer.BayesianOptimizer`.  Both settings
        produce identical searches — only real wall-clock time differs.
    score_shards, score_executor:
        Candidate-scoring sharding of the optimizer's ``ask`` (see
        :class:`~repro.core.optimizer.BayesianOptimizer`); any shard count
        produces identical searches.
    evaluator_factory:
        Optional callable ``(run_function, num_workers, failure_duration) →
        evaluator`` replacing the private
        :class:`~repro.core.evaluator.AsyncVirtualEvaluator` — e.g. a
        :class:`~repro.service.ServiceEvaluator` bound to a shared worker
        pool.  The evaluator must implement the same
        submit/collect/wait_any protocol.
    prior_refresh_interval:
        The continuous-retuning scenario: every this-many completed
        evaluations, refit a tabular VAE on the campaign's *own* best
        configurations and install it as the sampling prior (``None``, the
        default, disables refreshing).  Like the initial transfer-learning
        fit, the refit runs manager-side and is charged no virtual search
        time.  Multi-campaign drivers fuse the due refits of one tick into a
        single :class:`~repro.core.vae.tvae.VAEFleet` pass — bit-identical
        to refitting per campaign.
    prior_refresh_top_k:
        Number of best configurations the refreshed prior is trained on.  A
        *fixed* count (rather than a quantile) keeps the VAE training
        matrices of a whole campaign fleet the same shape, which is what
        makes the fused fleet refit possible.
    prior_refresh_epochs:
        VAE training epochs per refresh.
    prior_refresh_uniform_fraction:
        Uniform-exploration fraction of the refreshed prior.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        space: SearchSpace,
        run_function: Callable[[Configuration], float],
        num_workers: int = 128,
        surrogate: Union[str, Surrogate] = "RF",
        prior: Optional[JointPrior] = None,
        kappa: float = 1.96,
        num_candidates: int = 512,
        n_initial_points: int = 10,
        liar_strategy: str = "kernel_penalty",
        overhead: Union[str, object] = "analytic",
        failure_duration: float = DEFAULT_FAILURE_DURATION,
        objective: Optional[Objective] = None,
        random_sampling: bool = False,
        refit_interval: int = 1,
        incremental: bool = True,
        score_shards: int = 1,
        score_executor: Optional[object] = None,
        evaluator_factory: Optional[Callable] = None,
        prior_refresh_interval: Optional[int] = None,
        prior_refresh_top_k: int = 16,
        prior_refresh_epochs: int = 60,
        prior_refresh_uniform_fraction: float = 0.05,
        seed: int = 0,
    ):
        self.space = space
        self.run_function = run_function
        self.num_workers = int(num_workers)
        self.objective = objective or Objective()
        self.optimizer = BayesianOptimizer(
            space,
            surrogate=surrogate,
            prior=prior,
            kappa=kappa,
            num_candidates=num_candidates,
            n_initial_points=n_initial_points,
            liar_strategy=liar_strategy,
            random_sampling=random_sampling,
            refit_interval=refit_interval,
            incremental=incremental,
            score_shards=score_shards,
            score_executor=score_executor,
            objective=self.objective,
            seed=seed,
        )
        self.overhead = make_overhead_model(overhead)
        self.failure_duration = float(failure_duration)
        self.evaluator_factory = evaluator_factory
        if prior_refresh_interval is not None and prior_refresh_interval < 1:
            raise ValueError("prior_refresh_interval must be >= 1")
        if prior_refresh_top_k < 1:
            raise ValueError("prior_refresh_top_k must be >= 1")
        if prior_refresh_epochs < 1:
            raise ValueError("prior_refresh_epochs must be >= 1")
        self.prior_refresh_interval = prior_refresh_interval
        self.prior_refresh_top_k = int(prior_refresh_top_k)
        self.prior_refresh_epochs = int(prior_refresh_epochs)
        self.prior_refresh_uniform_fraction = float(prior_refresh_uniform_fraction)
        self.seed = int(seed)

    #: A transfer-VAE fit deferred at construction time (see
    #: :class:`VAEABOSearch` ``defer_transfer_fit``); ``None`` for plain
    #: searches and once the fit has run.  Fleet drivers fuse the pending
    #: fits of several searches through one VAEFleet pass before starting
    #: them; :meth:`complete_pending_transfer_fit` is the solo backstop.
    pending_transfer_fit: Optional["PreparedTransferFit"] = None

    def complete_pending_transfer_fit(self) -> None:
        """Train a still-pending transfer VAE solo (bit-identical backstop).

        Called when an execution starts, *before* the prior's first sample —
        an untrained VAE would otherwise silently fall back to top-batch
        resampling.  No-op when nothing is pending or a fleet pass already
        trained the VAE.
        """
        pending = self.pending_transfer_fit
        if pending is not None:
            pending.train()
            self.pending_transfer_fit = None

    # --------------------------------------------------------------------- run
    def run(
        self,
        max_time: float = 3600.0,
        max_evaluations: Optional[int] = None,
        initial_configurations: Optional[Sequence[Configuration]] = None,
        journal_dir: Optional[object] = None,
    ) -> SearchResult:
        """Execute the search for ``max_time`` seconds of search time.

        Parameters
        ----------
        max_time:
            Search-time budget (the paper uses 1 hour).
        max_evaluations:
            Optional cap on the number of completed evaluations.
        initial_configurations:
            Optional explicit initial batch (used by the framework comparison
            to give every method the same 10 initial samples).
        journal_dir:
            Optional directory for a crash-safe campaign journal (see
            :mod:`repro.core.journal`); a crashed run restarts from its last
            checkpoint via :meth:`resume` instead of from scratch.
        """
        execution = self.start(
            max_time=max_time,
            max_evaluations=max_evaluations,
            initial_configurations=initial_configurations,
            journal_dir=journal_dir,
        )
        while execution.advance():
            pass
        return execution.result()

    def start(
        self,
        max_time: float = 3600.0,
        max_evaluations: Optional[int] = None,
        initial_configurations: Optional[Sequence[Configuration]] = None,
        defer_initial_submit: bool = False,
        journal_dir: Optional[object] = None,
        journal_fsync: bool = True,
        checkpoint_interval: int = 1,
    ) -> "CampaignExecution":
        """Begin a search and return its stepping :class:`CampaignExecution`.

        ``run`` is ``start`` plus stepping to completion; multi-campaign
        drivers step several executions in lock-step instead.  With
        ``defer_initial_submit`` the initialisation batch is proposed but
        left pending (see :meth:`CampaignExecution.submit_prepared`), so a
        batch driver can evaluate all campaigns' initial batches in one pass.
        ``journal_dir`` enables the crash-safe campaign journal.
        """
        return CampaignExecution(
            self,
            max_time=max_time,
            max_evaluations=max_evaluations,
            initial_configurations=initial_configurations,
            defer_initial_submit=defer_initial_submit,
            journal_dir=journal_dir,
            journal_fsync=journal_fsync,
            checkpoint_interval=checkpoint_interval,
        )

    def resume(self, journal_dir) -> "CampaignExecution":
        """Resume a journaled campaign from its last checkpoint.

        The search must be freshly constructed with the same parameters as
        the crashed run (same space, seed, surrogate, workers) — the journal
        meta record is validated against it.  See
        :meth:`CampaignExecution.resume`.
        """
        return CampaignExecution.resume(self, journal_dir)

    def start_or_resume(
        self,
        journal_dir,
        max_time: float = 3600.0,
        max_evaluations: Optional[int] = None,
        initial_configurations: Optional[Sequence[Configuration]] = None,
        defer_initial_submit: bool = False,
        journal_fsync: bool = True,
        checkpoint_interval: int = 1,
    ) -> "CampaignExecution":
        """Create-or-attach on a journal directory (the registry's semantics).

        When ``journal_dir`` already holds a campaign journal the campaign
        is *resumed* from its last checkpoint (:meth:`resume` — bit-identical
        continuation, budgets come from the journal meta and the remaining
        arguments are ignored); otherwise a fresh journaled campaign is
        started there.  Either way the caller gets a live
        :class:`CampaignExecution` for the study name backing that
        directory.
        """
        if CampaignJournal.exists(journal_dir):
            return CampaignExecution.resume(
                self,
                journal_dir,
                journal_fsync=journal_fsync,
                checkpoint_interval=checkpoint_interval,
                defer_initial_submit=defer_initial_submit,
            )
        return self.start(
            max_time=max_time,
            max_evaluations=max_evaluations,
            initial_configurations=initial_configurations,
            defer_initial_submit=defer_initial_submit,
            journal_dir=journal_dir,
            journal_fsync=journal_fsync,
            checkpoint_interval=checkpoint_interval,
        )


@dataclass
class PreparedPriorRefresh:
    """One due prior refresh, between selection/encoding and VAE training.

    Attributes
    ----------
    vae:
        A fresh, unfitted VAE (deterministic per-refresh seed) awaiting
        training — solo or inside a fused fleet pass.
    design:
        The encoded top-``k`` training matrix (``k × transform.dimension``).
    epochs, batch_size:
        The training budget the fit must use.
    top_batch:
        The selected configurations as a columnar batch (becomes the new
        prior's resampling fallback and inspection record).
    """

    vae: TabularVAE
    design: "np.ndarray"
    epochs: int
    batch_size: int
    top_batch: object


class CampaignExecution:
    """One in-flight campaign: the stepping form of :meth:`CBOSearch.run`.

    The manager loop is decomposed into the phases a multi-campaign driver
    needs to interleave:

    * :meth:`collect` — advance the evaluator to the next completion event
      and record the finished evaluations;
    * :meth:`tell_collected` — feed them to the optimizer (refitting the
      surrogate) and charge the model-update overhead, or — for drivers that
      batch surrogate fits across campaigns — :meth:`ingest_collected` /
      :meth:`charge_tell` around an external fleet fit;
    * :meth:`refresh_prior_if_due` — the continuous-retuning scenario
      (``prior_refresh_interval``): refit the sampling prior's VAE on the
      campaign's own incumbents, or — for drivers that fuse the VAE refits
      of several campaigns into one
      :class:`~repro.core.vae.tvae.VAEFleet` pass —
      :meth:`prepare_prior_refresh` / :meth:`finish_prior_refresh` around
      the external fleet fit;
    * :meth:`ask_and_submit` — generate proposals for the idle workers,
      charge the candidate-generation overhead and submit.

    Stepping all phases in order (:meth:`advance`) reproduces the sequential
    search loop exactly — same evaluations, same clock, same history.
    """

    def __init__(
        self,
        search: "CBOSearch",
        max_time: float,
        max_evaluations: Optional[int] = None,
        initial_configurations: Optional[Sequence[Configuration]] = None,
        defer_initial_submit: bool = False,
        journal_dir: Optional[object] = None,
        journal_fsync: bool = True,
        checkpoint_interval: int = 1,
        _resume: bool = False,
    ):
        if max_time <= 0:
            raise ValueError("max_time must be positive")
        self.search = search
        # A transfer-VAE fit deferred at construction time must complete
        # before the prior's first sample (initial ask below, or the first
        # prepared ask of a resumed run).
        search.complete_pending_transfer_fit()
        self.optimizer = search.optimizer
        self.max_time = float(max_time)
        self.max_evaluations = max_evaluations
        if search.evaluator_factory is not None:
            self.evaluator = search.evaluator_factory(
                search.run_function, search.num_workers, search.failure_duration
            )
        else:
            self.evaluator = AsyncVirtualEvaluator(
                search.run_function,
                num_workers=search.num_workers,
                failure_duration=search.failure_duration,
            )
        self.history = SearchHistory(search.space, objective=search.objective)
        self.intervals: List[Tuple[float, float]] = []
        self.finished = False
        self._tell_configs: List[Configuration] = []
        self._tell_objectives: List[float] = []
        self._num_completed = 0
        self._pending_batch: Optional[List[Configuration]] = None
        self._prepared_ask = None
        self._ask_elapsed = 0.0
        self._evals_since_prior_refresh = 0
        self._prior_transform: Optional[TabularTransform] = None
        #: Number of prior refreshes performed so far (continuous retuning).
        self.num_prior_refreshes = 0
        #: Crash-safe campaign journal (None when journaling is disabled).
        self._journal: Optional[CampaignJournal] = None
        self._ticks_since_checkpoint = 0
        if journal_dir is not None:
            self._journal = CampaignJournal.create(
                journal_dir,
                search.space,
                fsync=journal_fsync,
                checkpoint_interval=checkpoint_interval,
            )
            self._journal.write_meta(
                {
                    "seed": search.seed,
                    "num_workers": search.num_workers,
                    "surrogate": type(self.optimizer.surrogate).__name__,
                    "max_time": self.max_time,
                    "max_evaluations": self.max_evaluations,
                }
            )
        if _resume:
            # resume() rebuilds the history, optimizer, prior and evaluator
            # state from the journal — the initial ask/submit already
            # happened in the crashed run and must not repeat.
            return

        # ----------------------------------------------------- initialisation
        if initial_configurations:
            first = [dict(c) for c in initial_configurations][: search.num_workers]
            if len(first) < search.num_workers:
                first.extend(self.optimizer.ask(search.num_workers - len(first)))
        else:
            first = self.optimizer.ask(search.num_workers)
        if defer_initial_submit:
            self._pending_batch = first
        else:
            self._submit(first)

    # ----------------------------------------------------------------- phases
    def collect(self) -> Optional[List[object]]:
        """Advance to the next completion event and record its evaluations.

        Returns the completed evaluations, or ``None`` when the campaign is
        over (budget exhausted, evaluation cap reached, or nothing pending).
        """
        if self.finished:
            return None
        if self._pending_batch is not None:
            # A deferred initialisation batch that no driver submitted —
            # submit it now rather than silently finishing with an empty run.
            self.submit_prepared()
        evaluator = self.evaluator
        if not evaluator.now < self.max_time:
            self.finished = True
            return None
        if self.max_evaluations is not None and len(self.history) >= self.max_evaluations:
            self.finished = True
            return None
        _, completed = evaluator.wait_any(self.max_time)
        if not completed:
            self.finished = True
            return None
        recorded = [
            self.history.record(
                ev.configuration,
                runtime=ev.runtime,
                submitted=ev.submitted,
                completed=ev.completed,
                worker=ev.worker,
            )
            for ev in completed
        ]
        # The recorded evaluations already hold the objective transform of
        # each runtime — feed those to the optimizer instead of re-deriving
        # them.
        self._tell_configs = [ev.configuration for ev in completed]
        self._tell_objectives = [rec.objective for rec in recorded]
        self._num_completed = len(completed)
        self._evals_since_prior_refresh += len(completed)
        return completed

    def tell_collected(self) -> None:
        """Feed the collected evaluations to the optimizer and charge overhead.

        Equivalent to ``optimizer.tell`` (ingest, then fit when due) with one
        addition: a due fit is noted in the campaign journal *before* it runs,
        capturing the surrogate RNG state a resume needs to replay it.
        """
        start = time.perf_counter()
        if self.optimizer.ingest(self._tell_configs, self._tell_objectives):
            self._note_fit_due()
            self.optimizer.fit_now()
        self.optimizer.last_tell_duration = time.perf_counter() - start
        self.charge_tell()

    def ingest_collected(self) -> bool:
        """Record the collected evaluations without fitting (fleet-fit path).

        Returns whether a surrogate fit is due; the driver performs it (solo
        or fleet) and then calls
        :meth:`~repro.core.optimizer.BayesianOptimizer.mark_fitted` before
        :meth:`charge_tell`.  The ingest time refreshes the optimizer's
        measured tell duration (an externally batched fit's time is shared
        across campaigns and not attributed to any one of them).  A due fit
        is noted in the campaign journal here — fleet fits consume the
        surrogate RNG bitwise-identically to solo fits, so the pre-fit
        capture covers both.
        """
        start = time.perf_counter()
        due = self.optimizer.ingest(self._tell_configs, self._tell_objectives)
        self.optimizer.last_tell_duration = time.perf_counter() - start
        if due:
            self._note_fit_due()
        return due

    def _note_fit_due(self) -> None:
        """Journal the surrogate fit about to run over the current history."""
        if self._journal is None:
            return
        rng = getattr(self.optimizer.surrogate, "_rng", None)
        self._journal.note_fit(
            self.optimizer.num_observations,
            None if rng is None else rng.bit_generator.state,
        )

    def charge_tell(self) -> None:
        """Charge the model-update overhead for the last collected batch."""
        evaluator = self.evaluator
        evaluator.advance_to(
            evaluator.now
            + self.search.overhead.tell_cost(self.optimizer, self._num_completed)
        )

    # ---------------------------------------------------------- prior refresh
    def prepare_prior_refresh(self) -> Optional["PreparedPriorRefresh"]:
        """The selection/encode half of a due prior refresh (fleet-fit seam).

        Returns ``None`` when refreshing is disabled, not yet due, or the
        history does not hold ``prior_refresh_top_k`` successes.  Otherwise
        the campaign's best configurations are selected and encoded as
        columns (no row dicts) and a fresh, unfitted
        :class:`~repro.core.vae.tvae.TabularVAE` is returned for the caller
        to train — solo (:meth:`refresh_prior_if_due`) or fused across
        campaigns in one :class:`~repro.core.vae.tvae.VAEFleet` pass —
        before :meth:`finish_prior_refresh` installs the new prior.
        """
        search = self.search
        interval = search.prior_refresh_interval
        if interval is None or self._evals_since_prior_refresh < interval:
            return None
        return self._build_prior_refresh(self.history)

    def _build_prior_refresh(
        self, history: SearchHistory
    ) -> Optional["PreparedPriorRefresh"]:
        """Select and encode a refresh's training set from ``history``.

        Factored out of :meth:`prepare_prior_refresh` so a journal resume can
        rebuild refresh ``k`` against the exact history prefix it originally
        saw (the due-interval check does not apply to a replay).
        """
        search = self.search
        top_batch = history.top_k_columns(search.prior_refresh_top_k)
        if len(top_batch) < search.prior_refresh_top_k:
            return None
        if self._prior_transform is None:
            self._prior_transform = TabularTransform(search.space)
        transform = self._prior_transform
        design = transform.encode_columns(top_batch)
        # A fresh VAE per refresh with a deterministic per-refresh seed: the
        # same campaign refitting for the same time produces the same model
        # whether it runs solo or inside a batched fleet.
        vae = TabularVAE(
            input_dim=transform.dimension,
            numeric_columns=transform.numeric_columns,
            categorical_blocks=transform.categorical_blocks,
            latent_dim=min(8, max(2, transform.dimension // 2)),
            hidden=(64, 64),
            seed=search.seed + 7919 * (self.num_prior_refreshes + 1),
        )
        return PreparedPriorRefresh(
            vae=vae,
            design=design,
            epochs=search.prior_refresh_epochs,
            batch_size=min(64, max(4, len(top_batch))),
            top_batch=top_batch,
        )

    def finish_prior_refresh(self, prepared: "PreparedPriorRefresh") -> None:
        """Install the refreshed (trained) VAE as the campaign's prior."""
        search = self.search
        self.optimizer.prior = TransferLearningPrior(
            space=search.space,
            vae=prepared.vae,
            transform=self._prior_transform,
            new_parameters=[],
            uniform_fraction=search.prior_refresh_uniform_fraction,
            top_configurations=prepared.top_batch.to_configurations(),
            top_batch=prepared.top_batch,
        )
        self.num_prior_refreshes += 1
        self._evals_since_prior_refresh = 0
        if self._journal is not None:
            self._journal.note_prior_refresh(len(self.history))

    def refresh_prior_if_due(self) -> bool:
        """Refit the sampling prior from the campaign's own incumbents.

        The solo path of the continuous-retuning scenario: prepare, train
        the VAE in place, install.  Like the initial transfer-learning fit,
        no virtual search time is charged — the refit is manager-side
        background work (a batched fleet refit's wall-clock is shared across
        campaigns anyway, mirroring the fleet surrogate-fit carve-out).
        """
        prepared = self.prepare_prior_refresh()
        if prepared is None:
            return False
        prepared.vae.fit(
            prepared.design, epochs=prepared.epochs, batch_size=prepared.batch_size
        )
        self.finish_prior_refresh(prepared)
        return True

    def ask_and_submit(self) -> None:
        """Propose for the idle workers, charge overhead and submit."""
        batch = self.prepare_submit()
        if batch is not None:
            self.submit_prepared()

    def prepare_submit(self) -> Optional[List[Configuration]]:
        """The ask half of :meth:`ask_and_submit`: propose and charge overhead.

        Returns the batch awaiting submission (``None`` when there is nothing
        to submit or the budget ran out).  Batch drivers evaluate several
        campaigns' pending batches in one pass and then call
        :meth:`submit_prepared` with the precomputed runtimes.
        """
        if self.begin_ask() is None:
            return None
        return self.finish_ask()

    def begin_ask(self) -> Optional["object"]:
        """Candidate generation for the idle workers, scores still pending.

        Returns the optimizer's
        :class:`~repro.core.optimizer.PreparedAsk` (``None`` when no workers
        are idle or the budget ran out).  Drivers that fuse candidate scoring
        across campaigns score the prepared pool externally and hand the
        results to :meth:`finish_ask`; drivers that also fuse candidate
        *generation* (the fleet ask) split this method into
        :meth:`begin_ask_request` and :meth:`complete_ask` /
        :meth:`accept_prepared_ask` instead.
        """
        n = self.begin_ask_request()
        if n is None:
            return None
        return self.complete_ask(n)

    def begin_ask_request(self) -> Optional[int]:
        """The eligibility half of :meth:`begin_ask`: how many proposals?

        Clears any pending batch/pool, applies the budget check, and returns
        the number of idle workers to propose for — ``None`` when the budget
        ran out or no workers are idle.  Fleet drivers group the non-``None``
        requests by search space and run one
        :func:`~repro.core.optimizer.prepare_ask_fleet` pass per group.
        """
        self._pending_batch = None
        self._prepared_ask = None
        evaluator = self.evaluator
        if evaluator.now >= self.max_time:
            self.finished = True
            return None
        num_idle = evaluator.num_idle
        if num_idle > 0:
            return num_idle
        return None

    def complete_ask(self, n: int) -> "object":
        """The solo generation half of :meth:`begin_ask`: prepare ``n``."""
        start = time.perf_counter()
        self._prepared_ask = self.optimizer.prepare_ask(n)
        self._ask_elapsed = time.perf_counter() - start
        return self._prepared_ask

    def accept_prepared_ask(self, prepared: "object") -> "object":
        """Install a pool generated externally by a fleet-ask pass.

        The fused pass's wall-clock is shared across campaigns and not
        attributed to any one member, so ``_ask_elapsed`` is zeroed — the
        same ``overhead="measured"`` carve-out the fused scoring path
        documents in :meth:`finish_ask`.  Virtual search time is unaffected.
        """
        self._prepared_ask = prepared
        self._ask_elapsed = 0.0
        return prepared

    def finish_ask(self, mean=None, std=None) -> Optional[List[Configuration]]:
        """Select the proposal batch (scoring it here unless scores are given)
        and charge the candidate-generation overhead."""
        prepared = self._prepared_ask
        if prepared is None:
            return None
        self._prepared_ask = None
        start = time.perf_counter()
        if prepared.proposals is not None:
            batch = prepared.proposals
        else:
            # finish_ask scores the pool itself (sharded path) when no fused
            # scores were provided and the pool wants them.
            batch = self.optimizer.finish_ask(prepared, mean, std)
        # Keep the measured-overhead signal alive under phase stepping: the
        # campaign's own prepare + score/select time stands in for what a
        # monolithic ask() would have measured (fused scoring time is shared
        # across campaigns and not attributed).
        self.optimizer.last_ask_duration = self._ask_elapsed + (
            time.perf_counter() - start
        )
        evaluator = self.evaluator
        evaluator.advance_to(
            evaluator.now + self.search.overhead.ask_cost(self.optimizer, len(batch))
        )
        if evaluator.now >= self.max_time:
            self.finished = True
            return None
        self._pending_batch = batch
        return batch

    def submit_prepared(self, runtimes: Optional[Sequence[float]] = None) -> None:
        """Submit the batch returned by :meth:`prepare_submit`."""
        if self._pending_batch is None:
            return
        self._submit(self._pending_batch, runtimes)
        self._pending_batch = None

    def advance(self) -> bool:
        """One full manager interaction; False once the campaign is over."""
        if self.collect() is None:
            self.maybe_checkpoint(force=True)
            return False
        self.tell_collected()
        self.refresh_prior_if_due()
        self.ask_and_submit()
        self.maybe_checkpoint()
        return True

    # --------------------------------------------------------------- ask/tell
    def next_suggestion(self) -> Optional[List[Configuration]]:
        """Advance to the next proposal batch without evaluating it (ask/tell).

        The client-driven form of :meth:`advance`: the returned
        configurations are *suggested* to an external client, which runs
        them itself and reports the measured runtimes back through
        :meth:`report_runtimes`.  Suggest is idempotent until reported — a
        batch already outstanding is returned unchanged — and ``None`` means
        the campaign is finished.  The campaign must have been started with
        ``defer_initial_submit=True`` (the registry does), otherwise the
        initial batch is evaluated in-process before the first suggestion.

        Crash safety: nothing is checkpointed *during* a suggestion — the
        journal advances only in :meth:`report_runtimes` — so a service that
        dies between suggest and report resumes at the previous report and
        deterministically re-derives the identical batch on its next
        suggest.
        """
        while self._pending_batch is None and not self.finished:
            if self.collect() is None:
                break
            self.tell_collected()
            self.refresh_prior_if_due()
            self.prepare_submit()
        if self._pending_batch is None:
            self.maybe_checkpoint(force=True)
            return None
        return self._pending_batch

    def report_runtimes(self, runtimes: Sequence[float]) -> None:
        """Record the client-measured runtimes of the last suggested batch."""
        if self._pending_batch is None:
            raise ValueError("no suggested batch is outstanding")
        if len(runtimes) != len(self._pending_batch):
            raise ValueError(
                f"got {len(runtimes)} runtimes for a suggested batch of "
                f"{len(self._pending_batch)} configurations"
            )
        self.submit_prepared([float(value) for value in runtimes])
        self.maybe_checkpoint()

    # ---------------------------------------------------------------- journal
    def maybe_checkpoint(self, force: bool = False) -> bool:
        """Journal new rows/intervals and commit a checkpoint when one is due.

        Called at the end of every tick (by :meth:`advance` and the
        multi-campaign runner); a no-op without a journal.  ``force`` commits
        regardless of the journal's ``checkpoint_interval`` (used for the
        final tick, so ``finished`` is durably recorded).  Returns whether a
        checkpoint was committed.
        """
        journal = self._journal
        if journal is None:
            return False
        self._ticks_since_checkpoint += 1
        if (
            not force
            and not self.finished
            and self._ticks_since_checkpoint < journal.checkpoint_interval
        ):
            return False
        journal.append_rows(self.history)
        journal.append_intervals(self.intervals)
        journal.checkpoint(
            {
                "evals_since_prior_refresh": self._evals_since_prior_refresh,
                "num_prior_refreshes": self.num_prior_refreshes,
                "num_completed": self._num_completed,
                "finished": self.finished,
                "optimizer_rng": self.optimizer.rng.bit_generator.state,
                "evaluator": self.evaluator.state_dict(),
            }
        )
        self._ticks_since_checkpoint = 0
        return True

    @classmethod
    def resume(
        cls,
        search: "CBOSearch",
        journal_dir,
        journal_fsync: bool = True,
        checkpoint_interval: int = 1,
        defer_initial_submit: bool = False,
    ) -> "CampaignExecution":
        """Reconstruct a crashed journaled campaign from its sidecar directory.

        ``defer_initial_submit`` only matters on the restart-from-scratch
        path (a journal with no checkpoint yet): ask/tell drivers pass True
        so the rebuilt initial batch is suggested to the client instead of
        evaluated in-process.

        ``search`` must be a *freshly constructed* search with the same
        parameters as the crashed run — the journal's meta record is
        validated against its space, seed, worker count and surrogate kind.
        The history is read back from the journal's column files (no
        evaluation is re-run), the optimizer state is replayed along the
        recorded fit and prior-refresh boundaries, and the evaluator resumes
        with its in-flight evaluations intact; continuing the returned
        execution is bit-identical to a run that never crashed.  A journal
        that crashed before its first checkpoint restarts from scratch
        (nothing durable was committed — the restart is deterministic).
        """
        meta = CampaignJournal.read_meta(journal_dir)
        CampaignJournal.validate_meta(
            meta,
            search.space,
            seed=search.seed,
            num_workers=search.num_workers,
            surrogate=type(search.optimizer.surrogate).__name__,
        )
        if search.optimizer.num_observations or search.optimizer.surrogate.fitted:
            raise JournalError(
                "resume requires a freshly constructed search (the optimizer "
                "has already observed evaluations)"
            )
        max_time = float(meta["max_time"])
        max_evaluations = meta.get("max_evaluations")
        checkpoint = CampaignJournal.read_checkpoint(journal_dir)
        if checkpoint is None:
            return cls(
                search,
                max_time=max_time,
                max_evaluations=max_evaluations,
                defer_initial_submit=defer_initial_submit,
                journal_dir=journal_dir,
                journal_fsync=journal_fsync,
                checkpoint_interval=checkpoint_interval,
            )
        execution = cls(
            search,
            max_time=max_time,
            max_evaluations=max_evaluations,
            _resume=True,
        )
        history, intervals = CampaignJournal.read_data(
            journal_dir, search.space, checkpoint, objective=search.objective
        )
        execution.history = history
        execution.intervals = intervals
        execution._replay(checkpoint)
        execution._journal = CampaignJournal.attach(
            journal_dir,
            search.space,
            fsync=journal_fsync,
            checkpoint_interval=checkpoint_interval,
        )
        return execution

    def _replay(self, checkpoint: dict) -> None:
        """Rebuild optimizer, prior and evaluator state from a checkpoint.

        The optimizer re-ingests the journaled history in the chunks the
        recorded fit boundaries dictate.  Partial-fit surrogates (the GP)
        replay *every* fit event so their incremental factors and refresh
        counters take the same growth path as the live run; from-scratch
        surrogates (RF, constant) replay only the final fit — after
        restoring the surrogate RNG state captured just before that fit —
        because earlier fits left no trace beyond the RNG cursor.  Prior
        refreshes are re-trained against the history prefixes they
        originally saw (fresh deterministic VAE seeds make the replay exact),
        and the optimizer RNG plus all campaign counters are restored last.
        """
        optimizer = self.optimizer
        fit_rows = [int(rows) for rows in checkpoint["fit_rows"]]
        total_rows = int(checkpoint["num_rows"])
        position = 0
        for index, boundary in enumerate(fit_rows):
            self._replay_ingest(position, boundary)
            position = boundary
            if optimizer.surrogate.supports_partial_fit:
                optimizer.fit_now()
            elif index == len(fit_rows) - 1:
                rng = getattr(optimizer.surrogate, "_rng", None)
                state = checkpoint.get("pre_fit_rng")
                if rng is not None and state is not None:
                    rng.bit_generator.state = state
                optimizer.fit_now()
            else:
                # From-scratch surrogates: only the final fit determines the
                # model — earlier events advance the bookkeeping only.
                optimizer.mark_fitted()
        self._replay_ingest(position, total_rows)
        for rows in checkpoint["refresh_rows"]:
            prefix = self.history.truncated(int(rows))
            prepared = self._build_prior_refresh(prefix)
            if prepared is None:
                raise JournalError(
                    "journaled prior refresh cannot be rebuilt from the "
                    "restored history"
                )
            prepared.vae.fit(
                prepared.design,
                epochs=prepared.epochs,
                batch_size=prepared.batch_size,
            )
            self.finish_prior_refresh(prepared)
        optimizer.rng.bit_generator.state = checkpoint["optimizer_rng"]
        self._evals_since_prior_refresh = int(checkpoint["evals_since_prior_refresh"])
        self.num_prior_refreshes = int(checkpoint["num_prior_refreshes"])
        self._num_completed = int(checkpoint["num_completed"])
        self.finished = bool(checkpoint["finished"])
        self.evaluator.load_state_dict(checkpoint["evaluator"])

    def _replay_ingest(self, start: int, stop: int) -> None:
        """Re-ingest journaled history rows ``[start, stop)`` into the optimizer."""
        if stop <= start:
            return
        evaluations = self.history[start:stop]
        self.optimizer.ingest(
            [evaluation.configuration for evaluation in evaluations],
            [evaluation.objective for evaluation in evaluations],
        )

    # ------------------------------------------------------------------ misc
    def _submit(
        self,
        batch: Sequence[Configuration],
        runtimes: Optional[Sequence[float]] = None,
    ) -> None:
        evaluator = self.evaluator
        evaluator.submit(batch, runtimes)
        # Started evaluations come from the evaluator's own log — a shared
        # service pool may start a queued request long after the submit call,
        # so a before/after diff of pending evaluations would miss it.
        self.intervals.extend(evaluator.drain_started_intervals())

    def result(self) -> SearchResult:
        """The :class:`SearchResult` of the (finished or in-flight) campaign."""
        # Pick up evaluations a shared pool started from its queue after this
        # campaign's last submit call.
        self.intervals.extend(self.evaluator.drain_started_intervals())
        best = self.history.best()
        return SearchResult(
            history=self.history,
            best_configuration=best.configuration if best else None,
            best_runtime=best.runtime if best else float("nan"),
            best_objective=best.objective if best else float("nan"),
            num_evaluations=len(self.history),
            worker_utilization=self.evaluator.utilization(self.max_time),
            search_time=self.max_time,
            num_workers=self.search.num_workers,
            busy_intervals=self.intervals,
        )


class VAEABOSearch(CBOSearch):
    """Variational-autoencoder-guided asynchronous BO (the paper's Algorithm 1).

    Identical to :class:`CBOSearch` except that, when a source history is
    provided, the sampling prior is the informative prior learned from the
    top-q% configurations of that history.  Parameters of the current space
    that did not exist in the source space fall back to their uninformative
    priors (Algorithm 1, l. 3-10); the source space may therefore differ from
    the current one, which is the transfer-learning capability unique to this
    method (§V-B).

    Parameters
    ----------
    source_history:
        History of the previous autotuning run (``H_p``); ``None`` disables
        transfer learning (the search is then a plain :class:`CBOSearch`).
    quantile:
        Fraction ``q`` of top configurations used to train the VAE.
    vae_epochs, vae_latent_dim:
        Training budget and latent dimensionality of the tabular VAE.
    uniform_fraction:
        Fraction of candidate samples still drawn from the uninformative prior
        so the biased search keeps non-zero support over the whole space.
    defer_transfer_fit:
        If True, the transfer VAE is constructed but not trained here; the
        pending fit is exposed as :attr:`pending_transfer_fit` so a fleet
        driver can fuse several searches' initial VAE fits into one
        :class:`~repro.core.vae.tvae.VAEFleet` pass (bit-identical per
        member).  Any fit still pending when the search starts is completed
        solo before the first sample, so a deferred-but-never-fused search
        is bitwise identical to an eager one.
    """

    def __init__(
        self,
        space: SearchSpace,
        run_function: Callable[[Configuration], float],
        source_history: Optional[SearchHistory] = None,
        quantile: float = 0.10,
        vae_epochs: int = 300,
        vae_latent_dim: int = 8,
        uniform_fraction: float = 0.05,
        defer_transfer_fit: bool = False,
        **kwargs,
    ):
        prior = kwargs.pop("prior", None)
        seed = kwargs.get("seed", 0)
        self.transfer_prior: Optional[TransferLearningPrior] = None
        pending: Optional[PreparedTransferFit] = None
        if source_history is not None and prior is None:
            self.transfer_prior, pending = prepare_transfer_prior(
                source_history,
                space,
                quantile=quantile,
                epochs=vae_epochs,
                latent_dim=vae_latent_dim,
                uniform_fraction=uniform_fraction,
                seed=seed,
            )
            prior = self.transfer_prior
            if pending is not None and not defer_transfer_fit:
                pending.train()
                pending = None
        super().__init__(space, run_function, prior=prior, **kwargs)
        self.pending_transfer_fit = pending
