"""Asynchronous search loops: CBO (no transfer) and VAE-ABO (Algorithm 1).

:class:`CBOSearch` implements the distributed asynchronous Bayesian
optimization of §III-A on top of the virtual-clock evaluator:

1. sample one configuration per worker from the prior and submit them all
   (initialisation phase, Algorithm 1 l. 13-16);
2. whenever evaluations complete, record them, update the surrogate
   (``tell``), generate as many new configurations as there are idle workers
   (``ask`` with the constant-liar multi-point strategy) and submit them
   (optimization loop, l. 17-23);
3. stop when the search-time budget is exhausted (or an evaluation cap is
   reached) and return the best configuration plus the full history (l. 24-25).

The manager is charged a model-update and candidate-generation overhead in
search time (see :mod:`repro.core.overhead`), which is what differentiates RF
from GP in worker utilisation.

:class:`VAEABOSearch` is the paper's contribution: identical to
:class:`CBOSearch` except that the sampling prior is the informative prior
built from a previous run's history by :mod:`repro.core.transfer`
(top-q% selection → tabular VAE → joint sampling distribution, with
uninformative priors for parameters that are new in the current space).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.evaluator import AsyncVirtualEvaluator, DEFAULT_FAILURE_DURATION
from repro.core.history import SearchHistory
from repro.core.objective import Objective
from repro.core.optimizer import BayesianOptimizer
from repro.core.overhead import make_overhead_model
from repro.core.priors import JointPrior
from repro.core.space import Configuration, SearchSpace
from repro.core.surrogate.base import Surrogate
from repro.core.transfer import TransferLearningPrior, fit_transfer_prior

__all__ = ["SearchResult", "CBOSearch", "VAEABOSearch"]


@dataclass
class SearchResult:
    """Outcome of one autotuning run.

    Attributes
    ----------
    history:
        Full per-evaluation record.
    best_configuration:
        Best configuration found (None if every evaluation failed).
    best_runtime:
        Run time of the best configuration (NaN if none succeeded).
    best_objective:
        Objective of the best configuration (NaN if none succeeded).
    num_evaluations:
        Number of completed evaluations within the budget.
    worker_utilization:
        Fraction of worker time spent evaluating within the budget.
    search_time:
        The search-time budget that was used.
    num_workers:
        Number of workers of the run.
    busy_intervals:
        ``(submitted, completed)`` intervals of every evaluation started
        (including ones still running at the deadline) — used for the
        utilisation-over-time plot of Fig. 4 (f).
    """

    history: SearchHistory
    best_configuration: Optional[Configuration]
    best_runtime: float
    best_objective: float
    num_evaluations: int
    worker_utilization: float
    search_time: float
    num_workers: int
    busy_intervals: List[Tuple[float, float]] = field(default_factory=list)

    def best_runtime_at(self, time: float) -> float:
        """Best run time known after ``time`` seconds of search."""
        return self.history.best_runtime_at(time)


class CBOSearch:
    """Asynchronous (centralised) Bayesian optimization without transfer.

    Parameters
    ----------
    space:
        Search space of the tuning problem.
    run_function:
        Callable mapping a configuration to the measured run time in seconds
        (NaN for failures).
    num_workers:
        Number of parallel evaluation workers (128 in the paper).
    surrogate:
        Surrogate model or name: "RF" (default), "GP" or "RAND".
    prior:
        Sampling prior for candidate generation; defaults to the uniform /
        log-uniform per-parameter prior.
    kappa:
        UCB exploration weight (1.96 in the paper).
    num_candidates:
        Candidates sampled per ``ask``.
    n_initial_points:
        Evaluations before the surrogate is used.
    liar_strategy:
        Constant-liar flavour.
    overhead:
        Manager-overhead model ("analytic", "measured" or an instance).
    failure_duration:
        Worker time consumed by failed evaluations (600 s in the paper).
    objective:
        Objective transform (defaults to ``-log(runtime)``).
    incremental:
        Whether the optimizer caches the encoded history incrementally
        (default) or re-encodes it per interaction; see
        :class:`~repro.core.optimizer.BayesianOptimizer`.  Both settings
        produce identical searches — only real wall-clock time differs.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        space: SearchSpace,
        run_function: Callable[[Configuration], float],
        num_workers: int = 128,
        surrogate: Union[str, Surrogate] = "RF",
        prior: Optional[JointPrior] = None,
        kappa: float = 1.96,
        num_candidates: int = 512,
        n_initial_points: int = 10,
        liar_strategy: str = "kernel_penalty",
        overhead: Union[str, object] = "analytic",
        failure_duration: float = DEFAULT_FAILURE_DURATION,
        objective: Optional[Objective] = None,
        random_sampling: bool = False,
        refit_interval: int = 1,
        incremental: bool = True,
        seed: int = 0,
    ):
        self.space = space
        self.run_function = run_function
        self.num_workers = int(num_workers)
        self.objective = objective or Objective()
        self.optimizer = BayesianOptimizer(
            space,
            surrogate=surrogate,
            prior=prior,
            kappa=kappa,
            num_candidates=num_candidates,
            n_initial_points=n_initial_points,
            liar_strategy=liar_strategy,
            random_sampling=random_sampling,
            refit_interval=refit_interval,
            incremental=incremental,
            objective=self.objective,
            seed=seed,
        )
        self.overhead = make_overhead_model(overhead)
        self.failure_duration = float(failure_duration)
        self.seed = int(seed)

    # --------------------------------------------------------------------- run
    def run(
        self,
        max_time: float = 3600.0,
        max_evaluations: Optional[int] = None,
        initial_configurations: Optional[Sequence[Configuration]] = None,
    ) -> SearchResult:
        """Execute the search for ``max_time`` seconds of search time.

        Parameters
        ----------
        max_time:
            Search-time budget (the paper uses 1 hour).
        max_evaluations:
            Optional cap on the number of completed evaluations.
        initial_configurations:
            Optional explicit initial batch (used by the framework comparison
            to give every method the same 10 initial samples).
        """
        if max_time <= 0:
            raise ValueError("max_time must be positive")
        evaluator = AsyncVirtualEvaluator(
            self.run_function,
            num_workers=self.num_workers,
            failure_duration=self.failure_duration,
        )
        history = SearchHistory(self.space, objective=self.objective)
        intervals: List[Tuple[float, float]] = []

        # ----------------------------------------------------- initialisation
        if initial_configurations:
            first = [dict(c) for c in initial_configurations][: self.num_workers]
            if len(first) < self.num_workers:
                first.extend(self.optimizer.ask(self.num_workers - len(first)))
        else:
            first = self.optimizer.ask(self.num_workers)
        evaluator.submit(first)
        intervals.extend(
            (p.submitted, p.completes_at) for p in evaluator._pending
        )

        # ------------------------------------------------------ optimization
        while evaluator.now < max_time:
            if max_evaluations is not None and len(history) >= max_evaluations:
                break
            now, completed = evaluator.wait_any(max_time)
            if not completed:
                break
            recorded = [
                history.record(
                    ev.configuration,
                    runtime=ev.runtime,
                    submitted=ev.submitted,
                    completed=ev.completed,
                    worker=ev.worker,
                )
                for ev in completed
            ]
            # The recorded evaluations already hold the objective transform of
            # each runtime — feed those to the optimizer instead of
            # re-deriving them.
            self.optimizer.tell(
                [ev.configuration for ev in completed],
                [rec.objective for rec in recorded],
            )
            evaluator.advance_to(
                evaluator.now + self.overhead.tell_cost(self.optimizer, len(completed))
            )
            if evaluator.now >= max_time:
                break
            num_idle = evaluator.num_idle
            if num_idle > 0:
                batch = self.optimizer.ask(num_idle)
                evaluator.advance_to(
                    evaluator.now + self.overhead.ask_cost(self.optimizer, len(batch))
                )
                if evaluator.now >= max_time:
                    break
                before = {id(p) for p in evaluator._pending}
                evaluator.submit(batch)
                intervals.extend(
                    (p.submitted, p.completes_at)
                    for p in evaluator._pending
                    if id(p) not in before
                )

        best = history.best()
        return SearchResult(
            history=history,
            best_configuration=best.configuration if best else None,
            best_runtime=best.runtime if best else float("nan"),
            best_objective=best.objective if best else float("nan"),
            num_evaluations=len(history),
            worker_utilization=evaluator.utilization(max_time),
            search_time=max_time,
            num_workers=self.num_workers,
            busy_intervals=intervals,
        )


class VAEABOSearch(CBOSearch):
    """Variational-autoencoder-guided asynchronous BO (the paper's Algorithm 1).

    Identical to :class:`CBOSearch` except that, when a source history is
    provided, the sampling prior is the informative prior learned from the
    top-q% configurations of that history.  Parameters of the current space
    that did not exist in the source space fall back to their uninformative
    priors (Algorithm 1, l. 3-10); the source space may therefore differ from
    the current one, which is the transfer-learning capability unique to this
    method (§V-B).

    Parameters
    ----------
    source_history:
        History of the previous autotuning run (``H_p``); ``None`` disables
        transfer learning (the search is then a plain :class:`CBOSearch`).
    quantile:
        Fraction ``q`` of top configurations used to train the VAE.
    vae_epochs, vae_latent_dim:
        Training budget and latent dimensionality of the tabular VAE.
    uniform_fraction:
        Fraction of candidate samples still drawn from the uninformative prior
        so the biased search keeps non-zero support over the whole space.
    """

    def __init__(
        self,
        space: SearchSpace,
        run_function: Callable[[Configuration], float],
        source_history: Optional[SearchHistory] = None,
        quantile: float = 0.10,
        vae_epochs: int = 300,
        vae_latent_dim: int = 8,
        uniform_fraction: float = 0.05,
        **kwargs,
    ):
        prior = kwargs.pop("prior", None)
        seed = kwargs.get("seed", 0)
        self.transfer_prior: Optional[TransferLearningPrior] = None
        if source_history is not None and prior is None:
            self.transfer_prior = fit_transfer_prior(
                source_history,
                space,
                quantile=quantile,
                epochs=vae_epochs,
                latent_dim=vae_latent_dim,
                uniform_fraction=uniform_fraction,
                seed=seed,
            )
            prior = self.transfer_prior
        super().__init__(space, run_function, prior=prior, **kwargs)
