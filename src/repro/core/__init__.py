"""Autotuning core: parameter spaces, surrogates, asynchronous BO and VAE-ABO.

This subpackage implements the paper's primary contribution —
variational-autoencoder-guided asynchronous Bayesian optimization (VAE-ABO,
Algorithm 1) — together with every building block it needs:

* :mod:`repro.core.space` — mixed integer/real/categorical search spaces with
  uniform and log-uniform sampling distributions.
* :mod:`repro.core.priors` — per-parameter priors and joint (generative)
  priors used for transfer learning.
* :mod:`repro.core.surrogate` — random forest, Gaussian process and
  Tree-Parzen-Estimator surrogate models implemented from scratch on NumPy.
* :mod:`repro.core.acquisition` / :mod:`repro.core.liar` — confidence-bound
  acquisition and the constant-liar multi-point strategy.
* :mod:`repro.core.optimizer` — the ask/tell Bayesian optimizer.
* :mod:`repro.core.evaluator` — virtual-clock asynchronous evaluator pool
  (manager/worker architecture).
* :mod:`repro.core.search` — the asynchronous search loop (`CBOSearch`,
  `VAEABOSearch`).
* :mod:`repro.core.vae` — the tabular variational autoencoder (NumPy MLPs with
  manual backprop and Adam).
* :mod:`repro.core.transfer` — selection of top-q% configurations, VAE fitting
  and construction of the informative prior.
"""

from repro.core.space import (
    CategoricalParameter,
    Configuration,
    IntegerParameter,
    OrdinalParameter,
    Parameter,
    RealParameter,
    SearchSpace,
)
from repro.core.priors import (
    CategoricalPrior,
    IndependentPrior,
    JointPrior,
    LogUniformPrior,
    MixturePrior,
    UniformPrior,
)
from repro.core.objective import Objective, runtime_objective
from repro.core.history import Evaluation, SearchHistory
from repro.core.optimizer import (
    BayesianOptimizer,
    CandidateScoringError,
    make_surrogate,
)
from repro.core.evaluator import AsyncVirtualEvaluator, WorkerState
from repro.core.overhead import AnalyticOverheadModel, MeasuredOverheadModel
from repro.core.search import CBOSearch, SearchResult, VAEABOSearch
from repro.core.transfer import TransferLearningPrior, fit_transfer_prior

__all__ = [
    "AnalyticOverheadModel",
    "AsyncVirtualEvaluator",
    "BayesianOptimizer",
    "CandidateScoringError",
    "CategoricalParameter",
    "CategoricalPrior",
    "CBOSearch",
    "Configuration",
    "Evaluation",
    "IndependentPrior",
    "IntegerParameter",
    "JointPrior",
    "LogUniformPrior",
    "MeasuredOverheadModel",
    "MixturePrior",
    "Objective",
    "OrdinalParameter",
    "Parameter",
    "RealParameter",
    "SearchHistory",
    "SearchResult",
    "SearchSpace",
    "TransferLearningPrior",
    "UniformPrior",
    "VAEABOSearch",
    "WorkerState",
    "fit_transfer_prior",
    "make_surrogate",
    "runtime_objective",
]
