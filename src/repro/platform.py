"""Platform model: nodes, cores and the interconnect.

The paper's experiments run on Theta, a Cray XC40 whose nodes have a 64-core
Intel Xeon Phi 7230 and a Cray Aries dragonfly interconnect.  Each HEP
workflow instance occupies a small number of nodes (4, 8 or 16), split between
HEPnOS servers and the applications using them.

The platform model provides:

* :class:`Platform` — machine-wide constants (cores per node, network model,
  parallel-file-system bandwidth).
* :class:`Node` — one compute node: its network interface plus a simple core
  accounting scheme used to derive an *oversubscription slowdown*.  Busy
  components (busy-spinning progress loops, ``fifo`` pools, worker threads)
  register their demand; when total demand exceeds the physical core count,
  compute-bound service times are inflated proportionally.  This is the
  mechanism through which "32 processes per node with 63 threads each" becomes
  a bad configuration, exactly as on the real machine.
* :class:`NodeAllocation` — the split of a workflow instance's nodes between
  HEPnOS and the applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim import Environment
from repro.mochi.mercury import NetworkInterface, NetworkModel

__all__ = ["Platform", "Node", "NodeAllocation", "THETA"]


@dataclass(frozen=True)
class Platform:
    """Machine-wide constants.

    Attributes
    ----------
    name:
        Platform label.
    cores_per_node:
        Physical cores per node (Theta: 64).
    network:
        Interconnect model shared by all nodes.
    pfs_read_bandwidth:
        Aggregate parallel-file-system read bandwidth available to one node,
        bytes/s (used by the data loader when reading HDF5 files).
    pfs_per_process_bandwidth:
        Read bandwidth a single process can sustain on its own, bytes/s.
    """

    name: str = "theta"
    cores_per_node: int = 64
    network: NetworkModel = field(default_factory=NetworkModel)
    pfs_read_bandwidth: float = 2.0e9
    pfs_per_process_bandwidth: float = 0.45e9

    def __post_init__(self) -> None:
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        if self.pfs_read_bandwidth <= 0 or self.pfs_per_process_bandwidth <= 0:
            raise ValueError("file-system bandwidths must be positive")


#: The default platform used throughout the reproduction (Theta-like).
THETA = Platform()


class Node:
    """One compute node: NIC plus core-demand accounting.

    Parameters
    ----------
    env:
        Simulation environment.
    platform:
        The owning :class:`Platform`.
    name:
        Node label (e.g. ``"hepnos-0"`` or ``"app-2"``).
    """

    def __init__(self, env: Environment, platform: Platform, name: str):
        self.env = env
        self.platform = platform
        self.name = name
        self.nic = NetworkInterface(env, platform.network, node_name=name)
        self._pinned_cores = 0.0
        self._worker_threads = 0.0

    # -------------------------------------------------------------- accounting
    def register_pinned(self, cores: float) -> None:
        """Register cores that are permanently occupied (busy loops, spinners)."""
        if cores < 0:
            raise ValueError("cores must be non-negative")
        self._pinned_cores += cores

    def register_workers(self, threads: float) -> None:
        """Register worker threads that are busy while the workload runs."""
        if threads < 0:
            raise ValueError("threads must be non-negative")
        self._worker_threads += threads

    def reset_accounting(self) -> None:
        """Clear all registered demand (used between workflow steps)."""
        self._pinned_cores = 0.0
        self._worker_threads = 0.0

    @property
    def pinned_cores(self) -> float:
        """Currently registered permanently-occupied cores."""
        return self._pinned_cores

    @property
    def worker_threads(self) -> float:
        """Currently registered worker threads."""
        return self._worker_threads

    @property
    def core_demand(self) -> float:
        """Total core demand (pinned + workers)."""
        return self._pinned_cores + self._worker_threads

    def slowdown(self) -> float:
        """Oversubscription factor applied to compute-bound service times.

        1.0 while demand fits in the physical cores; grows linearly with the
        oversubscription ratio beyond that.
        """
        demand = self.core_demand
        cores = float(self.platform.cores_per_node)
        if demand <= cores:
            return 1.0
        return demand / cores

    def available_core_fraction(self) -> float:
        """Fraction of the node's cores not pinned by spinners/progress loops."""
        cores = float(self.platform.cores_per_node)
        return max(0.0, cores - self._pinned_cores) / cores

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Node {self.name!r} demand={self.core_demand:.1f}/"
            f"{self.platform.cores_per_node}>"
        )


@dataclass
class NodeAllocation:
    """Split of one workflow instance's nodes between HEPnOS and applications.

    The paper's setups use a 1:3 split (e.g. 4 nodes = 1 HEPnOS + 3
    application nodes, 16 nodes = 4 + 12).
    """

    hepnos_nodes: List[Node]
    app_nodes: List[Node]

    @classmethod
    def create(
        cls,
        env: Environment,
        platform: Platform,
        num_nodes: int,
        hepnos_fraction: float = 0.25,
    ) -> "NodeAllocation":
        """Create an allocation of ``num_nodes`` nodes.

        ``hepnos_fraction`` of the nodes (at least one) run HEPnOS servers;
        the rest run the data loader / PEP applications.
        """
        if num_nodes < 2:
            raise ValueError("a workflow instance needs at least 2 nodes")
        n_hepnos = max(1, int(round(num_nodes * hepnos_fraction)))
        n_app = num_nodes - n_hepnos
        if n_app < 1:
            raise ValueError("allocation leaves no application nodes")
        hepnos_nodes = [
            Node(env, platform, name=f"hepnos-{i}") for i in range(n_hepnos)
        ]
        app_nodes = [Node(env, platform, name=f"app-{i}") for i in range(n_app)]
        return cls(hepnos_nodes=hepnos_nodes, app_nodes=app_nodes)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes in the allocation."""
        return len(self.hepnos_nodes) + len(self.app_nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<NodeAllocation hepnos={len(self.hepnos_nodes)} "
            f"app={len(self.app_nodes)}>"
        )
