"""Per-tick fleet grouping: one pure, tested implementation for every path.

Each batch tick the runner fuses the due work of compatible campaigns — RF
refits through :func:`~repro.core.surrogate.random_forest.fit_forest_fleet`,
GP refits through :class:`~repro.core.surrogate.gaussian_process.GPFleet`,
prior-refresh VAE refits through :class:`~repro.core.vae.tvae.VAEFleet`, and
candidate-pool scoring through the fused predict passes.  All of those share
the same grouping rule:

* members are grouped by a *compatibility key* (hyperparameters + shapes);
* a group only takes the fused path when it has at least ``min_fused``
  members **and** every member brings a distinct underlying object (a
  degenerate setup sharing one surrogate instance must fall back to the
  sequential path — a fused pass would fit the same object twice);
* groups are returned in first-appearance order and members keep their
  arrival order inside each group, so the fused passes are deterministic
  for a given active set.

The rule used to live inline in four runner methods; with the elastic runner
re-forming groups from a *changing* active set every tick, it is extracted
here as :func:`plan_tick_groups` so the legacy batch path and the elastic
path share one implementation with its own unit tests
(``tests/service/test_grouping.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, TypeVar

__all__ = ["TickGroup", "plan_step_shards", "plan_tick_groups"]

T = TypeVar("T")


@dataclass
class TickGroup:
    """One compatibility group of a tick's due work items.

    Attributes
    ----------
    key:
        The compatibility key shared by every member.
    members:
        The items of the group, in arrival order.
    fused:
        Whether the group qualifies for the fused fleet pass (enough
        members, all distinct).  Unfused groups take the caller's solo path.
    """

    key: Hashable
    members: List
    fused: bool


def plan_tick_groups(
    items: Sequence[T],
    key_of: Callable[[T], Hashable],
    identity_of: Optional[Callable[[T], int]] = None,
    min_fused: int = 2,
) -> List[TickGroup]:
    """Group one tick's due items for fused fleet passes.

    Parameters
    ----------
    items:
        The tick's due work items (executions, ``(execution, X, y)`` tuples,
        prepared refreshes, ...), in the order the tick discovered them.
    key_of:
        Maps an item to its hashable compatibility key (e.g.
        :func:`~repro.core.surrogate.random_forest.fleet_compatibility_key`,
        :func:`~repro.core.surrogate.gaussian_process.gp_fleet_key`,
        :func:`~repro.core.vae.tvae.vae_fleet_key`).
    identity_of:
        Optional map from an item to the identity of its underlying mutable
        object (typically ``id(surrogate)``).  A group containing duplicate
        identities is never fused — fitting one object twice in a fleet pass
        would corrupt it.  ``None`` skips the distinctness requirement
        (read-only passes over stateless inputs).
    min_fused:
        Minimum group size for the fused path (2: a fleet of one is the solo
        fit).

    Returns
    -------
    Groups in first-appearance order of their keys; every input item appears
    in exactly one group.
    """
    by_key: Dict[Hashable, List[T]] = {}
    order: List[Hashable] = []
    for item in items:
        key = key_of(item)
        if key not in by_key:
            by_key[key] = []
            order.append(key)
        by_key[key].append(item)
    groups: List[TickGroup] = []
    for key in order:
        members = by_key[key]
        fused = len(members) >= min_fused
        if fused and identity_of is not None:
            identities = {identity_of(member) for member in members}
            fused = len(identities) == len(members)
        groups.append(TickGroup(key=key, members=members, fused=fused))
    return groups


def plan_step_shards(
    items: Sequence[T],
    num_shards: int,
    affinity_of: Optional[Callable[[T], Optional[Hashable]]] = None,
) -> List[List[T]]:
    """Partition one tick's active set into shards for parallel stepping.

    The plan is a pure function of the item order and ``num_shards`` — never
    of worker count, timing or thread identity — which is half of the
    parallel runner's bit-identity contract (the other half is reducing
    shard results in shard order).  Items are dealt into ``num_shards``
    balanced contiguous slices (sizes differ by at most one, order preserved
    within each shard).

    ``affinity_of`` optionally maps an item to an affinity token (or ``None``
    for no affinity).  All items sharing a token land in the shard of the
    token's *first* item: campaigns sharing one
    :class:`~repro.service.evaluator.SharedWorkerPool` must step in a single
    shard so their interleaved virtual-time events replay in arrival order
    rather than racing across shards.

    Empty shards are dropped, so the result has ``min(num_shards,
    len(items))`` or fewer entries (fewer when affinity pulls items
    together).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    n = len(items)
    if n == 0:
        return []
    num_shards = min(int(num_shards), n)
    shards: List[List[T]] = [[] for _ in range(num_shards)]
    token_shard: Dict[Hashable, int] = {}
    for i, item in enumerate(items):
        # Balanced contiguous deal: item i belongs to shard i*k//n, which
        # slices the sequence into k runs whose sizes differ by at most one.
        index = (i * num_shards) // n
        token = affinity_of(item) if affinity_of is not None else None
        if token is not None:
            index = token_shard.setdefault(token, index)
        shards[index].append(item)
    return [shard for shard in shards if shard]
