"""Service-scale campaign execution: pools, runners, registry and frontend.

This package opens the fleet scenario of the roadmap — many concurrent
autotuning campaigns against shared evaluation capacity:

* :class:`~repro.service.evaluator.SharedWorkerPool` /
  :class:`~repro.service.evaluator.ServiceEvaluator` — a queue-based
  evaluation backend speaking the same ``submit``/``collect``/``wait_any``
  protocol as the private
  :class:`~repro.core.evaluator.AsyncVirtualEvaluator`, so campaigns can
  target a shared service fleet via ``CBOSearch(evaluator_factory=...)``,
  with optional per-tenant worker-slot caps (``tenant_slots``);
* :class:`~repro.service.runner.CampaignRunner` — N campaigns advanced in
  lock-step batch ticks over one event loop, with the due surrogate refits
  of each tick fused into bit-identical fleet passes;
* :class:`~repro.service.runner.ElasticCampaignRunner` — the elastic form:
  campaigns join mid-flight under admission control (``max_inflight``,
  per-tenant bounds) and leave when finished or quarantined, with the
  fusion groups re-planned every tick
  (:func:`~repro.service.grouping.plan_tick_groups`);
* :class:`~repro.service.registry.CampaignRegistry` — named studies with
  Optuna-style create-or-attach semantics over the journal store;
* :class:`~repro.service.frontend.StudyClient` /
  :class:`~repro.service.frontend.StudyFrontend` /
  :class:`~repro.service.frontend.HTTPStudyClient` — the ask/tell surface,
  in-process and as stdlib JSON-over-HTTP.
"""

from repro.service.evaluator import ServiceEvaluator, SharedWorkerPool
from repro.service.frontend import HTTPStudyClient, StudyClient, StudyFrontend
from repro.service.grouping import TickGroup, plan_tick_groups
from repro.service.registry import (
    CampaignRegistry,
    ProtocolError,
    RegistryError,
    StudyConflictError,
    StudyRecord,
    UnknownStudyError,
    UnknownTemplateError,
)
from repro.service.runner import (
    CampaignRunner,
    CampaignSpec,
    ElasticCampaignRunner,
    QuarantinedCampaign,
)

__all__ = [
    "ServiceEvaluator",
    "SharedWorkerPool",
    "CampaignRunner",
    "CampaignSpec",
    "ElasticCampaignRunner",
    "QuarantinedCampaign",
    "TickGroup",
    "plan_tick_groups",
    "CampaignRegistry",
    "StudyRecord",
    "RegistryError",
    "UnknownStudyError",
    "UnknownTemplateError",
    "StudyConflictError",
    "ProtocolError",
    "StudyClient",
    "StudyFrontend",
    "HTTPStudyClient",
]
