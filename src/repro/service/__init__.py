"""Service-scale campaign execution: shared worker pools and batch runners.

This package opens the fleet scenario of the roadmap — many concurrent
autotuning campaigns against shared evaluation capacity:

* :class:`~repro.service.evaluator.SharedWorkerPool` /
  :class:`~repro.service.evaluator.ServiceEvaluator` — a queue-based
  evaluation backend speaking the same ``submit``/``collect``/``wait_any``
  protocol as the private
  :class:`~repro.core.evaluator.AsyncVirtualEvaluator`, so campaigns can
  target a shared service fleet via ``CBOSearch(evaluator_factory=...)``;
* :class:`~repro.service.runner.CampaignRunner` — N campaigns advanced in
  lock-step batch ticks over one event loop, with the due random-forest
  refits of each tick fused into a single bit-identical fleet fit.
"""

from repro.service.evaluator import ServiceEvaluator, SharedWorkerPool
from repro.service.runner import CampaignRunner, CampaignSpec, QuarantinedCampaign

__all__ = [
    "ServiceEvaluator",
    "SharedWorkerPool",
    "CampaignRunner",
    "CampaignSpec",
    "QuarantinedCampaign",
]
