"""Multi-campaign batch runner: many searches over one event loop.

The paper's evaluation runs many asynchronous BO campaigns (setups ×
methods × repetitions); executed naively they run strictly one after
another, each paying its own Python/NumPy pass overhead per manager
interaction.  :class:`CampaignRunner` instead advances N campaigns in
lock-step *batch ticks* over their virtual-time evaluators:

1. **collect** — every active campaign advances to its own next completion
   event and records the finished evaluations;
2. **tell** — the completions are ingested per campaign, and the due
   random-forest surrogate refits are grouped into one
   :func:`~repro.core.surrogate.random_forest.fit_forest_fleet` pass (the
   per-level NumPy overhead — the dominant refit cost at campaign scale —
   is paid once per tick instead of once per campaign);
3. **prior refresh** — campaigns on the continuous-retuning scenario
   (``CBOSearch(prior_refresh_interval=...)``, including transfer campaigns
   seeded with a :class:`~repro.core.transfer.TransferLearningPrior`) whose
   VAE refit falls due this tick train them as one fused
   :class:`~repro.core.vae.tvae.VAEFleet` pass per compatible group;
4. **ask** — every campaign proposes for its idle workers and submits.

Because each campaign's operations run in exactly the order the sequential
loop would run them, and the fleet fit is bit-identical per forest, the
per-campaign :class:`~repro.core.search.SearchResult`\\ s are **bit-identical**
to running the same seeds through ``CBOSearch.run`` one by one — the batch
runner only changes wall-clock time (``benchmarks/bench_multi_campaign.py``
measures the effect; the identity is pinned by the test suite).  One
carve-out: campaigns using the opt-in ``overhead="measured"`` model charge
their *measured* Python time as virtual overhead, and a batched fleet fit's
wall-clock is shared rather than attributed per campaign, so measured-mode
virtual timelines differ between the two executions (the default analytic
model depends only on campaign state and is exactly identical).

Campaigns may also share a :class:`~repro.service.SharedWorkerPool` through
``CBOSearch(evaluator_factory=pool.evaluator_factory())``, in which case they
compete for the same workers on one clock — the service deployment scenario
(results then legitimately differ from private-worker runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.search import CampaignExecution, CBOSearch, SearchResult
from repro.core.space import Configuration
from repro.core.surrogate.random_forest import (
    RandomForestSurrogate,
    fit_forest_fleet,
    fleet_compatibility_key,
    predict_forest_fleet,
)
from repro.core.vae.tvae import VAEFleet, vae_fleet_key

__all__ = ["CampaignSpec", "CampaignRunner"]


@dataclass
class CampaignSpec:
    """One campaign to run: a configured search plus its run budget."""

    search: CBOSearch
    max_time: float = 3600.0
    max_evaluations: Optional[int] = None
    initial_configurations: Optional[Sequence[Configuration]] = None
    label: str = ""


class CampaignRunner:
    """Run several independent campaigns concurrently over batch ticks.

    Parameters
    ----------
    specs:
        The campaigns to run (order is preserved in the results).
    batch_surrogate_fits:
        Group the due level-wise random-forest refits of one tick into a
        single fleet fit (default).  ``False`` fits each campaign's surrogate
        on its own — same results, sequential-fit wall-clock; kept selectable
        so the benchmark can quantify the batching and the tests can compare
        both paths.
    batch_candidate_scoring:
        Score the candidate pools of one tick's RF-backed asks in one fused
        :func:`~repro.core.surrogate.random_forest.predict_forest_fleet`
        traversal (default).  Bit-identical to per-campaign scoring.
    batch_vae_fits:
        Fuse the prior-refresh VAE refits that fall due in one tick
        (campaigns running the continuous-retuning scenario,
        ``CBOSearch(prior_refresh_interval=...)``) into a single
        :class:`~repro.core.vae.tvae.VAEFleet` training pass per compatible
        group (default).  Bit-identical per campaign to refitting each VAE
        on its own; ``False`` keeps the per-campaign refits.
    run_batcher:
        Optional service-style evaluation batcher: a callable receiving the
        tick's submissions as ``[(spec_index, configurations), ...]`` and
        returning the per-submission runtime lists, replacing the
        per-configuration ``run_function`` calls inside ``submit``.  The
        returned values must equal what each campaign's run function would
        have produced (e.g.
        :meth:`~repro.hep.surrogate_runtime.SurrogateRuntimeFleet.run_batch`,
        which fuses the per-request surrogate-model inferences of all
        campaigns into one vectorised pass).
    """

    def __init__(
        self,
        specs: Sequence[CampaignSpec],
        batch_surrogate_fits: bool = True,
        batch_candidate_scoring: bool = True,
        batch_vae_fits: bool = True,
        run_batcher: Optional[Callable] = None,
    ):
        if not specs:
            raise ValueError("need at least one campaign")
        self.specs = list(specs)
        self.batch_surrogate_fits = bool(batch_surrogate_fits)
        self.batch_candidate_scoring = bool(batch_candidate_scoring)
        self.batch_vae_fits = bool(batch_vae_fits)
        self.run_batcher = run_batcher
        #: Number of batch ticks executed by the last :meth:`run`.
        self.num_ticks = 0
        #: Number of fleet fits and of surrogates fitted through them.
        self.num_fleet_fits = 0
        self.num_fleet_fitted_surrogates = 0
        #: Prior-refresh counters: refreshes overall, fused VAEFleet passes,
        #: and VAEs trained through those passes.
        self.num_prior_refreshes = 0
        self.num_vae_fleet_fits = 0
        self.num_vae_fleet_members = 0

    # ------------------------------------------------------------------- run
    def run(self) -> List[SearchResult]:
        """Execute all campaigns; per-spec results in spec order."""
        batching_runs = self.run_batcher is not None
        index_of: Dict[int, int] = {}
        executions = [
            spec.search.start(
                max_time=spec.max_time,
                max_evaluations=spec.max_evaluations,
                initial_configurations=spec.initial_configurations,
                defer_initial_submit=batching_runs,
            )
            for spec in self.specs
        ]
        index_of.update({id(execution): i for i, execution in enumerate(executions)})
        if batching_runs:
            # The initialisation batches of all campaigns in one evaluation
            # pass (they are the largest submissions of the whole run).
            initial = [
                (i, execution._pending_batch)
                for i, execution in enumerate(executions)
                if execution._pending_batch
            ]
            if initial:
                runtimes = self._run_batch(initial)
                for (i, _), values in zip(initial, runtimes):
                    executions[i].submit_prepared(values)
        self.num_ticks = 0
        self.num_fleet_fits = 0
        self.num_fleet_fitted_surrogates = 0
        self.num_prior_refreshes = 0
        self.num_vae_fleet_fits = 0
        self.num_vae_fleet_members = 0

        active = list(executions)
        while active:
            self.num_ticks += 1
            ticking: List[CampaignExecution] = []
            fit_due: List[CampaignExecution] = []
            for execution in active:
                if execution.collect() is None:
                    continue
                if execution.ingest_collected():
                    if self.batch_surrogate_fits and self._fleet_eligible(execution):
                        fit_due.append(execution)
                    else:
                        execution.optimizer.fit_now()
                execution.charge_tell()
                ticking.append(execution)
            self._fit_fleet(fit_due)
            self._refresh_priors(ticking)

            # ---- ask: candidate generation per campaign, fused scoring
            pairs = [(execution, execution.begin_ask()) for execution in ticking]
            scored: Dict[int, Tuple] = {}
            if self.batch_candidate_scoring:
                fused = [
                    (execution, prepared)
                    for execution, prepared in pairs
                    if prepared is not None
                    and prepared.proposals is None
                    and prepared.wants_scores
                    and isinstance(execution.optimizer.surrogate, RandomForestSurrogate)
                ]
                # Campaigns may tune different spaces: fuse only pools of
                # equal encoded width (the traversal stacks the matrices).
                by_width: Dict[int, List[Tuple[CampaignExecution, object]]] = {}
                for execution, prepared in fused:
                    by_width.setdefault(int(prepared.encoded.shape[1]), []).append(
                        (execution, prepared)
                    )
                for group in by_width.values():
                    if len(group) < 2:
                        continue
                    results = predict_forest_fleet(
                        [
                            (execution.optimizer.surrogate, prepared.encoded)
                            for execution, prepared in group
                        ]
                    )
                    scored.update(
                        (id(execution), result)
                        for (execution, _), result in zip(group, results)
                    )

            # ---- submit: batch the run-function calls when a batcher is given
            submissions: List[Tuple[int, CampaignExecution, List[Configuration]]] = []
            for execution, prepared in pairs:
                scores = scored.get(id(execution))
                if scores is not None:
                    batch = execution.finish_ask(*scores)
                else:
                    batch = execution.finish_ask()
                if batch is not None:
                    submissions.append((index_of[id(execution)], execution, batch))
            if self.run_batcher is not None and submissions:
                runtimes = self._run_batch(
                    [(idx, batch) for idx, _, batch in submissions]
                )
                for (_, execution, _), values in zip(submissions, runtimes):
                    execution.submit_prepared(values)
            else:
                for _, execution, _ in submissions:
                    execution.submit_prepared()
            active = [execution for execution in ticking if not execution.finished]
        return [execution.result() for execution in executions]

    # ------------------------------------------------------------ run batches
    def _run_batch(self, requests: List[Tuple[int, List[Configuration]]]) -> List:
        """Invoke the run batcher and validate its result shape.

        A silently short or misaligned result would pair campaigns with each
        other's runtimes — fail loudly instead.
        """
        runtimes = self.run_batcher(requests)
        if len(runtimes) != len(requests):
            raise ValueError(
                f"run_batcher returned {len(runtimes)} runtime lists for "
                f"{len(requests)} submissions"
            )
        return runtimes

    # ------------------------------------------------------------ fleet fits
    @staticmethod
    def _fleet_eligible(execution: CampaignExecution) -> bool:
        surrogate = execution.optimizer.surrogate
        return (
            isinstance(surrogate, RandomForestSurrogate)
            and surrogate.fit_algorithm == "levelwise"
        )

    def _fit_fleet(self, fit_due: List[CampaignExecution]) -> None:
        """Fit the due RF surrogates, grouped by compatible hyperparameters."""
        groups: Dict[Tuple, List[CampaignExecution]] = {}
        for execution in fit_due:
            surrogate = execution.optimizer.surrogate
            X, _ = execution.optimizer.training_data()
            key = fleet_compatibility_key(surrogate, X.shape[1])
            groups.setdefault(key, []).append(execution)
        for group in groups.values():
            seen_ids = {id(execution.optimizer.surrogate) for execution in group}
            if len(group) == 1 or len(seen_ids) != len(group):
                # A single campaign (or a degenerate shared-surrogate setup):
                # the sequential path is the fleet of one.
                for execution in group:
                    execution.optimizer.fit_now()
                continue
            fit_forest_fleet(
                [
                    (execution.optimizer.surrogate, *execution.optimizer.training_data())
                    for execution in group
                ]
            )
            for execution in group:
                execution.optimizer.mark_fitted()
            self.num_fleet_fits += 1
            self.num_fleet_fitted_surrogates += len(group)

    # -------------------------------------------------------- prior refreshes
    def _refresh_priors(self, ticking: List[CampaignExecution]) -> None:
        """Run the tick's due prior-refresh VAE refits, fused where possible.

        Each due campaign's refit sits between its tell and its ask exactly
        as in the sequential loop; refits of compatible shape (same space,
        same ``prior_refresh_top_k``/epochs/batch size — grouped by
        :func:`~repro.core.vae.tvae.vae_fleet_key`) train as one
        :class:`~repro.core.vae.tvae.VAEFleet` pass, bit-identical per
        campaign to a solo ``vae.fit``.
        """
        due = [
            (execution, prepared)
            for execution in ticking
            for prepared in [execution.prepare_prior_refresh()]
            if prepared is not None
        ]
        if not due:
            return
        self.num_prior_refreshes += len(due)
        groups: Dict[Tuple, List] = {}
        for execution, prepared in due:
            if not self.batch_vae_fits:
                key: Tuple = (id(execution),)
            else:
                key = vae_fleet_key(
                    prepared.vae,
                    prepared.design.shape[0],
                    prepared.epochs,
                    prepared.batch_size,
                )
            groups.setdefault(key, []).append((execution, prepared))
        for group in groups.values():
            if len(group) == 1:
                _, prepared = group[0]
                prepared.vae.fit(
                    prepared.design,
                    epochs=prepared.epochs,
                    batch_size=prepared.batch_size,
                )
            else:
                first = group[0][1]
                VAEFleet([prepared.vae for _, prepared in group]).fit(
                    [prepared.design for _, prepared in group],
                    epochs=first.epochs,
                    batch_size=first.batch_size,
                )
                self.num_vae_fleet_fits += 1
                self.num_vae_fleet_members += len(group)
            for execution, prepared in group:
                execution.finish_prior_refresh(prepared)
