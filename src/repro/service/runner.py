"""Multi-campaign runners: batch ticks over one event loop, fixed or elastic.

The paper's evaluation runs many asynchronous BO campaigns (setups ×
methods × repetitions); executed naively they run strictly one after
another, each paying its own Python/NumPy pass overhead per manager
interaction.  :class:`CampaignRunner` instead advances N campaigns in
lock-step *batch ticks* over their virtual-time evaluators:

1. **collect** — every active campaign advances to its own next completion
   event and records the finished evaluations;
2. **tell** — the completions are ingested per campaign, and the due
   random-forest surrogate refits are grouped into one
   :func:`~repro.core.surrogate.random_forest.fit_forest_fleet` pass (the
   per-level NumPy overhead — the dominant refit cost at campaign scale —
   is paid once per tick instead of once per campaign); due
   Gaussian-process refits are grouped the same way into batched
   :class:`~repro.core.surrogate.gaussian_process.GPFleet` passes — one
   stacked ``(K, n, n)`` Cholesky per tick for members due a full refit,
   one batched factor extension for members extending incrementally
   (members keep their own ``refresh_growth`` schedules, so one campaign
   can full-refit while its siblings extend) — grouped by
   :func:`~repro.core.surrogate.gaussian_process.gp_fleet_key` with solo
   fallbacks where history shapes can't align;
3. **prior refresh** — campaigns on the continuous-retuning scenario
   (``CBOSearch(prior_refresh_interval=...)``, including transfer campaigns
   seeded with a :class:`~repro.core.transfer.TransferLearningPrior`) whose
   VAE refit falls due this tick train them as one fused
   :class:`~repro.core.vae.tvae.VAEFleet` pass per compatible group;
4. **ask** — the fleet ask: the tick's due asks are grouped by search
   space and encoding (``batch_asks``) and each group's candidate
   generation runs as one stacked
   :func:`~repro.core.optimizer.prepare_ask_fleet` pass — one fused prior
   sample, one shared encoding, one fused dedup sweep — before the
   already-fused posterior scoring and submission.

Campaign fleets built from transfer-learning searches constructed with
``VAEABOSearch(defer_transfer_fit=True)`` additionally get their initial
``fit_transfer_prior`` VAE fits fused into
:class:`~repro.core.vae.tvae.VAEFleet` passes when the runner starts them
(``batch_vae_fits``), instead of paying K solo VAE trainings up front.

Because each campaign's operations run in exactly the order the sequential
loop would run them, and the fleet fit is bit-identical per forest, the
per-campaign :class:`~repro.core.search.SearchResult`\\ s are **bit-identical**
to running the same seeds through ``CBOSearch.run`` one by one — the batch
runner only changes wall-clock time (``benchmarks/bench_multi_campaign.py``
measures the effect; the identity is pinned by the test suite).  One
carve-out: campaigns using the opt-in ``overhead="measured"`` model charge
their *measured* Python time as virtual overhead, and a batched fleet fit's
wall-clock is shared rather than attributed per campaign, so measured-mode
virtual timelines differ between the two executions (the default analytic
model depends only on campaign state and is exactly identical).

The fleet-fusion groups are planned from the **active set of the tick**, by
the shared pure function :func:`~repro.service.grouping.plan_tick_groups` —
nothing about a group survives the tick.  That is what makes the runner
**elastic**: :class:`ElasticCampaignRunner` admits campaigns mid-flight
(:meth:`~ElasticCampaignRunner.admit`) under admission control
(``max_inflight`` overall, ``max_inflight_per_tenant`` per tenant), lets
finished or quarantined campaigns leave, and simply re-plans the groups each
tick from whoever is active.  Per-campaign bit-identity to an isolated
sequential run holds regardless of when a campaign joins or leaves the
fleet, because each campaign's own phase order is unchanged and every fused
pass is bit-identical per member.

Campaigns may also share a :class:`~repro.service.SharedWorkerPool` through
``CBOSearch(evaluator_factory=pool.evaluator_factory())``, in which case they
compete for the same workers on one clock — the service deployment scenario
(results then legitimately differ from private-worker runs).

**Multi-core execution** (``step_workers``): each tick the active set is
partitioned into shards by the pure plan
:func:`~repro.service.grouping.plan_step_shards`, every shard runs the
complete per-tick pipeline independently (thread pool by default, one
process per shard of *whole campaigns* with ``step_backend="process"``), and
the shard results are reduced onto the runner in shard order.  Because the
shard plan depends only on the active-set order and ``step_shards`` — never
on worker count or thread timing — and every fused pass is bit-identical per
member, ``step_workers=1`` and ``step_workers=N`` produce bitwise-identical
campaigns; fusion groups form *within* a shard, so sharding only trades
fusion hit rate against parallelism (see docs/architecture.md §15).
"""

from __future__ import annotations

import os
import threading
from collections import defaultdict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.journal import CampaignJournal, open_journal_reader
from repro.core.optimizer import prepare_ask_fleet
from repro.core.search import CampaignExecution, CBOSearch, SearchResult
from repro.core.space import Configuration
from repro.core.surrogate.gaussian_process import (
    GaussianProcessSurrogate,
    GPFleet,
    gp_fleet_key,
)
from repro.core.surrogate.random_forest import (
    RandomForestSurrogate,
    fit_forest_fleet,
    fleet_compatibility_key,
    predict_forest_fleet,
)
from repro.core.vae.tvae import VAEFleet, vae_fleet_key
from repro.service.grouping import plan_step_shards, plan_tick_groups

__all__ = [
    "CampaignSpec",
    "CampaignRunner",
    "ElasticCampaignRunner",
    "QuarantinedCampaign",
]


@dataclass
class CampaignSpec:
    """One campaign to run: a configured search plus its run budget.

    ``journal_dir`` enables the campaign's crash-safe journal (see
    :mod:`repro.core.journal`): the runner checkpoints the campaign at every
    batch tick, so a crashed or quarantined campaign can be resumed with
    :meth:`~repro.core.search.CampaignExecution.resume`.  With
    ``resume_from_journal`` the runner *attaches* instead of creating: when
    ``journal_dir`` already holds a journal the campaign resumes from its
    last checkpoint (bit-identically — the registry's create-or-attach
    semantics), and only starts fresh when the directory is empty.
    ``tenant`` labels the campaign's owner for the elastic runner's
    admission control and the shared pool's per-tenant slot accounting.
    """

    search: CBOSearch
    max_time: float = 3600.0
    max_evaluations: Optional[int] = None
    initial_configurations: Optional[Sequence[Configuration]] = None
    label: str = ""
    journal_dir: Optional[object] = None
    tenant: str = "default"
    resume_from_journal: bool = False


@dataclass
class QuarantinedCampaign:
    """One campaign the runner isolated after an error (quarantine mode).

    Attributes
    ----------
    index:
        The campaign's position in the runner's spec list.
    label:
        The spec's label (may be empty).
    phase:
        The batch-tick phase the error surfaced in
        (``start``/``collect``/``tell``/``fit``/``refresh``/``ask``/
        ``submit``/``checkpoint``).
    error:
        The exception that triggered the quarantine.
    """

    index: int
    label: str
    phase: str
    error: BaseException


#: Sentinel returned by the runner's guarded phase calls when the campaign
#: was quarantined mid-call (distinct from any legitimate return value).
_FAILED = object()


class CampaignRunner:
    """Run several independent campaigns concurrently over batch ticks.

    Parameters
    ----------
    specs:
        The campaigns to run (order is preserved in the results).
    batch_surrogate_fits:
        Group the due level-wise random-forest refits of one tick into a
        single fleet fit (default).  ``False`` fits each campaign's surrogate
        on its own — same results, sequential-fit wall-clock; kept selectable
        so the benchmark can quantify the batching and the tests can compare
        both paths.
    batch_gp_fits:
        Group the due Gaussian-process refits of one tick into batched
        :class:`~repro.core.surrogate.gaussian_process.GPFleet` passes
        (default): one stacked Cholesky factorisation per full-refit group,
        one batched factor extension per incremental group, grouped by
        :func:`~repro.core.surrogate.gaussian_process.gp_fleet_key` (fleet
        mode plus shapes — unequal history sizes fall back to solo fits).
        Bit-identical per campaign; ``False`` fits each campaign's GP on its
        own — the escape hatch the benchmark and the identity tests compare
        against.
    batch_candidate_scoring:
        Score the candidate pools of one tick's RF-backed asks in one fused
        :func:`~repro.core.surrogate.random_forest.predict_forest_fleet`
        traversal, and the GP-backed asks of equal candidate/training shape
        through one fused
        :meth:`~repro.core.surrogate.gaussian_process.GPFleet.predict`
        cross-kernel pass (default).  Bit-identical to per-campaign scoring.
    batch_vae_fits:
        Fuse the prior-refresh VAE refits that fall due in one tick
        (campaigns running the continuous-retuning scenario,
        ``CBOSearch(prior_refresh_interval=...)``) into a single
        :class:`~repro.core.vae.tvae.VAEFleet` training pass per compatible
        group (default), and likewise the construction-time transfer-prior
        VAE fits of searches built with
        ``VAEABOSearch(defer_transfer_fit=True)`` when their campaigns
        start.  Bit-identical per campaign to refitting each VAE on its
        own; ``False`` keeps the per-campaign fits.
    batch_asks:
        The fleet ask (default): group each tick's due asks by search space
        and encoding (:func:`~repro.service.grouping.plan_tick_groups`) and
        run each fused group's candidate generation as one stacked
        :func:`~repro.core.optimizer.prepare_ask_fleet` pass — one fused
        prior sample, one shared ``to_unit_array``/one-hot encoding, one
        fused dedup sweep against each member's own evaluated keys.
        Bit-identical per campaign (each member's RNG draws keep their solo
        order); ``False`` is the escape hatch that prepares every ask solo.
    run_batcher:
        Optional service-style evaluation batcher: a callable receiving the
        tick's submissions as ``[(spec_index, configurations), ...]`` and
        returning the per-submission runtime lists, replacing the
        per-configuration ``run_function`` calls inside ``submit``.  The
        returned values must equal what each campaign's run function would
        have produced (e.g.
        :meth:`~repro.hep.surrogate_runtime.SurrogateRuntimeFleet.run_batch`,
        which fuses the per-request surrogate-model inferences of all
        campaigns into one vectorised pass).
    on_campaign_error:
        What to do when stepping one campaign raises: ``"raise"`` (default)
        propagates the exception and aborts the whole batch — the historic
        behaviour; ``"quarantine"`` isolates the failing campaign instead:
        it is checkpointed to its journal (when journaled, hence resumable),
        recorded in :attr:`quarantined`, and removed from the batch, and the
        surviving campaigns' fleet groupings re-form on the next tick as
        usual (groups are rebuilt from the active set every tick).  A fused
        fleet pass that fails falls back to per-campaign solo fits first —
        only campaigns whose *solo* step also fails are quarantined.
        Quarantined campaigns still contribute their partial
        :class:`~repro.core.search.SearchResult`.
    step_workers:
        Number of workers stepping tick shards in parallel.  ``None``
        (default) reads the ``REPRO_STEP_WORKERS`` environment variable
        (falling back to 1 — the sequential runner).  With 1 worker the
        tick runs exactly as before; with N the shards of the tick run
        concurrently.  Results are bitwise identical either way: the shard
        plan and the shard-order reduction never depend on worker count.
    step_shards:
        Number of shards the active set is partitioned into each tick
        (defaults to ``step_workers``).  The shard plan — not the worker
        count — is what determines fusion-group composition: fusion happens
        within a shard, so cross-shard groups fall back solo.  Pin
        ``step_shards=1`` to keep global fusion groups while still using
        ``step_workers`` for intra-shard parallel scoring.
    step_backend:
        ``"thread"`` (default) steps shards on a shared thread pool —
        per-tick granularity, zero-copy by construction.
        ``"process"`` runs each shard's campaigns to completion in a forked
        worker process instead (whole-campaign granularity: per-tick
        process hops cannot round-trip live state bit-identically); it
        requires every spec to be journaled, because the parent rebuilds
        each result from the child's journal through the
        :class:`~repro.core.journal.JournalReader` mmap views — the
        zero-copy channel — rather than pickling histories over the pipe.
        Only :meth:`run` supports the process backend.
    """

    def __init__(
        self,
        specs: Sequence[CampaignSpec],
        batch_surrogate_fits: bool = True,
        batch_candidate_scoring: bool = True,
        batch_vae_fits: bool = True,
        batch_gp_fits: bool = True,
        batch_asks: bool = True,
        run_batcher: Optional[Callable] = None,
        on_campaign_error: str = "raise",
        step_workers: Optional[int] = None,
        step_shards: Optional[int] = None,
        step_backend: str = "thread",
    ):
        if not specs:
            raise ValueError("need at least one campaign")
        self._configure(
            batch_surrogate_fits=batch_surrogate_fits,
            batch_candidate_scoring=batch_candidate_scoring,
            batch_vae_fits=batch_vae_fits,
            batch_gp_fits=batch_gp_fits,
            batch_asks=batch_asks,
            run_batcher=run_batcher,
            on_campaign_error=on_campaign_error,
            step_workers=step_workers,
            step_shards=step_shards,
            step_backend=step_backend,
        )
        self.specs = list(specs)

    def _configure(
        self,
        batch_surrogate_fits: bool,
        batch_candidate_scoring: bool,
        batch_vae_fits: bool,
        batch_gp_fits: bool,
        batch_asks: bool,
        run_batcher: Optional[Callable],
        on_campaign_error: str,
        step_workers: Optional[int] = None,
        step_shards: Optional[int] = None,
        step_backend: str = "thread",
    ) -> None:
        """Shared option validation and live-state initialisation."""
        if on_campaign_error not in ("raise", "quarantine"):
            raise ValueError(
                f"unknown on_campaign_error {on_campaign_error!r} "
                "(expected 'raise' or 'quarantine')"
            )
        if step_backend not in ("thread", "process"):
            raise ValueError(
                f"unknown step_backend {step_backend!r} "
                "(expected 'thread' or 'process')"
            )
        if step_workers is None:
            step_workers = int(os.environ.get("REPRO_STEP_WORKERS", "1"))
        if step_workers < 1:
            raise ValueError("step_workers must be >= 1")
        if step_shards is None:
            step_shards = step_workers
        if step_shards < 1:
            raise ValueError("step_shards must be >= 1")
        self.specs: List[CampaignSpec] = []
        self.batch_surrogate_fits = bool(batch_surrogate_fits)
        self.batch_candidate_scoring = bool(batch_candidate_scoring)
        self.batch_vae_fits = bool(batch_vae_fits)
        self.batch_gp_fits = bool(batch_gp_fits)
        self.batch_asks = bool(batch_asks)
        self.run_batcher = run_batcher
        self.on_campaign_error = on_campaign_error
        self.step_workers = int(step_workers)
        self.step_shards = int(step_shards)
        self.step_backend = step_backend
        self._step_executor: Optional[ThreadPoolExecutor] = None
        #: Serialises ``run_batcher`` invocations: parallel shards each batch
        #: their own submissions, but the batcher callable itself need not be
        #: thread-safe.
        self._batcher_lock = threading.Lock()
        #: Per-spec results of a process-backend run (None otherwise).
        self._process_results: Optional[List[Optional[SearchResult]]] = None
        #: Campaigns isolated by quarantine mode during the last :meth:`run`.
        self.quarantined: List[QuarantinedCampaign] = []
        self._index_of: Dict[int, int] = {}
        self._dropped_ids: set = set()
        #: Executions per spec index (None until started / if start failed).
        self._executions: List[Optional[CampaignExecution]] = []
        #: Executions currently advancing in batch ticks.
        self._active: List[CampaignExecution] = []
        self._reset_counters()

    def _reset_counters(self) -> None:
        #: Number of batch ticks executed by the last :meth:`run`.
        self.num_ticks = 0
        #: Number of fleet fits and of surrogates fitted through them.
        self.num_fleet_fits = 0
        self.num_fleet_fitted_surrogates = 0
        #: GP fleet counters: batched full-refit passes, batched factor
        #: extensions, GPs advanced through either, and fused posterior
        #: scoring passes.
        self.num_gp_fleet_full_fits = 0
        self.num_gp_fleet_extends = 0
        self.num_gp_fleet_members = 0
        self.num_gp_fleet_predicts = 0
        #: Prior-refresh counters: refreshes overall, fused VAEFleet passes,
        #: and VAEs trained through those passes.
        self.num_prior_refreshes = 0
        self.num_vae_fleet_fits = 0
        self.num_vae_fleet_members = 0
        #: Fleet-ask counters: stacked prepare_ask_fleet passes and
        #: campaigns whose candidate generation ran through them.
        self.num_ask_fleet_passes = 0
        self.num_ask_fleet_members = 0
        #: Construction-time transfer-VAE counters: fused VAEFleet passes
        #: over deferred fit_transfer_prior fits and members trained so.
        self.num_transfer_fleet_fits = 0
        self.num_transfer_fleet_members = 0
        #: Solo surrogate fits a tick ran because no fused group formed —
        #: together with the fleet counters this yields the fusion hit rate.
        self.num_solo_fits = 0

    # --------------------------------------------------------- step executor
    def _executor(self) -> ThreadPoolExecutor:
        """The (lazily created) shared thread pool stepping tick shards."""
        if self._step_executor is None:
            self._step_executor = ThreadPoolExecutor(
                max_workers=self.step_workers, thread_name_prefix="repro-step"
            )
        return self._step_executor

    def close(self) -> None:
        """Shut down the step thread pool (idempotent; recreated on demand).

        :meth:`run` closes on exit; call this yourself when driving
        :meth:`tick` directly (e.g. an embedded elastic runner) and the
        runner is done.
        """
        if self._step_executor is not None:
            self._step_executor.shutdown(wait=True)
            self._step_executor = None

    @staticmethod
    def _pool_affinity(execution: CampaignExecution):
        """Affinity token pinning same-pool campaigns to one shard.

        Campaigns sharing a :class:`~repro.service.SharedWorkerPool` must
        step together: their virtual-time events interleave on one clock,
        and replaying that interleaving in arrival order (the within-shard
        order) keeps shared-pool runs deterministic under parallel stepping.
        Private-pool and private-evaluator campaigns have no affinity.
        """
        pool = getattr(execution.evaluator, "pool", None)
        if pool is None or len(pool.clients) <= 1:
            return None
        return id(pool)

    # ------------------------------------------------------------------- run
    def run(self) -> List[SearchResult]:
        """Execute all campaigns; per-spec results in spec order."""
        if self.step_backend == "process" and self.step_workers > 1:
            return self._run_process_shards()
        try:
            self._begin()
            while self._active:
                self.tick()
            return self.results()
        finally:
            self.close()

    def results(self) -> List[Optional[SearchResult]]:
        """Per-spec results in spec order (None for never-started specs)."""
        if self._process_results is not None:
            return list(self._process_results)
        return [
            None if execution is None else execution.result()
            for execution in self._executions
        ]

    def _begin(self) -> None:
        """Start every spec's execution and reset the run-scoped state."""
        self.quarantined = []
        self._dropped_ids = set()
        self._index_of = {}
        self._executions = []
        self._active = []
        self._process_results = None
        self._reset_counters()
        self._start_specs(range(len(self.specs)))

    def _start_specs(self, indices: Sequence[int]) -> None:
        """Start (or resume) the given specs and submit their initial batches.

        With a run batcher, the initialisation batches of all newly started
        campaigns are evaluated in one fused pass (they are the largest
        submissions of the whole run).  In quarantine mode a spec whose
        start itself raises is recorded with phase ``"start"`` instead of
        aborting the batch.
        """
        if self.batch_vae_fits:
            self._fit_transfer_fleet(indices)
        batching_runs = self.run_batcher is not None
        started: List[Tuple[int, CampaignExecution]] = []
        for index in indices:
            spec = self.specs[index]
            while len(self._executions) <= index:
                self._executions.append(None)
            try:
                if (
                    spec.resume_from_journal
                    and spec.journal_dir is not None
                    and CampaignJournal.exists(spec.journal_dir)
                ):
                    execution = spec.search.resume(spec.journal_dir)
                else:
                    execution = spec.search.start(
                        max_time=spec.max_time,
                        max_evaluations=spec.max_evaluations,
                        initial_configurations=spec.initial_configurations,
                        defer_initial_submit=batching_runs,
                        journal_dir=spec.journal_dir,
                    )
            except Exception as error:
                if self.on_campaign_error != "quarantine":
                    raise
                self.quarantined.append(
                    QuarantinedCampaign(
                        index=index, label=spec.label, phase="start", error=error
                    )
                )
                continue
            self._executions[index] = execution
            self._index_of[id(execution)] = index
            self._active.append(execution)
            started.append((index, execution))
        if batching_runs:
            initial = [
                (index, execution._pending_batch)
                for index, execution in started
                if execution._pending_batch
            ]
            if initial:
                runtimes = self._run_batch(initial)
                for (index, _), values in zip(initial, runtimes):
                    self._executions[index].submit_prepared(values)

    def _fit_transfer_fleet(self, indices: Sequence[int]) -> None:
        """Fuse the deferred construction-time transfer-VAE fits of a fleet.

        Searches built with ``VAEABOSearch(defer_transfer_fit=True)`` carry
        their untrained transfer VAE as
        :attr:`~repro.core.search.CBOSearch.pending_transfer_fit`; groups of
        compatible fits (same architecture, design shape and training
        budget — :func:`~repro.core.vae.tvae.vae_fleet_key`) train as one
        :class:`~repro.core.vae.tvae.VAEFleet` pass before their campaigns
        start, bit-identical per member to the eager solo fit.  Singletons
        and leftover members are trained by the solo backstop inside
        ``CampaignExecution.__init__``
        (:meth:`~repro.core.search.CBOSearch.complete_pending_transfer_fit`).
        A fused pass that fails under quarantine leaves its members to that
        same backstop.  The retry is a *valid* prior fit, not necessarily
        the eager-path bits: a pass that dies mid-training has already
        consumed member RNG draws (the same honest caveat as the fused
        prior-refresh fallback in :meth:`_refresh_priors`).
        """
        pending: List[Tuple[CBOSearch, object]] = []
        for index in indices:
            search = self.specs[index].search
            fit = getattr(search, "pending_transfer_fit", None)
            if fit is not None:
                pending.append((search, fit))
        for group in plan_tick_groups(
            pending,
            key_of=lambda pair: vae_fleet_key(
                pair[1].vae,
                pair[1].design.shape[0],
                pair[1].epochs,
                pair[1].batch_size,
            ),
            identity_of=lambda pair: id(pair[1].vae),
        ):
            if not group.fused:
                continue
            first = group.members[0][1]
            try:
                VAEFleet([fit.vae for _, fit in group.members]).fit(
                    [fit.design for _, fit in group.members],
                    epochs=first.epochs,
                    batch_size=first.batch_size,
                )
            except Exception:
                if self.on_campaign_error != "quarantine":
                    raise
                continue
            self.num_transfer_fleet_fits += 1
            self.num_transfer_fleet_members += len(group.members)
            for search, _ in group.members:
                search.pending_transfer_fit = None

    def tick(self) -> None:
        """Advance every active campaign by one batch tick.

        The active set is partitioned into shards by the pure plan
        :func:`~repro.service.grouping.plan_step_shards` (campaigns sharing
        a worker pool are pinned together); each shard runs the complete
        per-tick pipeline — fleet-fusion groups are planned fresh from the
        *shard's* members — and the shard results (survivors, quarantine
        records, counter deltas) are reduced onto the runner **in shard
        order**, never in completion order.  With ``step_shards=1`` (the
        default when ``step_workers`` is 1) this is exactly the historic
        single-pipeline tick with global fusion groups.  Campaigns that
        finish or are quarantined during the tick leave the active set at
        its end.
        """
        self.num_ticks += 1
        shards = plan_step_shards(
            self._active, self.step_shards, affinity_of=self._pool_affinity
        )
        if len(shards) <= 1:
            # A single shard steps inline; with spare workers its candidate
            # scoring may parallelise inside the tick instead.
            parallel_scoring = self.step_workers > 1
            contexts = [
                _ShardTick(self, shard, parallel_scoring=parallel_scoring).advance()
                for shard in shards
            ]
        elif self.step_workers > 1:
            contexts = list(
                self._executor().map(
                    lambda shard: _ShardTick(self, shard).advance(), shards
                )
            )
        else:
            contexts = [_ShardTick(self, shard).advance() for shard in shards]
        # Deterministic reduction: shard order, not completion order.
        active: List[CampaignExecution] = []
        for context in contexts:
            for name, delta in context.counters.items():
                setattr(self, name, getattr(self, name) + delta)
            self.quarantined.extend(context.quarantined)
            self._dropped_ids.update(context.dropped_ids)
            active.extend(context.survivors)
        self._active = active

    # --------------------------------------------------------- process shards
    def _run_process_shards(self) -> List[SearchResult]:
        """Run the campaigns as one forked worker process per spec shard.

        Each child runs a sequential :class:`CampaignRunner` over its shard
        of whole campaigns (per-tick process stepping cannot round-trip live
        optimizer/evaluator state bit-identically, so the process backend
        shards at campaign granularity) and only scalars cross the result
        pipe: every spec must be journaled, and the parent rebuilds each
        :class:`~repro.core.search.SearchResult` from the child's final
        checkpoint through the :class:`~repro.core.journal.JournalReader`
        mmap views — histories return zero-copy, never pickled.  Counters
        are summed and quarantine records merged in shard order;
        ``num_ticks`` is the maximum over shards (the parallel tick depth).
        """
        import multiprocessing

        for index, spec in enumerate(self.specs):
            if spec.journal_dir is None:
                raise ValueError(
                    "step_backend='process' requires journaled campaigns "
                    f"(spec {index} has no journal_dir): results return "
                    "through JournalReader mmap views, not pickles"
                )
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "step_backend='process' requires the fork start method"
            ) from None
        self.quarantined = []
        self._dropped_ids = set()
        self._index_of = {}
        self._executions = [None] * len(self.specs)
        self._active = []
        self._reset_counters()
        shards = plan_step_shards(list(range(len(self.specs))), self.step_shards)
        workers: List[Tuple[List[int], object, object]] = []
        for shard in shards:
            receiver, sender = context.Pipe(duplex=False)
            process = context.Process(
                target=_run_spec_shard, args=(self, shard, sender)
            )
            process.start()
            sender.close()
            workers.append((shard, receiver, process))
        results: List[Optional[SearchResult]] = [None] * len(self.specs)
        failures: List[str] = []
        payloads: List[Tuple[List[int], Optional[Dict]]] = []
        for shard, receiver, process in workers:
            try:
                payload = receiver.recv()
            except EOFError:
                payload = {"error": "shard process died without a result"}
            receiver.close()
            process.join()
            payloads.append((shard, payload))
        for shard, payload in payloads:
            error = payload.get("error")
            if error is not None:
                failures.append(f"shard {shard}: {error}")
                continue
            for name, delta in payload["counters"].items():
                setattr(self, name, getattr(self, name) + delta)
            self.num_ticks = max(self.num_ticks, payload["num_ticks"])
            for index, label, phase, message in payload["quarantined"]:
                self.quarantined.append(
                    QuarantinedCampaign(
                        index=index,
                        label=label,
                        phase=phase,
                        error=RuntimeError(message),
                    )
                )
            for index, summary in zip(shard, payload["results"]):
                if summary is None:
                    continue
                results[index] = self._result_from_journal(index, summary)
        if failures:
            raise RuntimeError(
                "process-backend shards failed: " + "; ".join(failures)
            )
        self._process_results = results
        return list(results)

    def _result_from_journal(self, index: int, summary: Dict) -> SearchResult:
        """Rebuild one child campaign's result from its journal (zero-copy).

        The child sends only scalars (incumbent, utilization, budgets); the
        history and busy intervals come from the journal's final checkpoint
        through the mmap reader — shared pages, no serialisation.
        """
        spec = self.specs[index]
        reader = open_journal_reader(
            spec.journal_dir, spec.search.space, objective=spec.search.objective
        )
        history = reader.history()
        return SearchResult(
            history=history,
            best_configuration=summary["best_configuration"],
            best_runtime=summary["best_runtime"],
            best_objective=summary["best_objective"],
            num_evaluations=len(history),
            worker_utilization=summary["worker_utilization"],
            search_time=summary["search_time"],
            num_workers=summary["num_workers"],
            busy_intervals=reader.intervals(),
        )

    # ------------------------------------------------------------ run batches
    def _run_batch(self, requests: List[Tuple[int, List[Configuration]]]) -> List:
        """Invoke the run batcher and validate its result shape.

        A silently short or misaligned result would pair campaigns with each
        other's runtimes — fail loudly instead.
        """
        runtimes = self.run_batcher(requests)
        if len(runtimes) != len(requests):
            raise ValueError(
                f"run_batcher returned {len(runtimes)} runtime lists for "
                f"{len(requests)} submissions"
            )
        return runtimes

    #: Element budget of one fused GP scoring sheet (the ``(nc, Σn)``
    #: cross-kernel).  Fusing amortises NumPy dispatch, but a sheet that
    #: outgrows the CPU cache pays more in memory traffic than it saves in
    #: call overhead (measured on the 1-CPU box), so big ticks are scored in
    #: cache-sized chunks — still bit-identical, chunk composition only
    #: changes wall-clock.  With spare ``step_workers`` the chunks of a
    #: single-shard tick score concurrently (one cache-sized sheet per
    #: core), which is the NUMA-friendly parallel decomposition.
    gp_predict_chunk_elements = 8192


class _ShardTick:
    """One shard's complete batch tick: pipeline, local state, reductions.

    The parallel runner steps each shard's per-tick pipeline (collect →
    tell/fit → refresh → ask → score → submit → checkpoint) independently.
    Everything a shard mutates *outside* its own campaigns lives here —
    quarantine records, dropped ids, counter deltas, the surviving members —
    and the runner reduces the contexts in shard order after all shards
    return.  Fixed shard plan + fixed reduction order is the bit-identity
    contract: no result, counter total or quarantine record depends on
    worker count or thread timing.

    This class is the former body of ``CampaignRunner.tick`` and its fleet
    helpers, re-rooted so all tick-scoped mutable state is shard-local; with
    one shard per tick (``step_shards=1``) it executes the historic
    single-pipeline tick with global fusion groups, bit for bit.
    """

    def __init__(
        self,
        runner: "CampaignRunner",
        members: List[CampaignExecution],
        parallel_scoring: bool = False,
    ):
        self.runner = runner
        self.members = members
        #: Whether candidate scoring may use the runner's thread pool from
        #: inside this shard.  Only ever true for a single-shard tick — a
        #: shard already running *on* the pool submitting more work to it
        #: could deadlock — and decided by the shard plan, not by timing,
        #: so it cannot perturb bit-identity (scoring is bit-identical
        #: chunked or not, threaded or not).
        self.parallel_scoring = parallel_scoring
        self.quarantined: List[QuarantinedCampaign] = []
        self.dropped_ids: set = set()
        self.counters: Dict[str, int] = defaultdict(int)
        self.survivors: List[CampaignExecution] = []

    # ----------------------------------------------------------- error policy
    def _quarantine(
        self, execution: CampaignExecution, phase: str, error: BaseException
    ) -> None:
        """Isolate one failing campaign: checkpoint, record, drop from batch."""
        index = self.runner._index_of[id(execution)]
        self.dropped_ids.add(id(execution))
        self.quarantined.append(
            QuarantinedCampaign(
                index=index,
                label=self.runner.specs[index].label,
                phase=phase,
                error=error,
            )
        )
        try:
            # Best effort: a journaled campaign stays resumable from its last
            # consistent state even when the quarantine-time checkpoint fails.
            execution.maybe_checkpoint(force=True)
        except Exception:
            pass

    def _step(self, execution: CampaignExecution, phase: str, call: Callable):
        """Run one campaign-local phase call under the error policy.

        Returns the call's result, or the ``_FAILED`` sentinel when the
        campaign was quarantined (quarantine mode only — otherwise the
        exception propagates and aborts the batch, the historic behaviour).
        """
        try:
            return call()
        except Exception as error:
            if self.runner.on_campaign_error != "quarantine":
                raise
            self._quarantine(execution, phase, error)
            return _FAILED

    def _surviving(self, executions: List[CampaignExecution]) -> List[CampaignExecution]:
        """Filter out campaigns quarantined earlier in this shard's tick."""
        if not self.dropped_ids:
            return executions
        return [e for e in executions if id(e) not in self.dropped_ids]

    # --------------------------------------------------------------- pipeline
    def advance(self) -> "_ShardTick":
        """Run the full per-tick pipeline over this shard's members.

        Fleet-fusion groups are planned fresh from the shard's members
        (:func:`~repro.service.grouping.plan_tick_groups`); campaigns that
        finish or are quarantined during the tick are excluded from
        :attr:`survivors`.  Returns ``self`` for executor mapping.
        """
        runner = self.runner
        index_of = runner._index_of
        ticking: List[CampaignExecution] = []
        fit_due: List[CampaignExecution] = []
        gp_due: List[CampaignExecution] = []
        for execution in self.members:
            completed = self._step(execution, "collect", execution.collect)
            if completed is _FAILED:
                continue
            if completed is None:
                # The campaign just finished: commit its final checkpoint
                # so ``finished`` is durably recorded.
                self._step(
                    execution,
                    "checkpoint",
                    lambda e=execution: e.maybe_checkpoint(force=True),
                )
                continue
            due = self._step(execution, "tell", execution.ingest_collected)
            if due is _FAILED:
                continue
            if due:
                if runner.batch_surrogate_fits and self._fleet_eligible(execution):
                    fit_due.append(execution)
                elif runner.batch_gp_fits and isinstance(
                    execution.optimizer.surrogate, GaussianProcessSurrogate
                ):
                    gp_due.append(execution)
                else:
                    self.counters["num_solo_fits"] += 1
                    if (
                        self._step(
                            execution, "fit", execution.optimizer.fit_now
                        )
                        is _FAILED
                    ):
                        continue
            if self._step(execution, "tell", execution.charge_tell) is _FAILED:
                continue
            ticking.append(execution)
        self._fit_fleet(self._surviving(fit_due))
        self._fit_gp_fleet(self._surviving(gp_due))
        ticking = self._surviving(ticking)
        self._refresh_priors(self._surviving(ticking))
        ticking = self._surviving(ticking)

        # ---- ask: fused candidate generation (the fleet ask), fused scoring
        if runner.batch_asks:
            pairs = self._begin_asks_fleet(ticking)
        else:
            pairs = []
            for execution in ticking:
                prepared = self._step(execution, "ask", execution.begin_ask)
                if prepared is not _FAILED:
                    pairs.append((execution, prepared))
        scored: Dict[int, Tuple] = {}
        if runner.batch_candidate_scoring:
            fused = [
                (execution, prepared)
                for execution, prepared in pairs
                if prepared is not None
                and prepared.proposals is None
                and prepared.wants_scores
                and isinstance(execution.optimizer.surrogate, RandomForestSurrogate)
            ]
            # Campaigns may tune different spaces: fuse only pools of
            # equal encoded width (the traversal stacks the matrices).
            for group in plan_tick_groups(
                fused, key_of=lambda pair: int(pair[1].encoded.shape[1])
            ):
                if not group.fused:
                    continue
                results = predict_forest_fleet(
                    [
                        (execution.optimizer.surrogate, prepared.encoded)
                        for execution, prepared in group.members
                    ]
                )
                scored.update(
                    (id(execution), result)
                    for (execution, _), result in zip(group.members, results)
                )
            self._score_gp_fleet(pairs, scored)

        # With spare workers (single-shard tick), solo candidate scoring
        # inside finish_ask parallelises over its score_shards through the
        # optimizer's own score_executor hook — temporarily wired to the
        # runner's pool for optimizers that shard but have no executor.
        wired = []
        if self.parallel_scoring:
            for execution, prepared in pairs:
                optimizer = execution.optimizer
                if (
                    optimizer.score_executor is None
                    and optimizer.score_shards > 1
                ):
                    optimizer.score_executor = runner._executor()
                    wired.append(optimizer)
        try:
            # ---- submit: batch the run-function calls when a batcher is given
            submissions: List[Tuple[int, CampaignExecution, List[Configuration]]] = []
            for execution, prepared in pairs:
                scores = scored.get(id(execution))
                if scores is not None:
                    batch = self._step(
                        execution,
                        "ask",
                        lambda e=execution, s=scores: e.finish_ask(*s),
                    )
                else:
                    batch = self._step(execution, "ask", execution.finish_ask)
                if batch is not None and batch is not _FAILED:
                    submissions.append((index_of[id(execution)], execution, batch))
        finally:
            for optimizer in wired:
                optimizer.score_executor = None
        if runner.run_batcher is not None and submissions:
            with runner._batcher_lock:
                runtimes = runner._run_batch(
                    [(idx, batch) for idx, _, batch in submissions]
                )
            for (_, execution, _), values in zip(submissions, runtimes):
                execution.submit_prepared(values)
        else:
            for _, execution, _ in submissions:
                self._step(execution, "submit", execution.submit_prepared)
        for execution in self._surviving(ticking):
            self._step(execution, "checkpoint", execution.maybe_checkpoint)
        self.survivors = [
            execution
            for execution in self._surviving(ticking)
            if not execution.finished
        ]
        return self

    # --------------------------------------------------------------- fleet ask
    def _begin_asks_fleet(self, ticking: List[CampaignExecution]) -> List[Tuple]:
        """Run the tick's due asks as stacked per-space fleet passes.

        Each campaign's eligibility half
        (:meth:`~repro.core.search.CampaignExecution.begin_ask_request` —
        budget check, idle-worker count) runs first in tick order; the
        askable campaigns are then grouped by search space and encoding
        (:func:`~repro.service.grouping.plan_tick_groups` — groups re-form
        every tick, so elastic join/leave just changes the next tick's
        plan) and each fused group's candidate generation runs as one
        :func:`~repro.core.optimizer.prepare_ask_fleet` pass.  Singleton
        groups and shared-optimizer degeneracies complete solo — the fleet
        of one *is* the solo path.  Bit-identical per campaign either way;
        returned pairs keep tick order so downstream submission order is
        unchanged.

        A fused pass that fails under quarantine falls back to solo
        ``complete_ask`` calls; like every fused-fallback in this runner the
        retry is a *valid* ask, not necessarily the solo-path bits — the
        failed pass may already have consumed member RNG draws.
        """
        prepared_of: Dict[int, object] = {}
        askable: List[Tuple[CampaignExecution, int]] = []
        for execution in ticking:
            n = self._step(execution, "ask", execution.begin_ask_request)
            if n is _FAILED:
                continue
            if n is None:
                prepared_of[id(execution)] = None
            else:
                askable.append((execution, n))

        def solo(members: Sequence[Tuple[CampaignExecution, int]]) -> None:
            for execution, n in members:
                prepared = self._step(
                    execution, "ask", lambda e=execution, m=n: e.complete_ask(m)
                )
                if prepared is not _FAILED:
                    prepared_of[id(execution)] = prepared

        for group in plan_tick_groups(
            askable,
            key_of=lambda pair: (
                tuple(pair[0].optimizer.space.parameters),
                pair[0].optimizer.encoding,
            ),
            identity_of=lambda pair: id(pair[0].optimizer),
        ):
            if not group.fused:
                solo(group.members)
                continue
            try:
                prepared_list = prepare_ask_fleet(
                    [(execution.optimizer, n) for execution, n in group.members]
                )
            except Exception:
                if self.runner.on_campaign_error != "quarantine":
                    raise
                solo(group.members)
                continue
            self.counters["num_ask_fleet_passes"] += 1
            self.counters["num_ask_fleet_members"] += len(group.members)
            for (execution, _), prepared in zip(group.members, prepared_list):
                accepted = self._step(
                    execution,
                    "ask",
                    lambda e=execution, p=prepared: e.accept_prepared_ask(p),
                )
                if accepted is not _FAILED:
                    prepared_of[id(execution)] = accepted
        return [
            (execution, prepared_of[id(execution)])
            for execution in ticking
            if id(execution) in prepared_of
        ]

    # ------------------------------------------------------------ fleet fits
    @staticmethod
    def _fleet_eligible(execution: CampaignExecution) -> bool:
        surrogate = execution.optimizer.surrogate
        return (
            isinstance(surrogate, RandomForestSurrogate)
            and surrogate.fit_algorithm == "levelwise"
        )

    def _fit_fleet(self, fit_due: List[CampaignExecution]) -> None:
        """Fit the due RF surrogates, grouped by compatible hyperparameters."""
        groups = plan_tick_groups(
            fit_due,
            key_of=lambda e: fleet_compatibility_key(
                e.optimizer.surrogate, e.optimizer.training_data()[0].shape[1]
            ),
            identity_of=lambda e: id(e.optimizer.surrogate),
        )
        for group in groups:
            if not group.fused:
                # A single campaign (or a degenerate shared-surrogate setup):
                # the sequential path is the fleet of one.
                for execution in group.members:
                    self.counters["num_solo_fits"] += 1
                    self._step(execution, "fit", execution.optimizer.fit_now)
                continue
            try:
                fit_forest_fleet(
                    [
                        (execution.optimizer.surrogate, *execution.optimizer.training_data())
                        for execution in group.members
                    ]
                )
            except Exception:
                if self.runner.on_campaign_error != "quarantine":
                    raise
                # Degrade to solo refits; only campaigns whose solo fit also
                # fails are quarantined.
                for execution in group.members:
                    self._step(execution, "fit", execution.optimizer.fit_now)
                continue
            for execution in group.members:
                execution.optimizer.mark_fitted()
            self.counters["num_fleet_fits"] += 1
            self.counters["num_fleet_fitted_surrogates"] += len(group.members)

    def _fit_gp_fleet(self, fit_due: List[CampaignExecution]) -> None:
        """Fit the due GP surrogates, grouped by fleet mode and shape.

        :func:`~repro.core.surrogate.gaussian_process.gp_fleet_key` splits
        the tick's due GPs into batched full refits (equal total sizes) and
        batched factor extensions (equal old/new sizes) — each member keeps
        its own ``refresh_growth`` schedule, so one campaign can full-refit
        while its siblings extend.  Groups of one (ragged history sizes are
        the norm for GPs) and degenerate shared-surrogate setups take the
        sequential ``fit_now`` path: a fleet of one is the solo fit.
        """
        items: List[Tuple[CampaignExecution, object, object]] = []
        for execution in fit_due:
            X, y = execution.optimizer.training_data()
            items.append((execution, X, y))

        def gp_key(item):
            execution, X, _ = item
            optimizer = execution.optimizer
            num_new = X.shape[0] - optimizer.fitted_rows
            return gp_fleet_key(optimizer.surrogate, X.shape[0], num_new, X.shape[1])

        for group in plan_tick_groups(
            items,
            key_of=gp_key,
            identity_of=lambda item: id(item[0].optimizer.surrogate),
        ):
            if not group.fused:
                for execution, _, _ in group.members:
                    self.counters["num_solo_fits"] += 1
                    self._step(execution, "fit", execution.optimizer.fit_now)
                continue
            try:
                fleet = GPFleet(
                    [execution.optimizer.surrogate for execution, _, _ in group.members]
                )
                if group.key[0] == "extend":
                    fleet.partial_fit(
                        [
                            X[execution.optimizer.fitted_rows :]
                            for execution, X, _ in group.members
                        ],
                        [
                            y[execution.optimizer.fitted_rows :]
                            for execution, _, y in group.members
                        ],
                    )
                    self.counters["num_gp_fleet_extends"] += 1
                else:
                    fleet.fit(
                        [X for _, X, _ in group.members],
                        [y for _, _, y in group.members],
                    )
                    self.counters["num_gp_fleet_full_fits"] += 1
            except Exception:
                if self.runner.on_campaign_error != "quarantine":
                    raise
                for execution, _, _ in group.members:
                    self._step(execution, "fit", execution.optimizer.fit_now)
                continue
            for execution, _, _ in group.members:
                execution.optimizer.mark_fitted()
            self.counters["num_gp_fleet_members"] += len(group.members)

    def _score_gp_fleet(self, pairs, scored: Dict[int, Tuple]) -> None:
        """Fuse the tick's GP-backed candidate scoring where shapes align.

        Pools of equal candidate shape score through a single
        :meth:`~repro.core.surrogate.gaussian_process.GPFleet.predict`
        cross-kernel pass — bit-identical per campaign to solo scoring;
        training-set sizes may be ragged (the fused cross-kernel works on
        concatenated training rows).  Singleton groups fall through to the
        per-campaign path.  A single-shard tick with spare workers scores
        its cache-sized chunks concurrently on the runner's thread pool;
        results merge in chunk order, so the threading is invisible in the
        outputs.
        """
        pool = [
            (execution, prepared)
            for execution, prepared in pairs
            if prepared is not None
            and prepared.proposals is None
            and prepared.wants_scores
            and isinstance(execution.optimizer.surrogate, GaussianProcessSurrogate)
            and execution.optimizer.surrogate.fitted
        ]
        for group in plan_tick_groups(
            pool,
            key_of=lambda pair: tuple(pair[1].encoded.shape),
            identity_of=lambda pair: id(pair[0].optimizer.surrogate),
        ):
            if not group.fused:
                continue
            chunks = [
                chunk
                for chunk in self._chunk_gp_predicts(group.key[0], group.members)
                if len(chunk) >= 2
            ]

            def score_chunk(chunk):
                return GPFleet(
                    [execution.optimizer.surrogate for execution, _ in chunk]
                ).predict([prepared.encoded for _, prepared in chunk])

            if self.parallel_scoring and len(chunks) > 1:
                futures = [
                    self.runner._executor().submit(score_chunk, chunk)
                    for chunk in chunks
                ]
                outcomes = []
                for future in futures:
                    try:
                        outcomes.append(future.result())
                    except Exception as error:
                        outcomes.append(error)
            else:
                outcomes = []
                for chunk in chunks:
                    try:
                        outcomes.append(score_chunk(chunk))
                    except Exception as error:
                        outcomes.append(error)
            for chunk, outcome in zip(chunks, outcomes):
                if isinstance(outcome, Exception):
                    if self.runner.on_campaign_error != "quarantine":
                        raise outcome
                    # Fused scoring is an optimisation: members without fused
                    # scores simply score their own pools inside finish_ask.
                    continue
                scored.update(
                    (id(execution), result)
                    for (execution, _), result in zip(chunk, outcome)
                )
                self.counters["num_gp_fleet_predicts"] += 1

    def _chunk_gp_predicts(self, num_candidates: int, group: List) -> List[List]:
        """Split one scoring group into cache-sized fused chunks.

        Members are packed smallest-first so small members fuse together
        instead of being split into skipped singletons by one large
        neighbour; chunk composition only changes wall-clock, never results
        (each member's slice is bitwise independent).
        """
        sized = sorted(
            (
                (num_candidates * execution.optimizer.surrogate.training_size,
                 (execution, prepared))
                for execution, prepared in group
            ),
            key=lambda pair: pair[0],
        )
        chunks: List[List] = []
        current: List = []
        elements = 0
        budget = self.runner.gp_predict_chunk_elements
        for member_elements, item in sized:
            if current and elements + member_elements > budget:
                chunks.append(current)
                current, elements = [], 0
            current.append(item)
            elements += member_elements
        if current:
            chunks.append(current)
        return chunks

    # -------------------------------------------------------- prior refreshes
    def _refresh_priors(self, ticking: List[CampaignExecution]) -> None:
        """Run the tick's due prior-refresh VAE refits, fused where possible.

        Each due campaign's refit sits between its tell and its ask exactly
        as in the sequential loop; refits of compatible shape (same space,
        same ``prior_refresh_top_k``/epochs/batch size — grouped by
        :func:`~repro.core.vae.tvae.vae_fleet_key`) train as one
        :class:`~repro.core.vae.tvae.VAEFleet` pass, bit-identical per
        campaign to a solo ``vae.fit``.
        """
        due = []
        for execution in ticking:
            prepared = self._step(
                execution, "refresh", execution.prepare_prior_refresh
            )
            if prepared is not None and prepared is not _FAILED:
                due.append((execution, prepared))
        if not due:
            return
        self.counters["num_prior_refreshes"] += len(due)
        if self.runner.batch_vae_fits:
            def refresh_key(pair):
                prepared = pair[1]
                return vae_fleet_key(
                    prepared.vae,
                    prepared.design.shape[0],
                    prepared.epochs,
                    prepared.batch_size,
                )
        else:
            def refresh_key(pair):
                return (id(pair[0]),)
        for group in plan_tick_groups(
            due, key_of=refresh_key, identity_of=lambda pair: id(pair[1].vae)
        ):
            if not group.fused:
                for execution, prepared in group.members:
                    if (
                        self._step(
                            execution,
                            "refresh",
                            lambda p=prepared: p.vae.fit(
                                p.design, epochs=p.epochs, batch_size=p.batch_size
                            ),
                        )
                        is _FAILED
                    ):
                        continue
                    self._finish_refresh(execution, prepared)
                continue
            first = group.members[0][1]
            try:
                VAEFleet([prepared.vae for _, prepared in group.members]).fit(
                    [prepared.design for _, prepared in group.members],
                    epochs=first.epochs,
                    batch_size=first.batch_size,
                )
            except Exception:
                if self.runner.on_campaign_error != "quarantine":
                    raise
                # A failed fused pass leaves the fresh VAEs half-trained;
                # re-prepare and train each solo (deterministic per-refresh
                # seeds make the rebuilt VAE a clean restart).
                for execution, _ in group.members:
                    self._step(
                        execution, "refresh", execution.refresh_prior_if_due
                    )
                continue
            self.counters["num_vae_fleet_fits"] += 1
            self.counters["num_vae_fleet_members"] += len(group.members)
            for execution, prepared in group.members:
                self._finish_refresh(execution, prepared)

    def _finish_refresh(self, execution: CampaignExecution, prepared) -> None:
        """Install one campaign's trained refresh VAE under the error policy."""
        self._step(
            execution,
            "refresh",
            lambda e=execution, p=prepared: e.finish_prior_refresh(p),
        )


def _run_spec_shard(runner: CampaignRunner, indices: List[int], sender) -> None:
    """Child-process entry point of the process backend: run one spec shard.

    Runs a sequential :class:`CampaignRunner` over the shard's specs and
    sends back a scalars-only payload — counters, quarantine records (spec
    indices remapped to the parent's numbering) and per-result summaries.
    Histories never cross the pipe: the parent rebuilds them from each
    spec's journal through the mmap reader.
    """
    try:
        specs = [runner.specs[index] for index in indices]
        child = CampaignRunner(
            specs,
            batch_surrogate_fits=runner.batch_surrogate_fits,
            batch_candidate_scoring=runner.batch_candidate_scoring,
            batch_vae_fits=runner.batch_vae_fits,
            batch_gp_fits=runner.batch_gp_fits,
            batch_asks=runner.batch_asks,
            run_batcher=runner.run_batcher,
            on_campaign_error=runner.on_campaign_error,
            step_workers=1,
            step_backend="thread",
        )
        child.run()
        summaries = []
        for result in child.results():
            if result is None:
                summaries.append(None)
                continue
            summaries.append(
                {
                    "best_configuration": result.best_configuration,
                    "best_runtime": result.best_runtime,
                    "best_objective": result.best_objective,
                    "worker_utilization": result.worker_utilization,
                    "search_time": result.search_time,
                    "num_workers": result.num_workers,
                }
            )
        counter_names = [
            name
            for name in vars(child)
            if name.startswith("num_") and name != "num_ticks"
        ]
        sender.send(
            {
                "error": None,
                "num_ticks": child.num_ticks,
                "counters": {
                    name: getattr(child, name) for name in counter_names
                },
                "quarantined": [
                    (indices[q.index], q.label, q.phase, repr(q.error))
                    for q in child.quarantined
                ],
                "results": summaries,
            }
        )
    except BaseException as error:  # pragma: no cover - exercised via parent
        try:
            sender.send({"error": f"{type(error).__name__}: {error}"})
        except Exception:
            pass
    finally:
        sender.close()


class ElasticCampaignRunner(CampaignRunner):
    """A :class:`CampaignRunner` whose fleet changes while it runs.

    Campaigns **join** through :meth:`admit` — immediately, or at a declared
    future tick (the burst scenario's arrival schedule) — and **leave** when
    they finish or are quarantined; the fleet-fusion groups re-form from the
    surviving active set every tick, so membership changes never perturb any
    member's results.  Each campaign with private workers remains
    bit-identical to its isolated sequential run regardless of when it
    joined or left.

    Admission control gates how many admitted campaigns are actually
    in-flight:

    ``max_inflight``
        Upper bound on concurrently active campaigns.  Arrivals beyond it
        wait in a FIFO admission queue and enter as slots free up — every
        admitted campaign eventually runs (no starvation: the queue is
        drained strictly in order for campaigns blocked on the global
        limit).
    ``max_inflight_per_tenant``
        Per-tenant bound on concurrently active campaigns.  A tenant at its
        bound does not block *other* tenants' queued arrivals — later
        entries overtake it, which is the per-tenant fairness guarantee (one
        tenant's burst cannot monopolise the runner).  Within one tenant,
        FIFO order is preserved.

    Per-tenant fairness over *evaluation* capacity is the shared pool's job:
    see ``SharedWorkerPool(tenant_slots=...)``.

    Drive the runner either with :meth:`run_until_complete` (ticks until the
    admission queue and the active set are empty) or by calling
    :meth:`tick` yourself between admissions (how the campaign registry
    embeds it in a long-lived service).
    """

    def __init__(
        self,
        max_inflight: Optional[int] = None,
        max_inflight_per_tenant: Optional[int] = None,
        batch_surrogate_fits: bool = True,
        batch_candidate_scoring: bool = True,
        batch_vae_fits: bool = True,
        batch_gp_fits: bool = True,
        batch_asks: bool = True,
        run_batcher: Optional[Callable] = None,
        on_campaign_error: str = "raise",
        step_workers: Optional[int] = None,
        step_shards: Optional[int] = None,
        step_backend: str = "thread",
    ):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_inflight_per_tenant is not None and max_inflight_per_tenant < 1:
            raise ValueError("max_inflight_per_tenant must be >= 1")
        if step_backend == "process":
            # The process backend forks whole-campaign shards for one
            # complete run; an elastic fleet admits campaigns *between*
            # ticks, which has no meaning across a fork boundary.
            raise ValueError(
                "ElasticCampaignRunner only supports step_backend='thread'"
            )
        self._configure(
            batch_surrogate_fits=batch_surrogate_fits,
            batch_candidate_scoring=batch_candidate_scoring,
            batch_vae_fits=batch_vae_fits,
            batch_gp_fits=batch_gp_fits,
            batch_asks=batch_asks,
            run_batcher=run_batcher,
            on_campaign_error=on_campaign_error,
            step_workers=step_workers,
            step_shards=step_shards,
            step_backend=step_backend,
        )
        self.max_inflight = max_inflight
        self.max_inflight_per_tenant = max_inflight_per_tenant
        #: Spec indices awaiting admission, in arrival order.
        self._admission_queue: Deque[int] = deque()
        #: Spec index → earliest tick at which it may be admitted.
        self._arrival_tick: Dict[int, int] = {}
        #: Spec indices admitted so far, in admission order.
        self.admitted_order: List[int] = []

    # -------------------------------------------------------------- admission
    def admit(
        self,
        spec: CampaignSpec,
        tenant: Optional[str] = None,
        arrival_tick: Optional[int] = None,
    ) -> int:
        """Register a campaign for admission; returns its result index.

        ``tenant`` overrides the spec's tenant label; ``arrival_tick`` holds
        the campaign out of admission until the runner has executed that
        many ticks (modelling an arrival curve — ``None`` means it is
        admissible immediately).
        """
        index = len(self.specs)
        if tenant is not None:
            spec.tenant = tenant
        self.specs.append(spec)
        while len(self._executions) <= index:
            self._executions.append(None)
        self._admission_queue.append(index)
        self._arrival_tick[index] = (
            self.num_ticks if arrival_tick is None else int(arrival_tick)
        )
        return index

    @property
    def num_inflight(self) -> int:
        """Number of campaigns currently advancing in batch ticks."""
        return len(self._active)

    @property
    def num_waiting(self) -> int:
        """Number of admitted-but-not-yet-started campaigns."""
        return len(self._admission_queue)

    def _tenant_inflight(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for execution in self._active:
            tenant = self.specs[self._index_of[id(execution)]].tenant
            counts[tenant] = counts.get(tenant, 0) + 1
        return counts

    def _admit_due(self) -> None:
        """Move queued arrivals into the active set under admission control.

        FIFO with per-tenant overtaking: an entry blocked only by its own
        tenant's bound lets later entries of other tenants pass; an entry
        blocked by the global ``max_inflight`` blocks everyone behind it
        (the global limit applies equally, so overtaking could starve the
        head).
        """
        if not self._admission_queue:
            return
        inflight = len(self._active)
        per_tenant = self._tenant_inflight()
        admitted: List[int] = []
        remaining: Deque[int] = deque()
        globally_blocked = False
        while self._admission_queue:
            index = self._admission_queue.popleft()
            if globally_blocked or self._arrival_tick[index] > self.num_ticks:
                remaining.append(index)
                continue
            if self.max_inflight is not None and inflight >= self.max_inflight:
                remaining.append(index)
                globally_blocked = True
                continue
            tenant = self.specs[index].tenant
            if (
                self.max_inflight_per_tenant is not None
                and per_tenant.get(tenant, 0) >= self.max_inflight_per_tenant
            ):
                remaining.append(index)
                continue
            admitted.append(index)
            inflight += 1
            per_tenant[tenant] = per_tenant.get(tenant, 0) + 1
        self._admission_queue = remaining
        if admitted:
            before = len(self.quarantined)
            self._start_specs(admitted)
            failed = {q.index for q in self.quarantined[before:]}
            self.admitted_order.extend(i for i in admitted if i not in failed)
            if failed:
                self.admitted_order.extend(sorted(failed))

    # ------------------------------------------------------------------ drive
    def tick(self) -> None:
        """Admit due arrivals, then advance the active set by one batch tick."""
        self._admit_due()
        super().tick()

    def run_until_complete(self) -> List[Optional[SearchResult]]:
        """Tick until the admission queue and the active set are both empty.

        Future-tick arrivals keep the loop alive: empty ticks advance the
        tick counter until they fall due.  Returns per-spec results in spec
        order (None only for specs whose start was quarantined).
        """
        try:
            while self._active or self._admission_queue:
                self.tick()
        finally:
            self.close()
        return self.results()

    def run(self) -> List[SearchResult]:
        """Alias of :meth:`run_until_complete` (the elastic runner never
        restarts its specs — admission state is carried, not reset)."""
        return self.run_until_complete()

    def _begin(self) -> None:  # pragma: no cover - guard against misuse
        raise RuntimeError(
            "ElasticCampaignRunner does not restart from its spec list; "
            "admit campaigns and call tick()/run_until_complete()"
        )
