"""Ask/tell front end for the campaign registry: in-process and over HTTP.

Three ways to drive a registered study:

:class:`StudyClient`
    The in-process API.  Constructing one is a create-or-attach on the
    registry; :meth:`~StudyClient.suggest` returns the next batch of
    configurations to evaluate, :meth:`~StudyClient.report` hands the
    measured runtimes back, and :meth:`~StudyClient.run` loops the two
    against a local run function until the budget is exhausted.  Driving a
    study this way is bit-identical to ``CBOSearch.run`` with the same
    parameters — the registry merely inverts control over who evaluates.

:class:`StudyFrontend`
    A thin JSON-over-HTTP surface on the stdlib ``http.server`` (no
    third-party dependencies), exposing the same verbs::

        POST /studies                        create-or-attach
        GET  /studies                        all study statuses
        GET  /studies/<name>                 one study's status
        POST /studies/<name>/suggest         next batch (idempotent)
        POST /studies/<name>/report          {"runtimes": [...]}
        POST /studies/<name>/heartbeat       refresh liveness

    Unknown studies are 404, template/protocol/payload errors are 400.
    Floats cross the wire through ``json`` (repr-exact for float64), so an
    HTTP-driven campaign remains bit-identical to an in-process one.

:class:`HTTPStudyClient`
    The remote twin of :class:`StudyClient`, speaking the protocol above via
    ``urllib.request`` and raising the same registry exception types.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.space import Configuration
from repro.service.registry import (
    CampaignRegistry,
    ProtocolError,
    RegistryError,
    UnknownStudyError,
)

__all__ = ["StudyClient", "StudyFrontend", "HTTPStudyClient"]


def _json_default(value):
    """Encode numpy scalars the way the journal does (repr-exact floats)."""
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.bool_):
        return bool(value)
    raise TypeError(f"not JSON-serialisable: {type(value).__name__}")


def _dump(payload: Dict) -> bytes:
    return json.dumps(payload, default=_json_default).encode("utf-8")


class StudyClient:
    """In-process ask/tell handle on one registered study.

    Construction is create-or-attach: a new name starts a fresh campaign, an
    existing name (live, or journaled under the registry's root) attaches to
    it — :attr:`created` records which happened.  The client then alternates
    :meth:`suggest` and :meth:`report` until :meth:`suggest` returns None.
    """

    def __init__(
        self,
        registry: CampaignRegistry,
        study: str,
        template: Optional[str] = None,
        seed: int = 0,
        max_time: float = 3600.0,
        max_evaluations: Optional[int] = None,
        tenant: str = "default",
        params: Optional[Dict] = None,
    ):
        self.registry = registry
        self.study = study
        record, self.created = registry.create_study(
            study,
            template=template,
            seed=seed,
            max_time=max_time,
            max_evaluations=max_evaluations,
            tenant=tenant,
            params=params,
        )
        self.attached = record.attached

    def suggest(self) -> Optional[List[Configuration]]:
        """Next batch to evaluate (idempotent until reported; None = done)."""
        return self.registry.suggest(self.study)

    def report(self, runtimes: Sequence[float]) -> Dict:
        """Report the batch's measured runtimes; returns the study status."""
        return self.registry.report(self.study, runtimes)

    def heartbeat(self) -> Dict:
        """Tell the service this client is alive; returns the study status."""
        return self.registry.heartbeat(self.study)

    def status(self) -> Dict:
        """The study's status snapshot."""
        return self.registry.status(self.study)

    def result(self):
        """The study's :class:`~repro.core.search.SearchResult` so far."""
        return self.registry.result(self.study)

    def run(self, run_function: Callable[[Configuration], float]) -> Dict:
        """Drive the study to completion with a local run function.

        The suggest→evaluate→report loop — the client-side equivalent of
        ``CBOSearch.run`` (and bit-identical to it for equal parameters).
        """
        while True:
            batch = self.suggest()
            if batch is None:
                return self.status()
            self.report([run_function(config) for config in batch])


# --------------------------------------------------------------------- HTTP
def _make_handler(registry: CampaignRegistry):
    class Handler(BaseHTTPRequestHandler):
        # The test/benchmark servers must not spam stderr per request.
        def log_message(self, *args):
            pass

        def _reply(self, code: int, payload: Dict) -> None:
            body = _dump(payload)
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, code: int, message: str) -> None:
            self._reply(code, {"error": message})

        def _read_json(self) -> Dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("payload must be a JSON object")
            return payload

        def _route(self) -> List[str]:
            return [part for part in self.path.split("?")[0].split("/") if part]

        def do_GET(self) -> None:
            parts = self._route()
            try:
                if parts == ["studies"]:
                    self._reply(200, {"studies": registry.statuses()})
                elif len(parts) == 2 and parts[0] == "studies":
                    self._reply(200, registry.status(parts[1]))
                else:
                    self._error(404, f"no such route: GET {self.path}")
            except UnknownStudyError as error:
                self._error(404, str(error))
            except RegistryError as error:
                self._error(400, str(error))

        def do_POST(self) -> None:
            parts = self._route()
            try:
                payload = self._read_json()
            except (ValueError, UnicodeDecodeError) as error:
                self._error(400, f"malformed JSON payload: {error}")
                return
            try:
                if parts == ["studies"]:
                    self._create(payload)
                elif len(parts) == 3 and parts[0] == "studies":
                    self._verb(parts[1], parts[2], payload)
                else:
                    self._error(404, f"no such route: POST {self.path}")
            except UnknownStudyError as error:
                self._error(404, str(error))
            except ProtocolError as error:
                self._error(409, str(error))
            except RegistryError as error:
                self._error(400, str(error))

        def _create(self, payload: Dict) -> None:
            try:
                name = payload["name"]
            except KeyError:
                raise RegistryError("create payload requires 'name'")
            max_evaluations = payload.get("max_evaluations")
            record, created = registry.create_study(
                name,
                template=payload.get("template"),
                seed=int(payload.get("seed", 0)),
                max_time=float(payload.get("max_time", 3600.0)),
                max_evaluations=(
                    None if max_evaluations is None else int(max_evaluations)
                ),
                tenant=str(payload.get("tenant", "default")),
                mode=str(payload.get("mode", "ask_tell")),
                if_exists=str(payload.get("if_exists", "attach")),
                params=payload.get("params") or {},
            )
            self._reply(
                201 if created else 200,
                {
                    "created": created,
                    "attached": record.attached,
                    "status": registry.status(record.name),
                },
            )

        def _verb(self, name: str, verb: str, payload: Dict) -> None:
            if verb == "suggest":
                batch = registry.suggest(name)
                self._reply(
                    200, {"configurations": batch, "finished": batch is None}
                )
            elif verb == "report":
                runtimes = payload.get("runtimes")
                if not isinstance(runtimes, list):
                    raise RegistryError(
                        "report payload requires 'runtimes': [...]"
                    )
                self._reply(200, registry.report(name, runtimes))
            elif verb == "heartbeat":
                self._reply(200, registry.heartbeat(name))
            else:
                self._error(404, f"no such study verb: {verb}")

    return Handler


class StudyFrontend:
    """The registry's JSON-over-HTTP surface (stdlib ``http.server`` only).

    Binds a :class:`ThreadingHTTPServer` on ``host:port`` (port 0 picks a
    free one) and serves from a daemon thread between :meth:`start` and
    :meth:`stop`; also usable as a context manager.  Request handling is
    serialised by the registry's lock, so concurrent clients are safe.
    """

    def __init__(
        self,
        registry: CampaignRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry
        self.server = ThreadingHTTPServer((host, port), _make_handler(registry))
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        """The server's base URL (``http://host:port``)."""
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "StudyFrontend":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.server.serve_forever, daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self.server.shutdown()
            self._thread.join()
            self._thread = None
        self.server.server_close()

    def __enter__(self) -> "StudyFrontend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class HTTPStudyClient:
    """Remote :class:`StudyClient`: same API, spoken over the HTTP protocol.

    Raises the registry's own exception types on protocol failures
    (:class:`UnknownStudyError` for 404, :class:`ProtocolError` for 409,
    :class:`RegistryError` for 400), so client code is backend-agnostic.
    """

    def __init__(
        self,
        base_url: str,
        study: str,
        template: Optional[str] = None,
        seed: int = 0,
        max_time: float = 3600.0,
        max_evaluations: Optional[int] = None,
        tenant: str = "default",
        params: Optional[Dict] = None,
        create: bool = True,
    ):
        self.base_url = base_url.rstrip("/")
        self.study = study
        self.created = False
        self.attached = False
        if create:
            response = self._post(
                "/studies",
                {
                    "name": study,
                    "template": template,
                    "seed": seed,
                    "max_time": max_time,
                    "max_evaluations": max_evaluations,
                    "tenant": tenant,
                    "params": params or {},
                },
            )
            self.created = bool(response["created"])
            self.attached = bool(response["attached"])

    # ---------------------------------------------------------------- plumbing
    def _request(self, method: str, path: str, payload: Optional[Dict]) -> Dict:
        request = urllib.request.Request(
            self.base_url + path,
            data=None if payload is None else _dump(payload),
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urllib.request.urlopen(request) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read().decode("utf-8"))["error"]
            except Exception:
                message = str(error)
            if error.code == 404:
                raise UnknownStudyError(message) from None
            if error.code == 409:
                raise ProtocolError(message) from None
            raise RegistryError(message) from None

    def _post(self, path: str, payload: Dict) -> Dict:
        return self._request("POST", path, payload)

    def _get(self, path: str) -> Dict:
        return self._request("GET", path, None)

    # --------------------------------------------------------------- protocol
    def suggest(self) -> Optional[List[Configuration]]:
        """Next batch to evaluate (idempotent until reported; None = done)."""
        response = self._post(f"/studies/{self.study}/suggest", {})
        return response["configurations"]

    def report(self, runtimes: Sequence[float]) -> Dict:
        """Report the batch's measured runtimes; returns the study status."""
        return self._post(
            f"/studies/{self.study}/report", {"runtimes": list(runtimes)}
        )

    def heartbeat(self) -> Dict:
        """Tell the service this client is alive; returns the study status."""
        return self._post(f"/studies/{self.study}/heartbeat", {})

    def status(self) -> Dict:
        """The study's status snapshot."""
        return self._get(f"/studies/{self.study}")

    def run(self, run_function: Callable[[Configuration], float]) -> Dict:
        """Drive the study to completion with a local run function."""
        while True:
            batch = self.suggest()
            if batch is None:
                return self.status()
            self.report([run_function(config) for config in batch])
