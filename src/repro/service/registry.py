"""Multi-tenant campaign registry: named studies with create-or-attach.

The ingress half of the tuning service.  A :class:`CampaignRegistry` keys
campaigns by **study name** the way Optuna keys studies on shared storage:
``create_study(name, ...)`` creates the study when the name is new and
*attaches* to it when it already exists — in memory when the study is live
in this process, or on disk through the PR 6 journal store
(``CBOSearch.start_or_resume``), in which case the campaign resumes from its
last checkpoint **bit-identically** (no evaluation re-runs, same RNG path).

Studies come in two modes:

``ask_tell`` (default)
    The campaign is driven by an external client through
    :meth:`CampaignRegistry.suggest` / :meth:`CampaignRegistry.report` —
    the registry never calls the study's run function; the client evaluates
    each suggested batch itself and reports the measured runtimes.  The
    in-process :class:`~repro.service.frontend.StudyClient` and the
    JSON-over-HTTP :class:`~repro.service.frontend.StudyFrontend` both sit
    on these methods.

``managed``
    The campaign is admitted to the registry's
    :class:`~repro.service.runner.ElasticCampaignRunner` and advanced by
    the service's own tick loop (the study's template must then carry a
    real run function); clients only observe status.

Because search objects are not wire-serialisable, the registry is
configured with named **templates** — ``{name: factory(seed=..., **params)
-> CBOSearch}`` — and a remote create request names a template instead of
shipping code.  Study names are restricted to ``[A-Za-z0-9._-]`` (they
become journal directory names).
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.journal import CampaignJournal, JournalReader
from repro.core.search import CampaignExecution, CBOSearch
from repro.core.space import Configuration
from repro.service.runner import CampaignSpec, ElasticCampaignRunner

__all__ = [
    "CampaignRegistry",
    "StudyRecord",
    "RegistryError",
    "UnknownStudyError",
    "UnknownTemplateError",
    "StudyConflictError",
    "ProtocolError",
]

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9._-]{1,128}$")


class RegistryError(RuntimeError):
    """Base class for registry-level failures (HTTP 400 family)."""


class UnknownStudyError(RegistryError):
    """No study with the requested name (HTTP 404)."""


class UnknownTemplateError(RegistryError):
    """The create request names a template the registry was not given."""


class StudyConflictError(RegistryError):
    """The name exists and the caller demanded a fresh study."""


class ProtocolError(RegistryError):
    """An ask/tell call that violates the suggest→report protocol."""


@dataclass
class StudyRecord:
    """Registry-side state of one named study.

    ``execution`` is the live campaign for ``ask_tell`` studies; for
    ``managed`` studies it lives inside the elastic runner and is looked up
    through ``runner_index``.  ``attached`` records whether the study was
    resumed from an existing journal rather than created fresh.
    """

    name: str
    tenant: str
    mode: str
    template: str
    seed: int
    execution: Optional[CampaignExecution] = None
    runner_index: Optional[int] = None
    attached: bool = False
    created_at: float = 0.0
    last_seen: float = 0.0
    num_suggested: int = 0
    num_reported: int = 0
    params: Dict = field(default_factory=dict)


class CampaignRegistry:
    """Create-or-attach study registry over templates, journals and a runner.

    Parameters
    ----------
    templates:
        ``{name: factory}`` where ``factory(seed=..., **params)`` builds a
        fresh :class:`~repro.core.search.CBOSearch`.  Factories are invoked
        both for fresh creates and for journal attaches (the journal meta is
        validated against the rebuilt search, so a template/seed mismatch
        fails loudly instead of resuming the wrong study).
    root:
        Optional journal root directory; when given, every study journals
        under ``root/<name>`` and create-or-attach extends across process
        restarts.  ``None`` keeps studies purely in memory.
    runner:
        Optional :class:`~repro.service.runner.ElasticCampaignRunner` for
        ``managed`` studies.  ``None`` (default) builds one lazily on the
        first managed create.
    clock:
        Wall-clock source for ``created_at``/``last_seen`` bookkeeping
        (``time.monotonic`` by default; injectable for tests).

    All public methods are thread-safe (one registry lock — campaign
    executions are not reentrant, so calls serialise), which is what the
    threaded HTTP frontend requires.
    """

    def __init__(
        self,
        templates: Dict[str, Callable[..., CBOSearch]],
        root: Optional[object] = None,
        runner: Optional[ElasticCampaignRunner] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.templates = dict(templates)
        self.root = None if root is None else Path(root)
        self.runner = runner
        self._studies: Dict[str, StudyRecord] = {}
        self._lock = threading.RLock()
        self._clock = clock

    # ------------------------------------------------------------------ lookup
    def study_names(self) -> List[str]:
        """Names of all live studies, in creation order."""
        with self._lock:
            return list(self._studies)

    def get(self, name: str) -> StudyRecord:
        """The record of a live study (raises :class:`UnknownStudyError`)."""
        with self._lock:
            record = self._studies.get(name)
            if record is None:
                raise UnknownStudyError(f"no study named {name!r}")
            return record

    def _journal_dir(self, name: str) -> Optional[Path]:
        return None if self.root is None else self.root / name

    def _execution_of(self, record: StudyRecord) -> Optional[CampaignExecution]:
        if record.execution is not None:
            return record.execution
        if record.runner_index is not None and self.runner is not None:
            executions = self.runner._executions
            if record.runner_index < len(executions):
                return executions[record.runner_index]
        return None

    # ------------------------------------------------------------------ create
    def create_study(
        self,
        name: str,
        template: Optional[str] = None,
        seed: int = 0,
        max_time: float = 3600.0,
        max_evaluations: Optional[int] = None,
        tenant: str = "default",
        mode: str = "ask_tell",
        if_exists: str = "attach",
        arrival_tick: Optional[int] = None,
        params: Optional[Dict] = None,
    ) -> Tuple[StudyRecord, bool]:
        """Create the named study, or attach to it when it already exists.

        Returns ``(record, created)`` — ``created`` is False when the call
        attached to a live study or resumed one from its on-disk journal.
        Attaching ignores ``seed``/``max_time``/``params`` in favour of what
        the existing study was created with (a template or seed mismatch
        against a journal fails the meta validation).  ``if_exists`` may be
        ``"attach"`` (default, the Optuna ``load_study`` fallback) or
        ``"raise"`` (demand a fresh study).
        """
        if not _NAME_PATTERN.match(name or ""):
            raise RegistryError(
                f"invalid study name {name!r} (allowed: letters, digits, "
                "'.', '_', '-'; max 128 chars)"
            )
        if mode not in ("ask_tell", "managed"):
            raise RegistryError(f"unknown study mode {mode!r}")
        if if_exists not in ("attach", "raise"):
            raise RegistryError(f"unknown if_exists policy {if_exists!r}")
        with self._lock:
            record = self._studies.get(name)
            if record is not None:
                if if_exists == "raise":
                    raise StudyConflictError(f"study {name!r} already exists")
                record.last_seen = self._clock()
                return record, False
            if template is None:
                if len(self.templates) == 1:
                    template = next(iter(self.templates))
                else:
                    raise UnknownTemplateError(
                        "template is required (registry has "
                        f"{len(self.templates)} templates)"
                    )
            factory = self.templates.get(template)
            if factory is None:
                raise UnknownTemplateError(
                    f"unknown template {template!r} "
                    f"(have: {sorted(self.templates)})"
                )
            search = factory(seed=seed, **(params or {}))
            journal_dir = self._journal_dir(name)
            attached = journal_dir is not None and CampaignJournal.exists(journal_dir)
            record = StudyRecord(
                name=name,
                tenant=tenant,
                mode=mode,
                template=template,
                seed=seed,
                attached=attached,
                created_at=self._clock(),
                last_seen=self._clock(),
                params=dict(params or {}),
            )
            if mode == "managed":
                if self.runner is None:
                    self.runner = ElasticCampaignRunner()
                record.runner_index = self.runner.admit(
                    CampaignSpec(
                        search=search,
                        max_time=max_time,
                        max_evaluations=max_evaluations,
                        label=name,
                        journal_dir=journal_dir,
                        tenant=tenant,
                        resume_from_journal=True,
                    ),
                    arrival_tick=arrival_tick,
                )
            elif journal_dir is not None:
                record.execution = search.start_or_resume(
                    journal_dir,
                    max_time=max_time,
                    max_evaluations=max_evaluations,
                    defer_initial_submit=True,
                )
            else:
                record.execution = search.start(
                    max_time=max_time,
                    max_evaluations=max_evaluations,
                    defer_initial_submit=True,
                )
            self._studies[name] = record
            return record, not attached

    # ---------------------------------------------------------------- ask/tell
    def suggest(self, name: str) -> Optional[List[Configuration]]:
        """The study's next batch to evaluate (None when it is finished).

        Idempotent until reported: calling suggest again without a report
        returns the same outstanding batch (crash-safe clients simply ask
        again).  Raises :class:`ProtocolError` for managed studies — their
        evaluations run inside the service.
        """
        with self._lock:
            record = self.get(name)
            execution = self._require_ask_tell(record, "suggest")
            record.last_seen = self._clock()
            batch = execution.next_suggestion()
            if batch is not None:
                record.num_suggested += 1
            return None if batch is None else [dict(c) for c in batch]

    def report(self, name: str, runtimes: Sequence[float]) -> Dict:
        """Report the measured runtimes of the last suggested batch.

        Returns the study's status afterwards.  Raises
        :class:`ProtocolError` when no batch is outstanding or the length
        does not match the suggestion.
        """
        with self._lock:
            record = self.get(name)
            execution = self._require_ask_tell(record, "report")
            record.last_seen = self._clock()
            try:
                execution.report_runtimes(runtimes)
            except ValueError as error:
                raise ProtocolError(str(error)) from error
            record.num_reported += 1
            return self._status(record)

    def heartbeat(self, name: str) -> Dict:
        """Refresh the study's liveness timestamp; returns its status."""
        with self._lock:
            record = self.get(name)
            record.last_seen = self._clock()
            return self._status(record)

    def _require_ask_tell(
        self, record: StudyRecord, verb: str
    ) -> CampaignExecution:
        if record.mode != "ask_tell":
            raise ProtocolError(
                f"study {record.name!r} is managed by the service runner; "
                f"{verb} applies to ask_tell studies only"
            )
        execution = record.execution
        if execution is None:  # pragma: no cover - defensive
            raise ProtocolError(f"study {record.name!r} has no live execution")
        return execution

    # ------------------------------------------------------------------ status
    def status(self, name: str) -> Dict:
        """JSON-ready status snapshot of one study."""
        with self._lock:
            return self._status(self.get(name))

    def statuses(self) -> List[Dict]:
        """Status snapshots of every live study, in creation order."""
        with self._lock:
            return [self._status(r) for r in self._studies.values()]

    def stale_studies(self, max_age: float) -> List[str]:
        """Names of studies without a client call for ``max_age`` seconds."""
        with self._lock:
            now = self._clock()
            return [
                r.name
                for r in self._studies.values()
                if now - r.last_seen > max_age
            ]

    # ------------------------------------------------------------ stored view
    def stored_study_names(self) -> List[str]:
        """Names of every study journaled under the registry root (sorted).

        Includes studies no live record exists for — crashed, evicted, or
        created by an earlier process; any of them re-attach bit-identically
        through :meth:`create_study`.  Empty without a root.
        """
        if self.root is None or not self.root.is_dir():
            return []
        return sorted(
            child.name
            for child in self.root.iterdir()
            if child.is_dir() and CampaignJournal.exists(child)
        )

    def peek(self, name: str) -> Dict:
        """Status of a study without loading it — live or stored.

        Live studies return their full :meth:`status`.  Studies that only
        exist on disk are summarised through the journal's memory-mapped
        reader (:meth:`repro.core.journal.JournalReader.peek`): evaluation
        count, best runtime and the finished flag come straight off the
        mapped objective/runtime columns, with no search construction and no
        optimizer replay — cheap enough to sweep thousands of stored studies.
        """
        with self._lock:
            if name in self._studies:
                payload = self._status(self._studies[name])
                payload["live"] = True
                return payload
            journal_dir = self._journal_dir(name)
            if journal_dir is None or not CampaignJournal.exists(journal_dir):
                raise UnknownStudyError(f"no study named {name!r}")
            payload = JournalReader.peek(journal_dir)
            payload.update({"name": name, "live": False, "started": False})
            return payload

    def evict(self, name: str) -> bool:
        """Drop a journaled ask/tell study from memory (it stays on disk).

        A final forced checkpoint commits everything reported so far, the
        journal's append handles close, and the record is forgotten; the
        next :meth:`create_study` under the same name resumes from the
        journal bit-identically (an unreported suggested batch is
        re-generated deterministically, matching the idempotent-suggest
        contract).  Returns False — and evicts nothing — for managed
        studies (the runner owns them) and for studies without a journal
        (eviction would lose their state).
        """
        with self._lock:
            record = self.get(name)
            journal_dir = self._journal_dir(name)
            if record.mode != "ask_tell" or journal_dir is None:
                return False
            execution = record.execution
            if execution is not None:
                execution.maybe_checkpoint(force=True)
                if execution._journal is not None:
                    execution._journal.close()
            del self._studies[name]
            return True

    def evict_stale(self, max_age: float) -> List[str]:
        """Evict every journaled ask/tell study idle for ``max_age`` seconds.

        The service-scale companion of :meth:`stale_studies`: thousands of
        abandoned studies stop holding optimizer state and file handles in
        memory, while :meth:`peek` keeps them observable and
        :meth:`create_study` re-attaches any of them on demand.  Returns the
        evicted names.
        """
        with self._lock:
            return [
                name for name in self.stale_studies(max_age) if self.evict(name)
            ]

    def _status(self, record: StudyRecord) -> Dict:
        execution = self._execution_of(record)
        payload = {
            "name": record.name,
            "tenant": record.tenant,
            "mode": record.mode,
            "template": record.template,
            "seed": record.seed,
            "attached": record.attached,
            "num_suggested": record.num_suggested,
            "num_reported": record.num_reported,
            "started": execution is not None,
            "finished": False,
            "num_evaluations": 0,
            "virtual_now": None,
            "best_runtime": None,
        }
        if execution is not None:
            payload["finished"] = bool(execution.finished)
            payload["num_evaluations"] = len(execution.history)
            payload["virtual_now"] = float(execution.evaluator.now)
            best = execution.history.best()
            if best is not None:
                payload["best_runtime"] = float(best.runtime)
                payload["best_configuration"] = dict(best.configuration)
        return payload

    def result(self, name: str):
        """The study's :class:`~repro.core.search.SearchResult` so far."""
        with self._lock:
            record = self.get(name)
            execution = self._execution_of(record)
            if execution is None:
                raise ProtocolError(
                    f"study {record.name!r} has not started yet"
                )
            return execution.result()
