"""Service-style evaluation backend: a shared virtual-time worker pool.

The paper's deployment model is one shared HEPnOS service consumed by many
clients; the scale-out equivalent for the reproduction is many concurrent
autotuning campaigns submitting evaluation requests to one worker fleet
instead of each owning private workers.

:class:`SharedWorkerPool` owns the workers, the virtual clock and a FIFO
request queue; :class:`ServiceEvaluator` is one campaign's client view of the
pool, implementing the same ``submit`` / ``collect`` / ``wait_any`` protocol
as :class:`~repro.core.evaluator.AsyncVirtualEvaluator` so a
:class:`~repro.core.search.CBOSearch` can target either backend unchanged
(via its ``evaluator_factory`` parameter).  Differences from the private
evaluator:

* requests beyond the pool's idle capacity are **queued** (a service accepts
  work) instead of dropped, and start the moment a worker frees up;
* several clients may share one pool, in which case they also share the
  virtual clock — the natural timeline of a shared service.

A :class:`ServiceEvaluator` with a **private** pool is behaviourally
identical to :class:`AsyncVirtualEvaluator` for any driver that submits at
most ``num_idle`` configurations at a time (as the search loop does); the
property-based test suite pins this protocol equivalence.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.core.evaluator import (
    DEFAULT_FAILURE_DURATION,
    CompletedEvaluation,
    PendingEvaluation,
    WorkerState,
    resolve_duration,
)
from repro.core.space import Configuration

__all__ = ["SharedWorkerPool", "ServiceEvaluator"]


class SharedWorkerPool:
    """A virtual-time worker fleet shared by one or more evaluator clients.

    Parameters
    ----------
    num_workers:
        Number of workers in the pool (the service's capacity).
    """

    def __init__(self, num_workers: int = 128):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = int(num_workers)
        self.workers = [WorkerState(index=i) for i in range(self.num_workers)]
        self.now = 0.0
        self._seq = itertools.count()
        #: Running evaluations: (pending, owner, sequence-number) triples.
        self._running: List[Tuple[PendingEvaluation, "ServiceEvaluator", int]] = []
        #: Requests accepted while no worker was idle, in arrival order; the
        #: third element is the precomputed runtime (None → call the owner's
        #: run function at dispatch time).
        self._queue: Deque[Tuple["ServiceEvaluator", Configuration, Optional[float]]] = deque()
        self.clients: List["ServiceEvaluator"] = []

    # ------------------------------------------------------------------ state
    def idle_workers(self) -> List[WorkerState]:
        """Workers without a running evaluation."""
        return [w for w in self.workers if w.evaluations_running == 0]

    @property
    def num_idle(self) -> int:
        """Number of idle workers."""
        return len(self.idle_workers())

    @property
    def num_pending(self) -> int:
        """Number of evaluations currently running on the pool."""
        return len(self._running)

    @property
    def num_queued(self) -> int:
        """Number of accepted requests waiting for a worker."""
        return len(self._queue)

    def next_completion_time(self) -> float:
        """Completion time of the earliest running evaluation (inf if none)."""
        if not self._running:
            return float("inf")
        return min(p.completes_at for p, _, _ in self._running)

    def advance_to(self, time: float) -> None:
        """Move the shared clock forward (never backwards)."""
        if time < self.now:
            raise ValueError(f"cannot move time backwards ({time} < {self.now})")
        self.now = time

    # ------------------------------------------------------------- scheduling
    def evaluator_factory(self) -> Callable:
        """A ``(run_function, num_workers, failure_duration) → evaluator``
        factory binding new :class:`ServiceEvaluator` clients to this pool
        (the ``num_workers`` argument is ignored — capacity belongs to the
        pool).  Plugs straight into ``CBOSearch(evaluator_factory=...)``.
        """

        def factory(run_function, num_workers, failure_duration):
            return ServiceEvaluator(
                run_function, pool=self, failure_duration=failure_duration
            )

        return factory

    def _start(
        self,
        client: "ServiceEvaluator",
        config: Configuration,
        at_time: float,
        worker: WorkerState,
        runtime: Optional[float] = None,
    ) -> PendingEvaluation:
        runtime = float(client.run_function(config) if runtime is None else runtime)
        duration = client._duration(config, runtime)
        pending = PendingEvaluation(
            configuration=dict(config),
            worker=worker.index,
            submitted=at_time,
            completes_at=at_time + duration,
            runtime=runtime,
        )
        worker.evaluations_running += 1
        worker.busy_until = at_time + duration
        worker.busy_time += duration
        worker.evaluations += 1
        self._running.append((pending, client, next(self._seq)))
        client._own_running.append(pending)
        client.num_submitted += 1
        client._started_intervals.append((at_time, at_time + duration))
        return pending

    def submit(self, client: "ServiceEvaluator", configurations, runtimes=None) -> int:
        """Accept requests from ``client``: start on idle workers, queue the rest."""
        if runtimes is not None and len(runtimes) != len(configurations):
            raise ValueError("runtimes and configurations must have equal length")
        accepted = 0
        idle = deque(self.idle_workers())
        for i, config in enumerate(configurations):
            runtime = None if runtimes is None else runtimes[i]
            if idle:
                self._start(client, config, self.now, idle.popleft(), runtime)
            else:
                self._queue.append((client, dict(config), runtime))
            accepted += 1
        return accepted

    def process_until(self, horizon: float) -> None:
        """Fire every completion at or before ``horizon``.

        Completions fire in ``(completion time, submission order)`` order;
        each freed worker immediately picks up the oldest queued request,
        which starts at the freeing completion's time (and may itself
        complete within the horizon).
        """
        while self._running:
            pos = min(
                range(len(self._running)),
                key=lambda i: (self._running[i][0].completes_at, self._running[i][2]),
            )
            pending, owner, _ = self._running[pos]
            if pending.completes_at > horizon:
                break
            del self._running[pos]
            worker = self.workers[pending.worker]
            worker.evaluations_running -= 1
            owner._own_running.remove(pending)
            owner._done.append(
                CompletedEvaluation(
                    configuration=pending.configuration,
                    worker=pending.worker,
                    submitted=pending.submitted,
                    completed=pending.completes_at,
                    runtime=pending.runtime,
                )
            )
            if self._queue and worker.evaluations_running == 0:
                next_client, next_config, next_runtime = self._queue.popleft()
                self._start(
                    next_client, next_config, pending.completes_at, worker, next_runtime
                )

    # ------------------------------------------------------------------ stats
    def utilization(self, horizon: float) -> float:
        """Fraction of pool worker time spent evaluating within ``[0, horizon]``.

        Same estimate as
        :meth:`~repro.core.evaluator.AsyncVirtualEvaluator.utilization`:
        evaluations still running at the horizon contribute only the portion
        before it.
        """
        if horizon <= 0:
            return 0.0
        total_busy = 0.0
        for worker in self.workers:
            over = max(0.0, worker.busy_until - horizon)
            total_busy += max(0.0, worker.busy_time - over)
        return float(total_busy / (horizon * self.num_workers))


class ServiceEvaluator:
    """One campaign's client of a (possibly shared) :class:`SharedWorkerPool`.

    Implements the asynchronous evaluation protocol of
    :class:`~repro.core.evaluator.AsyncVirtualEvaluator` — ``submit``,
    ``collect``, ``wait_any``, ``next_completion_time``, ``advance_to``,
    ``num_idle`` / ``num_pending`` / ``pending_evaluations`` and
    ``utilization`` — against a worker pool that may be serving other
    campaigns concurrently.

    Parameters
    ----------
    run_function:
        Configuration → measured run time in seconds (NaN for failures).
    pool:
        The worker pool to join; ``None`` creates a private pool of
        ``num_workers`` (making this evaluator behaviourally identical to
        the private :class:`AsyncVirtualEvaluator`).
    num_workers:
        Capacity of the private pool when ``pool`` is ``None``.
    failure_duration:
        Virtual time a failed evaluation occupies its worker.
    duration_function:
        Optional override mapping ``(configuration, runtime)`` to the
        evaluation's virtual duration.
    """

    def __init__(
        self,
        run_function: Callable[[Configuration], float],
        pool: Optional[SharedWorkerPool] = None,
        num_workers: int = 128,
        failure_duration: float = DEFAULT_FAILURE_DURATION,
        duration_function: Optional[Callable[[Configuration, float], float]] = None,
    ):
        if failure_duration <= 0:
            raise ValueError("failure_duration must be positive")
        self.run_function = run_function
        self.pool = pool if pool is not None else SharedWorkerPool(num_workers)
        self.failure_duration = float(failure_duration)
        self.duration_function = duration_function
        self.num_submitted = 0
        self.num_collected = 0
        self._own_running: List[PendingEvaluation] = []
        self._done: List[CompletedEvaluation] = []
        self._started_intervals: List[Tuple[float, float]] = []
        self.pool.clients.append(self)

    # ----------------------------------------------------------- delegations
    @property
    def num_workers(self) -> int:
        """Capacity of the underlying pool."""
        return self.pool.num_workers

    @property
    def workers(self) -> List[WorkerState]:
        """The pool's worker states."""
        return self.pool.workers

    @property
    def now(self) -> float:
        """The shared virtual clock."""
        return self.pool.now

    def advance_to(self, time: float) -> None:
        """Move the shared clock forward (never backwards)."""
        self.pool.advance_to(time)

    def idle_workers(self) -> List[WorkerState]:
        """Idle workers of the pool."""
        return self.pool.idle_workers()

    @property
    def num_idle(self) -> int:
        """Number of idle pool workers."""
        return self.pool.num_idle

    @property
    def num_pending(self) -> int:
        """Number of *this client's* evaluations currently running."""
        return len(self._own_running)

    @property
    def num_queued(self) -> int:
        """Number of this client's requests still waiting for a worker."""
        return sum(1 for client, _, _ in self.pool._queue if client is self)

    def pending_evaluations(self) -> Tuple[PendingEvaluation, ...]:
        """Snapshot of this client's running evaluations (submission order)."""
        return tuple(self._own_running)

    def drain_started_intervals(self) -> List[Tuple[float, float]]:
        """``(submitted, completes_at)`` of this client's evaluations started
        since the last drain, in start order — includes requests that waited
        in the queue and started when a worker freed up."""
        started, self._started_intervals = self._started_intervals, []
        return started

    def _duration(self, config: Configuration, runtime: float) -> float:
        return resolve_duration(
            config, runtime, self.duration_function, self.failure_duration
        )

    # ------------------------------------------------------------- submission
    def submit(self, configurations, runtimes=None) -> int:
        """Send requests to the service at the current time.

        Unlike the private evaluator — which drops configurations beyond its
        idle capacity — the service **queues** them, so the return value is
        the number of requests accepted (all of them).  ``runtimes``
        optionally supplies precomputed measurements (see
        :meth:`AsyncVirtualEvaluator.submit`).
        """
        return self.pool.submit(self, configurations, runtimes)

    # -------------------------------------------------------------- collection
    def next_completion_time(self) -> float:
        """Completion time of this client's earliest running evaluation."""
        if not self._own_running:
            return float("inf")
        return min(p.completes_at for p in self._own_running)

    def collect(self, until: Optional[float] = None) -> List[CompletedEvaluation]:
        """Collect this client's evaluations completed at or before ``until``.

        ``until`` defaults to the current shared time.  The returned list is
        ordered by completion time.
        """
        horizon = self.pool.now if until is None else until
        self.pool.process_until(horizon)
        ready = [c for c in self._done if c.completed <= horizon]
        if not ready:
            return []
        self._done = [c for c in self._done if c.completed > horizon]
        ready.sort(key=lambda c: c.completed)
        self.num_collected += len(ready)
        return ready

    def wait_any(self, max_time: float) -> Tuple[float, List[CompletedEvaluation]]:
        """Advance to this client's next completion (capped) and collect.

        Completions of *other* clients sharing the pool are processed along
        the way (freeing workers and draining the queue); the clock stops at
        the first time this client has results, or at ``max_time``.
        """
        pool = self.pool
        while True:
            target = min(pool.next_completion_time(), max_time)
            if target < pool.now:
                target = pool.now
            pool.advance_to(target)
            collected = self.collect()
            if collected or pool.now >= max_time or not pool._running:
                return pool.now, collected

    # ------------------------------------------------------------------ stats
    def utilization(self, horizon: float) -> float:
        """Pool-level utilisation within ``[0, horizon]``.

        With a private pool this is exactly the private evaluator's metric;
        with a shared pool it reflects the whole service (the per-campaign
        share is not separable at the worker level).
        """
        return self.pool.utilization(horizon)
