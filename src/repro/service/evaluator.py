"""Service-style evaluation backend: a shared virtual-time worker pool.

The paper's deployment model is one shared HEPnOS service consumed by many
clients; the scale-out equivalent for the reproduction is many concurrent
autotuning campaigns submitting evaluation requests to one worker fleet
instead of each owning private workers.

:class:`SharedWorkerPool` owns the workers, the virtual clock and a FIFO
request queue; :class:`ServiceEvaluator` is one campaign's client view of the
pool, implementing the same ``submit`` / ``collect`` / ``wait_any`` protocol
as :class:`~repro.core.evaluator.AsyncVirtualEvaluator` so a
:class:`~repro.core.search.CBOSearch` can target either backend unchanged
(via its ``evaluator_factory`` parameter).  Differences from the private
evaluator:

* requests beyond the pool's idle capacity are **queued** (a service accepts
  work) instead of dropped, and start the moment a worker frees up;
* several clients may share one pool, in which case they also share the
  virtual clock — the natural timeline of a shared service.

A :class:`ServiceEvaluator` with a **private** pool is behaviourally
identical to :class:`AsyncVirtualEvaluator` for any driver that submits at
most ``num_idle`` configurations at a time (as the search loop does); the
property-based test suite pins this protocol equivalence.
"""

from __future__ import annotations

import heapq
import math
import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.evaluator import (
    DEFAULT_FAILURE_DURATION,
    CompletedEvaluation,
    EvaluatorStalledError,
    PendingEvaluation,
    WorkerState,
    resolve_duration,
    resolve_outcome,
)
from repro.core.space import Configuration
from repro.sim.faults import FaultPlan, make_fault_plan

__all__ = ["SharedWorkerPool", "ServiceEvaluator"]


class SharedWorkerPool:
    """A virtual-time worker fleet shared by one or more evaluator clients.

    The pool also owns the service's fault-tolerance policy.  Work lost to an
    injected fault (a dropped result or a crashed worker) is resubmitted with
    exponential backoff — the retry becomes ready ``backoff_base * 2**attempt``
    after the loss and joins the queue like any other request — until
    ``max_retries`` resubmissions have been consumed, at which point the
    configuration is declared failed and a NaN result is delivered to its
    owner (the standard failure tell).  ``deadline`` enforces the paper's
    per-evaluation kill limit: any evaluation whose duration would exceed it
    is cut off at the deadline and reported as failed.  All of this is inert
    without a fault plan or deadline; the fault-free path is bit-identical to
    a pool without the policy.

    Parameters
    ----------
    num_workers:
        Number of workers in the pool (the service's capacity).
    fault_plan:
        Optional :class:`~repro.sim.faults.FaultPlan` injecting deterministic
        faults into the pool's evaluations.
    deadline:
        Optional per-evaluation kill limit in virtual seconds.
    max_retries:
        Resubmissions allowed per configuration lost to a fault before it is
        declared failed.
    backoff_base:
        Backoff before the first resubmission, doubled per further attempt.
    tenant_slots:
        Optional per-tenant worker-slot caps (``{tenant: max_running}``): a
        tenant at its cap has further requests queued even while workers sit
        idle, so no tenant can monopolise the fleet.  Tenants absent from
        the mapping are uncapped.  Queued requests of capped tenants are
        overtaken by admissible ones (per-tenant fairness); within one
        tenant, FIFO order is preserved.  ``None`` (default) disables the
        accounting entirely — the scheduling is then bit-identical to the
        historic pool.
    """

    def __init__(
        self,
        num_workers: int = 128,
        fault_plan: Optional[FaultPlan] = None,
        deadline: Optional[float] = None,
        max_retries: int = 2,
        backoff_base: float = 30.0,
        tenant_slots: Optional[Dict[str, int]] = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_base <= 0:
            raise ValueError("backoff_base must be positive")
        if tenant_slots is not None:
            tenant_slots = {str(k): int(v) for k, v in tenant_slots.items()}
            if any(v < 1 for v in tenant_slots.values()):
                raise ValueError("tenant_slots caps must be >= 1")
        self.tenant_slots = tenant_slots
        #: Running evaluations per tenant (all tenants ever seen).
        self._tenant_running: Dict[str, int] = {}
        #: High-water mark of concurrently running evaluations per tenant —
        #: the fairness tests assert shares against this.
        self.tenant_peak_running: Dict[str, int] = {}
        self.num_workers = int(num_workers)
        self.fault_plan = make_fault_plan(fault_plan)
        self.deadline = None if deadline is None else float(deadline)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.workers = [WorkerState(index=i) for i in range(self.num_workers)]
        self.now = 0.0
        self._next_seq = 0
        #: Running evaluations: (pending, owner, sequence-number) triples.
        self._running: List[Tuple[PendingEvaluation, "ServiceEvaluator", int]] = []
        #: Requests accepted while no worker was idle, in arrival order:
        #: (owner, configuration, precomputed runtime or None, attempt).
        self._queue: Deque[
            Tuple["ServiceEvaluator", Configuration, Optional[float], int]
        ] = deque()
        #: Lost work awaiting its backoff: a heap of
        #: (ready_at, order, owner, configuration, runtime, attempt).
        self._delayed: List[
            Tuple[float, int, "ServiceEvaluator", Configuration, Optional[float], int]
        ] = []
        self._retry_order = 0
        #: Resubmission attempt of each running evaluation, keyed by its
        #: sequence number (populated only under a fault plan).
        self._attempts: Dict[int, int] = {}
        self.num_lost = 0
        self.num_retried = 0
        self.num_exhausted = 0
        self.clients: List["ServiceEvaluator"] = []
        #: Guards the queue, the running list, the retry heap, the clock and
        #: the per-tenant slot accounting.  Re-entrant: ``process_until``
        #: holds it while calling ``_drain_queue``/``_start``, and a client's
        #: ``wait_any`` holds it across the advance-then-collect sequence so
        #: parallel shard stepping can drive several clients of one pool
        #: concurrently.  Event order stays deterministic because virtual
        #: time, not thread arrival, orders the events each holder fires.
        self.lock = threading.RLock()

    # ------------------------------------------------------------------ state
    def idle_workers(self) -> List[WorkerState]:
        """Workers without a running evaluation (dead workers excluded)."""
        return [w for w in self.workers if w.idle]

    @property
    def num_dead(self) -> int:
        """Number of workers that crashed and left service permanently."""
        return sum(1 for w in self.workers if w.dead)

    @property
    def num_idle(self) -> int:
        """Number of idle workers."""
        return len(self.idle_workers())

    @property
    def num_pending(self) -> int:
        """Number of evaluations currently running on the pool."""
        return len(self._running)

    @property
    def num_queued(self) -> int:
        """Number of accepted requests waiting for a worker."""
        return len(self._queue)

    def next_completion_time(self) -> float:
        """Completion time of the earliest running evaluation (inf if none)."""
        with self.lock:
            if not self._running:
                return float("inf")
            return min(p.completes_at for p, _, _ in self._running)

    def next_event_time(self) -> float:
        """Time of the pool's next event: a completion or a retry release."""
        with self.lock:
            next_retry = self._delayed[0][0] if self._delayed else float("inf")
            return min(self.next_completion_time(), next_retry)

    def advance_to(self, time: float) -> None:
        """Move the shared clock forward (never backwards)."""
        with self.lock:
            if time < self.now:
                raise ValueError(f"cannot move time backwards ({time} < {self.now})")
            self.now = time

    # ------------------------------------------------------------- scheduling
    def evaluator_factory(self, tenant: str = "default") -> Callable:
        """A ``(run_function, num_workers, failure_duration) → evaluator``
        factory binding new :class:`ServiceEvaluator` clients to this pool
        (the ``num_workers`` argument is ignored — capacity belongs to the
        pool).  Plugs straight into ``CBOSearch(evaluator_factory=...)``.
        ``tenant`` labels the clients for the pool's per-tenant slot
        accounting (see ``tenant_slots``).
        """

        def factory(run_function, num_workers, failure_duration):
            return ServiceEvaluator(
                run_function, pool=self, failure_duration=failure_duration,
                tenant=tenant,
            )

        return factory

    def tenant_running(self, tenant: str) -> int:
        """Number of evaluations the tenant is currently running."""
        return self._tenant_running.get(tenant, 0)

    def _tenant_admissible(self, client: "ServiceEvaluator") -> bool:
        """Whether starting one more of ``client``'s requests respects its
        tenant's slot cap (always true without ``tenant_slots``)."""
        if self.tenant_slots is None:
            return True
        cap = self.tenant_slots.get(client.tenant)
        if cap is None:
            return True
        return self._tenant_running.get(client.tenant, 0) < cap

    def _start(
        self,
        client: "ServiceEvaluator",
        config: Configuration,
        at_time: float,
        worker: WorkerState,
        runtime: Optional[float] = None,
        attempt: int = 0,
    ) -> PendingEvaluation:
        runtime = float(client.run_function(config) if runtime is None else runtime)
        seq = self._next_seq
        self._next_seq += 1
        decision = None if self.fault_plan is None else self.fault_plan.decide(seq)
        runtime, duration = resolve_outcome(
            config,
            runtime,
            client.duration_function,
            client.failure_duration,
            self.deadline,
            decision,
        )
        lost = crashed = False
        if decision is not None:
            if decision.crash:
                # The worker dies part-way through; the evaluation is lost and
                # the "completion" event is the moment of death.
                crashed = lost = True
                duration = decision.crash_fraction * duration
            elif decision.lost:
                lost = True
            if lost:
                self._attempts[seq] = attempt
        pending = PendingEvaluation(
            configuration=dict(config),
            worker=worker.index,
            submitted=at_time,
            completes_at=at_time + duration,
            runtime=runtime,
            seq=seq,
            lost=lost,
            crashed=crashed,
        )
        worker.evaluations_running += 1
        worker.busy_until = at_time + duration
        if math.isfinite(duration):
            worker.busy_time += duration
        worker.evaluations += 1
        running = self._tenant_running.get(client.tenant, 0) + 1
        self._tenant_running[client.tenant] = running
        if running > self.tenant_peak_running.get(client.tenant, 0):
            self.tenant_peak_running[client.tenant] = running
        self._running.append((pending, client, seq))
        client._own_running.append(pending)
        client.num_submitted += 1
        client._started_intervals.append((at_time, at_time + duration))
        return pending

    def submit(self, client: "ServiceEvaluator", configurations, runtimes=None) -> int:
        """Accept requests from ``client``: start on idle workers, queue the rest.

        Thread-safe: the idle-worker scan, the starts and the queue appends
        are one critical section, so concurrent submitters cannot start two
        evaluations on one worker or interleave their queue entries.
        """
        if runtimes is not None and len(runtimes) != len(configurations):
            raise ValueError("runtimes and configurations must have equal length")
        with self.lock:
            accepted = 0
            idle = deque(self.idle_workers())
            for i, config in enumerate(configurations):
                runtime = None if runtimes is None else runtimes[i]
                if idle and self._tenant_admissible(client):
                    self._start(client, config, self.now, idle.popleft(), runtime)
                else:
                    self._queue.append((client, dict(config), runtime, 0))
                accepted += 1
            return accepted

    def _handle_loss(self, pending: PendingEvaluation, owner: "ServiceEvaluator") -> None:
        """Retry (with backoff) or give up on an evaluation lost to a fault."""
        attempt = self._attempts.pop(pending.seq, 0)
        if attempt >= self.max_retries:
            # Retries exhausted: declare the configuration failed at the time
            # of the final loss, so the owner tells NaN like any failure.
            self.num_exhausted += 1
            owner._done.append(
                CompletedEvaluation(
                    configuration=pending.configuration,
                    worker=pending.worker,
                    submitted=pending.submitted,
                    completed=pending.completes_at,
                    runtime=float("nan"),
                    seq=pending.seq,
                )
            )
            return
        self.num_retried += 1
        ready_at = pending.completes_at + self.backoff_base * (2.0 ** attempt)
        self._retry_order += 1
        heapq.heappush(
            self._delayed,
            (
                ready_at,
                self._retry_order,
                owner,
                pending.configuration,
                None,
                attempt + 1,
            ),
        )

    def process_until(self, horizon: float) -> None:
        """Fire every pool event at or before ``horizon``.

        Events are completions and retry releases, interleaved in time order
        (a retry whose backoff expires at the same instant a completion fires
        is released first, so it can take the freed worker's place in the
        queue ahead of nothing — ties are rare and deterministic either way).
        Completions fire in ``(completion time, submission order)`` order;
        each freed worker immediately picks up the oldest queued request,
        which starts at the freeing completion's time (and may itself
        complete within the horizon).  An evaluation flagged lost or crashed
        delivers no result: the worker is freed (or dies) and the loss is
        handed to the retry policy.
        """
        with self.lock:
            self._process_until_locked(horizon)

    def _process_until_locked(self, horizon: float) -> None:
        while True:
            next_retry = self._delayed[0][0] if self._delayed else float("inf")
            pos = None
            next_comp = float("inf")
            if self._running:
                pos = min(
                    range(len(self._running)),
                    key=lambda i: (self._running[i][0].completes_at, self._running[i][2]),
                )
                next_comp = self._running[pos][0].completes_at
            if next_retry <= next_comp:
                if next_retry > horizon or math.isinf(next_retry):
                    return
                ready_at, _, client, config, runtime, attempt = heapq.heappop(
                    self._delayed
                )
                idle = self.idle_workers()
                if idle and self._tenant_admissible(client):
                    self._start(client, config, ready_at, idle[0], runtime, attempt)
                else:
                    self._queue.append((client, config, runtime, attempt))
                continue
            if pos is None or next_comp > horizon or math.isinf(next_comp):
                return
            pending, owner, _ = self._running[pos]
            del self._running[pos]
            worker = self.workers[pending.worker]
            worker.evaluations_running -= 1
            if pending.crashed:
                worker.dead = True
            self._tenant_running[owner.tenant] -= 1
            owner._own_running.remove(pending)
            if pending.lost:
                self.num_lost += 1
                self._handle_loss(pending, owner)
            else:
                owner._done.append(
                    CompletedEvaluation(
                        configuration=pending.configuration,
                        worker=pending.worker,
                        submitted=pending.submitted,
                        completed=pending.completes_at,
                        runtime=pending.runtime,
                        seq=pending.seq,
                    )
                )
            self._drain_queue(pending.completes_at)

    def _drain_queue(self, at_time: float) -> None:
        """Start queued requests on idle workers, honouring tenant caps.

        The oldest *admissible* queued request starts on the lowest-index
        idle worker, repeatedly: a completion can free both a worker and a
        tenant slot, unblocking requests of other tenants queued behind a
        capped one.  Without ``tenant_slots`` this degenerates to the
        historic drain — at a completion, at most the freed worker is idle
        while the queue is non-empty, so exactly the oldest queued request
        starts on it.
        """
        while self._queue:
            idle = self.idle_workers()
            if not idle:
                return
            pos = None
            for i, entry in enumerate(self._queue):
                if self._tenant_admissible(entry[0]):
                    pos = i
                    break
            if pos is None:
                return
            client, config, runtime, attempt = self._queue[pos]
            del self._queue[pos]
            self._start(client, config, at_time, idle[0], runtime, attempt)

    # ------------------------------------------------------------------ stats
    def utilization(self, horizon: float) -> float:
        """Fraction of pool worker time spent evaluating within ``[0, horizon]``.

        Same estimate as
        :meth:`~repro.core.evaluator.AsyncVirtualEvaluator.utilization`:
        evaluations still running at the horizon contribute only the portion
        before it.
        """
        if horizon <= 0:
            return 0.0
        total_busy = 0.0
        with self.lock:
            workers = list(self.workers)
        for worker in workers:
            over = max(0.0, worker.busy_until - horizon)
            if not math.isfinite(over):
                # A hung evaluation (infinite busy_until) contributes nothing
                # beyond what busy_time recorded for its finite predecessors.
                over = 0.0
            total_busy += max(0.0, worker.busy_time - over)
        return float(total_busy / (horizon * self.num_workers))

    # ---------------------------------------------------------- durable state
    def state_dict(self) -> Dict:
        """JSON-serialisable snapshot of the pool's full dynamic state.

        Only supported for single-client (private) pools: a shared pool's
        state belongs to every campaign using it, so no one campaign's
        journal may claim it.  Floats survive the JSON round trip bit-exactly.
        """
        if len(self.clients) != 1:
            raise RuntimeError(
                "state snapshots require a private (single-client) pool; "
                f"this pool has {len(self.clients)} clients"
            )
        with self.lock:
            return self._state_dict_locked()

    def _state_dict_locked(self) -> Dict:
        return {
            "now": self.now,
            "next_seq": self._next_seq,
            "retry_order": self._retry_order,
            "num_lost": self.num_lost,
            "num_retried": self.num_retried,
            "num_exhausted": self.num_exhausted,
            "running": [
                {
                    "configuration": dict(p.configuration),
                    "worker": p.worker,
                    "submitted": p.submitted,
                    "completes_at": p.completes_at,
                    "runtime": p.runtime,
                    "seq": p.seq,
                    "lost": p.lost,
                    "crashed": p.crashed,
                }
                for p, _, _ in self._running
            ],
            "queue": [
                {"configuration": dict(c), "runtime": r, "attempt": a}
                for _, c, r, a in self._queue
            ],
            "delayed": [
                {
                    "ready_at": ready_at,
                    "order": order,
                    "configuration": dict(c),
                    "runtime": r,
                    "attempt": a,
                }
                for ready_at, order, _, c, r, a in sorted(self._delayed)
            ],
            "attempts": {str(seq): a for seq, a in self._attempts.items()},
            "workers": [
                {
                    "busy_until": w.busy_until,
                    "busy_time": w.busy_time,
                    "evaluations": w.evaluations,
                    "evaluations_running": w.evaluations_running,
                    "dead": w.dead,
                }
                for w in self.workers
            ],
        }

    def load_state_dict(self, state: Dict, client: "ServiceEvaluator") -> None:
        """Restore a :meth:`state_dict` snapshot onto this (private) pool.

        ``client`` is the pool's sole client; every running, queued and
        delayed request in the snapshot is re-attributed to it.
        """
        if len(state["workers"]) != self.num_workers:
            raise ValueError(
                f"snapshot has {len(state['workers'])} workers, "
                f"pool has {self.num_workers}"
            )
        with self.lock:
            self._load_state_dict_locked(state, client)

    def _load_state_dict_locked(self, state: Dict, client: "ServiceEvaluator") -> None:
        self.now = float(state["now"])
        self._next_seq = int(state["next_seq"])
        self._retry_order = int(state["retry_order"])
        self.num_lost = int(state["num_lost"])
        self.num_retried = int(state["num_retried"])
        self.num_exhausted = int(state["num_exhausted"])
        self._running = []
        client._own_running = []
        # Restored running work all belongs to the sole client; the peak is
        # a statistic and intentionally not restored.
        self._tenant_running = {client.tenant: len(state["running"])}
        for p in state["running"]:
            pending = PendingEvaluation(
                configuration=dict(p["configuration"]),
                worker=int(p["worker"]),
                submitted=float(p["submitted"]),
                completes_at=float(p["completes_at"]),
                runtime=float(p["runtime"]),
                seq=int(p["seq"]),
                lost=bool(p["lost"]),
                crashed=bool(p["crashed"]),
            )
            self._running.append((pending, client, pending.seq))
            client._own_running.append(pending)
        self._queue = deque(
            (client, dict(q["configuration"]), q["runtime"], int(q["attempt"]))
            for q in state["queue"]
        )
        self._delayed = [
            (
                float(d["ready_at"]),
                int(d["order"]),
                client,
                dict(d["configuration"]),
                d["runtime"],
                int(d["attempt"]),
            )
            for d in state["delayed"]
        ]
        heapq.heapify(self._delayed)
        self._attempts = {int(k): int(v) for k, v in state["attempts"].items()}
        for worker, w in zip(self.workers, state["workers"]):
            worker.busy_until = float(w["busy_until"])
            worker.busy_time = float(w["busy_time"])
            worker.evaluations = int(w["evaluations"])
            worker.evaluations_running = int(w["evaluations_running"])
            worker.dead = bool(w["dead"])


class ServiceEvaluator:
    """One campaign's client of a (possibly shared) :class:`SharedWorkerPool`.

    Implements the asynchronous evaluation protocol of
    :class:`~repro.core.evaluator.AsyncVirtualEvaluator` — ``submit``,
    ``collect``, ``wait_any``, ``next_completion_time``, ``advance_to``,
    ``num_idle`` / ``num_pending`` / ``pending_evaluations`` and
    ``utilization`` — against a worker pool that may be serving other
    campaigns concurrently.

    Parameters
    ----------
    run_function:
        Configuration → measured run time in seconds (NaN for failures).
    pool:
        The worker pool to join; ``None`` creates a private pool of
        ``num_workers`` (making this evaluator behaviourally identical to
        the private :class:`AsyncVirtualEvaluator`).
    num_workers:
        Capacity of the private pool when ``pool`` is ``None``.
    failure_duration:
        Virtual time a failed evaluation occupies its worker.
    duration_function:
        Optional override mapping ``(configuration, runtime)`` to the
        evaluation's virtual duration.
    deadline, fault_plan, max_retries, backoff_base:
        Fault-tolerance policy forwarded to the **private** pool (see
        :class:`SharedWorkerPool`).  When joining an existing pool the policy
        belongs to that pool, so passing any of these with ``pool`` raises.
    tenant:
        Tenant label for the pool's per-tenant slot accounting
        (``SharedWorkerPool(tenant_slots=...)``); inert unless the pool caps
        this tenant.
    """

    def __init__(
        self,
        run_function: Callable[[Configuration], float],
        pool: Optional[SharedWorkerPool] = None,
        num_workers: int = 128,
        failure_duration: float = DEFAULT_FAILURE_DURATION,
        duration_function: Optional[Callable[[Configuration, float], float]] = None,
        deadline: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_retries: Optional[int] = None,
        backoff_base: Optional[float] = None,
        tenant: str = "default",
    ):
        if failure_duration <= 0:
            raise ValueError("failure_duration must be positive")
        if pool is not None and any(
            v is not None for v in (deadline, fault_plan, max_retries, backoff_base)
        ):
            raise ValueError(
                "deadline/fault_plan/max_retries/backoff_base belong to the "
                "pool; configure them on the SharedWorkerPool instead"
            )
        self.run_function = run_function
        if pool is None:
            policy = {}
            if max_retries is not None:
                policy["max_retries"] = max_retries
            if backoff_base is not None:
                policy["backoff_base"] = backoff_base
            pool = SharedWorkerPool(
                num_workers, fault_plan=fault_plan, deadline=deadline, **policy
            )
        self.pool = pool
        self.tenant = str(tenant)
        self.failure_duration = float(failure_duration)
        self.duration_function = duration_function
        self.num_submitted = 0
        self.num_collected = 0
        self._own_running: List[PendingEvaluation] = []
        self._done: List[CompletedEvaluation] = []
        self._started_intervals: List[Tuple[float, float]] = []
        self.pool.clients.append(self)

    # ----------------------------------------------------------- delegations
    @property
    def num_workers(self) -> int:
        """Capacity of the underlying pool."""
        return self.pool.num_workers

    @property
    def workers(self) -> List[WorkerState]:
        """The pool's worker states."""
        return self.pool.workers

    @property
    def now(self) -> float:
        """The shared virtual clock."""
        return self.pool.now

    def advance_to(self, time: float) -> None:
        """Move the shared clock forward (never backwards)."""
        self.pool.advance_to(time)

    def idle_workers(self) -> List[WorkerState]:
        """Idle workers of the pool."""
        return self.pool.idle_workers()

    @property
    def num_idle(self) -> int:
        """Number of idle pool workers."""
        return self.pool.num_idle

    @property
    def num_pending(self) -> int:
        """Number of *this client's* evaluations currently running."""
        return len(self._own_running)

    @property
    def num_queued(self) -> int:
        """Number of this client's requests still waiting for a worker."""
        with self.pool.lock:
            return sum(1 for entry in self.pool._queue if entry[0] is self)

    def pending_evaluations(self) -> Tuple[PendingEvaluation, ...]:
        """Snapshot of this client's running evaluations (submission order)."""
        with self.pool.lock:
            return tuple(self._own_running)

    def drain_started_intervals(self) -> List[Tuple[float, float]]:
        """``(submitted, completes_at)`` of this client's evaluations started
        since the last drain, in start order — includes requests that waited
        in the queue and started when a worker freed up."""
        with self.pool.lock:
            started, self._started_intervals = self._started_intervals, []
        return started

    def _duration(self, config: Configuration, runtime: float) -> float:
        return resolve_duration(
            config, runtime, self.duration_function, self.failure_duration
        )

    # ------------------------------------------------------------- submission
    def submit(self, configurations, runtimes=None) -> int:
        """Send requests to the service at the current time.

        Unlike the private evaluator — which drops configurations beyond its
        idle capacity — the service **queues** them, so the return value is
        the number of requests accepted (all of them).  ``runtimes``
        optionally supplies precomputed measurements (see
        :meth:`AsyncVirtualEvaluator.submit`).
        """
        return self.pool.submit(self, configurations, runtimes)

    # -------------------------------------------------------------- collection
    def next_completion_time(self) -> float:
        """Completion time of this client's earliest running evaluation."""
        with self.pool.lock:
            if not self._own_running:
                return float("inf")
            return min(p.completes_at for p in self._own_running)

    def collect(self, until: Optional[float] = None) -> List[CompletedEvaluation]:
        """Collect this client's evaluations completed at or before ``until``.

        ``until`` defaults to the current shared time.  The returned list is
        ordered by completion time.  Runs under the pool lock: processing can
        append to *other* clients' done lists (their completions fire while
        the clock advances), so the read-filter-rewrite of ``self._done``
        must be atomic with it.
        """
        with self.pool.lock:
            horizon = self.pool.now if until is None else until
            self.pool.process_until(horizon)
            ready = [c for c in self._done if c.completed <= horizon]
            if not ready:
                return []
            self._done = [c for c in self._done if c.completed > horizon]
            ready.sort(key=lambda c: c.completed)
            self.num_collected += len(ready)
            return ready

    def wait_any(self, max_time: float) -> Tuple[float, List[CompletedEvaluation]]:
        """Advance to this client's next completion (capped) and collect.

        Completions of *other* clients sharing the pool are processed along
        the way (freeing workers and draining the queue); the clock stops at
        the first time this client has results, or at ``max_time``.  Raises
        :class:`~repro.core.evaluator.EvaluatorStalledError` when this client
        has outstanding work but the pool has no future event that could ever
        deliver it (every pending evaluation hangs without a deadline, or
        queued work is starved because every worker died).

        The whole advance-then-collect loop holds the pool lock: clients of
        one pool stepped from parallel shards serialise here, and virtual
        time (not thread arrival order) still decides which events fire.
        """
        pool = self.pool
        with pool.lock:
            return self._wait_any_locked(max_time)

    def _wait_any_locked(self, max_time: float) -> Tuple[float, List[CompletedEvaluation]]:
        pool = self.pool
        while True:
            if (
                (self._own_running or self.num_queued)
                and not self._done
                and pool.next_event_time() == math.inf
            ):
                raise EvaluatorStalledError(
                    f"{len(self._own_running)} running and {self.num_queued} "
                    "queued evaluation(s) can never complete "
                    f"({pool.num_dead} of {pool.num_workers} workers dead)"
                )
            target = min(pool.next_event_time(), max_time)
            if target < pool.now:
                target = pool.now
            if math.isinf(target):
                # Nothing will ever happen and this client has nothing
                # outstanding: do not spin the shared clock to infinity.
                return pool.now, []
            pool.advance_to(target)
            collected = self.collect()
            if (
                collected
                or pool.now >= max_time
                or (not pool._running and not pool._delayed)
            ):
                return pool.now, collected

    # ------------------------------------------------------------------ stats
    def utilization(self, horizon: float) -> float:
        """Pool-level utilisation within ``[0, horizon]``.

        With a private pool this is exactly the private evaluator's metric;
        with a shared pool it reflects the whole service (the per-campaign
        share is not separable at the worker level).
        """
        return self.pool.utilization(horizon)

    # ---------------------------------------------------------- durable state
    def state_dict(self) -> Dict:
        """JSON-serialisable snapshot of this client plus its private pool.

        Raises for shared pools (see :meth:`SharedWorkerPool.state_dict`):
        a shared pool's clock and queue belong to every campaign using it.
        """
        return {
            "pool": self.pool.state_dict(),
            "num_submitted": self.num_submitted,
            "num_collected": self.num_collected,
            "done": [
                {
                    "configuration": dict(c.configuration),
                    "worker": c.worker,
                    "submitted": c.submitted,
                    "completed": c.completed,
                    "runtime": c.runtime,
                    "seq": c.seq,
                }
                for c in self._done
            ],
            "started_intervals": [list(t) for t in self._started_intervals],
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this client and pool."""
        self.pool.load_state_dict(state["pool"], self)
        self.num_submitted = int(state["num_submitted"])
        self.num_collected = int(state["num_collected"])
        self._done = [
            CompletedEvaluation(
                configuration=dict(c["configuration"]),
                worker=int(c["worker"]),
                submitted=float(c["submitted"]),
                completed=float(c["completed"]),
                runtime=float(c["runtime"]),
                seq=int(c["seq"]),
            )
            for c in state["done"]
        ]
        self._started_intervals = [
            (float(a), float(b)) for a, b in state["started_intervals"]
        ]
