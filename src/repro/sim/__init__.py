"""Discrete-event simulation kernel.

This subpackage provides a small, dependency-free discrete-event simulation
(DES) engine in the spirit of SimPy.  It is the foundation for every simulator
in this repository: the Mochi software stack (:mod:`repro.mochi`), the HEPnOS
storage service (:mod:`repro.hepnos`), and the HEP event-selection workflow
(:mod:`repro.hep`).

The engine is deliberately compact but complete enough for queueing-style
models:

* :class:`~repro.sim.engine.Environment` — the event loop and virtual clock.
* :class:`~repro.sim.engine.Event`, :class:`~repro.sim.engine.Timeout` —
  primitive events.
* :class:`~repro.sim.process.Process` — generator-based simulated processes.
* :class:`~repro.sim.resources.Resource` — capacity-limited resources with
  FIFO or priority queueing (used to model CPU cores, thread pools, network
  links).
* :class:`~repro.sim.resources.Store` — producer/consumer item stores (used to
  model work queues and RPC mailboxes).
* :class:`~repro.sim.resources.Container` — continuous-level containers.

It also hosts the deterministic fault-injection harness
(:class:`~repro.sim.faults.FaultPlan`) used to stress the evaluation
backends with worker crashes, hangs, stragglers and lost results.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)
from repro.sim.faults import FaultDecision, FaultPlan
from repro.sim.process import Process
from repro.sim.resources import Container, PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "FaultDecision",
    "FaultPlan",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
