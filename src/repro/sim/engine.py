"""Core discrete-event simulation engine.

The engine follows the classic event-list design: an
:class:`Environment` owns a priority queue (binary heap) of scheduled
:class:`Event` objects, ordered by ``(time, priority, sequence)``.  Simulated
activities are expressed as Python generators wrapped in
:class:`repro.sim.process.Process`; a process yields events and is resumed
when the yielded event fires.

Design notes
------------
* Virtual time is a ``float`` in arbitrary units (the rest of the repository
  uses seconds).
* Events fire exactly once.  Firing an already-fired event raises
  :class:`SimulationError`.
* ``Environment.run(until=...)`` advances the clock until the heap is empty or
  the given time is reached, whichever comes first.
* The engine is single-threaded and deterministic: with the same schedule of
  events it always produces the same trajectory, which is essential for
  reproducible benchmarks.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, List, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Environment",
]

#: Default priority for scheduled events (smaller fires earlier at equal time).
NORMAL_PRIORITY = 1
#: Priority used for events that must fire before normal ones at equal time.
URGENT_PRIORITY = 0


class SimulationError(RuntimeError):
    """Raised for illegal operations on the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when it is interrupted.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the interrupt happened.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A single occurrence inside the simulation.

    An event has three states: *pending* (created but not triggered),
    *triggered* (scheduled on the environment's heap) and *processed* (its
    callbacks have run).  Callbacks are callables taking the event itself.

    Attributes
    ----------
    env:
        The owning :class:`Environment`.
    callbacks:
        List of callables invoked when the event is processed.  ``None`` once
        the event has been processed.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._defused = False

    # ------------------------------------------------------------------ state
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (value), False if it failed."""
        if self._ok is None:
            raise SimulationError("event has not fired yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (or the exception if it failed)."""
        if self._ok is None:
            raise SimulationError("event has not fired yet")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not escalate at run()."""
        self._defused = True

    # ------------------------------------------------------------- triggering
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env._schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fire with an exception."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env._schedule(self, delay=0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy state from another fired event and schedule (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # --------------------------------------------------------------- chaining
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when this event is processed."""
        if self.callbacks is None:
            # Already processed: run immediately to keep semantics simple.
            callback(self)
        else:
            self.callbacks.append(callback)

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self._triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        env._schedule(self, delay=delay)

    @property
    def delay(self) -> float:
        """The delay this timeout was created with."""
        return self._delay


class _Condition(Event):
    """Base class for AllOf / AnyOf composite events."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("events belong to different environments")
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            ev.add_callback(self._check)

    def _collect_values(self) -> dict:
        return {
            ev: ev._value
            for ev in self._events
            if ev._triggered and ev._ok is not None and ev.processed
        }

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* constituent events have fired.

    Fails immediately if any constituent fails.
    """

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed({ev: ev._value for ev in self._events})


class AnyOf(_Condition):
    """Fires when *any* constituent event has fired."""

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self.succeed({event: event._value})


class Environment:
    """The simulation environment: virtual clock plus event heap.

    Parameters
    ----------
    initial_time:
        Starting value of the virtual clock (default 0.0).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._active_process = None

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed (or ``None``)."""
        return self._active_process

    # ------------------------------------------------------------ event kinds
    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Wrap ``generator`` in a :class:`~repro.sim.process.Process`."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all ``events`` fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` fired."""
        return AnyOf(self, events)

    # ------------------------------------------------------------- scheduling
    def _schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL_PRIORITY
    ) -> None:
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._seq), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        SimulationError
            If there is no event left to process.
        """
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _priority, _seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError("event processed twice")
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            # An un-handled failure escalates to the run() caller.
            exc = event._value
            raise exc

    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation.

        Parameters
        ----------
        until:
            If given, stop once the clock would pass this time (the clock is
            then set to exactly ``until``).  If ``None``, run until no events
            remain.
        """
        if until is not None and until < self._now:
            raise ValueError(
                f"until ({until}) must not be before current time ({self._now})"
            )
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
