"""Deterministic fault injection for the virtual evaluation backends.

The paper's campaigns run for an hour on 128 Theta nodes; at that scale
evaluations routinely fail, straggle, hang past the 600 s kill limit, or are
lost outright when a node dies.  The fault-free virtual evaluators would never
exercise the service layer's defences against any of that, so this module
provides the missing adversary: a seeded :class:`FaultPlan` that decides, per
evaluation, whether and how it misbehaves.

Determinism is the defining property.  Every evaluation carries a
monotonically increasing per-evaluator sequence number (``seq``), and the
plan's decision for an evaluation is a pure function of ``(plan seed, seq)``
— independent of submission interleaving, retries of *other* evaluations, or
how many campaigns share the pool.  A crashed-and-resumed campaign therefore
replays exactly the same faults it would have met uninterrupted, which is
what makes the resume bit-identity contract testable under faults.

Fault kinds (one primary kind per evaluation, plus an independent
measurement-failure overlay):

* ``fail`` — the measurement comes back NaN (elevated evaluation-failure
  rate; the worker is occupied for ``failure_duration`` as usual).
* ``straggler`` — the evaluation occupies its worker ``straggler_factor``
  times longer than the measured runtime (interference slowdown); the
  measurement itself is unchanged.
* ``hang`` — the evaluation never completes on its own.  With a deadline the
  kill limit converts it into a failure at the deadline; without one the
  evaluator's stall valve (:class:`~repro.core.evaluator.EvaluatorStalledError`)
  is the only way out.
* ``lost`` — the evaluation runs to completion but its result never reaches
  the manager (dropped message); the worker is freed.
* ``crash`` — the worker dies mid-evaluation (at ``crash_fraction`` of the
  duration): the evaluation is lost and the worker never accepts work again.

The :class:`~repro.service.SharedWorkerPool` resubmits lost/crashed work with
capped exponential backoff; the private
:class:`~repro.core.evaluator.AsyncVirtualEvaluator` simply loses it — the
degraded-but-correct behaviour the Hypothesis protocol suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["FaultDecision", "FaultPlan"]


@dataclass(frozen=True)
class FaultDecision:
    """How one evaluation misbehaves (all-False for a healthy evaluation).

    Attributes
    ----------
    fail:
        Replace the measured runtime with NaN (evaluation failure).
    hang:
        The evaluation never completes on its own (infinite duration).
    lost:
        The result is dropped at completion time (worker freed, no result).
    crash:
        The worker dies mid-evaluation; the evaluation is lost and the worker
        is permanently removed from service.
    straggler_factor:
        Multiplier on the evaluation's worker-occupancy duration (1.0 for
        non-stragglers).
    crash_fraction:
        Fraction of the (pre-crash) duration after which the worker dies,
        in (0, 1); meaningful only when ``crash`` is set.
    """

    fail: bool = False
    hang: bool = False
    lost: bool = False
    crash: bool = False
    straggler_factor: float = 1.0
    crash_fraction: float = 0.5

    @property
    def healthy(self) -> bool:
        """Whether the evaluation proceeds entirely unperturbed."""
        return not (
            self.fail or self.hang or self.lost or self.crash
            or self.straggler_factor != 1.0
        )


#: The all-healthy decision, shared so the fault-free path allocates nothing.
_HEALTHY = FaultDecision()


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of evaluation faults.

    Rates are independent probabilities; the primary fault kind is drawn by
    precedence ``crash > hang > lost > straggler`` from a single uniform
    draw, and the measurement-failure overlay (``failure_rate``) is drawn
    separately so a straggler can also fail.  All draws for evaluation
    ``seq`` come from ``np.random.default_rng((seed, seq))`` — the decision
    depends on nothing else.

    Parameters
    ----------
    seed:
        Plan seed; two plans with equal parameters and seed are identical.
    failure_rate:
        Probability an evaluation's measurement is NaN (on top of whatever
        the run function itself produces).
    crash_rate, hang_rate, loss_rate, straggler_rate:
        Probabilities of the primary fault kinds (their sum must not exceed
        1).
    straggler_factor:
        Duration multiplier applied to stragglers.
    """

    seed: int = 0
    failure_rate: float = 0.0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    loss_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_factor: float = 10.0

    def __post_init__(self):
        for name in ("failure_rate", "crash_rate", "hang_rate", "loss_rate", "straggler_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        total = self.crash_rate + self.hang_rate + self.loss_rate + self.straggler_rate
        if total > 1.0:
            raise ValueError(f"primary fault rates sum to {total} > 1")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire (False → the plan is a no-op)."""
        return (
            self.failure_rate > 0
            or self.crash_rate > 0
            or self.hang_rate > 0
            or self.loss_rate > 0
            or self.straggler_rate > 0
        )

    def decide(self, seq: int) -> FaultDecision:
        """The (pure, deterministic) fault decision for evaluation ``seq``."""
        if not self.active:
            return _HEALTHY
        rng = np.random.default_rng((self.seed, int(seq)))
        primary, failure, fraction = rng.random(3)
        fail = failure < self.failure_rate
        edge = self.crash_rate
        if primary < edge:
            return FaultDecision(
                fail=fail, crash=True, crash_fraction=0.1 + 0.8 * fraction
            )
        edge += self.hang_rate
        if primary < edge:
            return FaultDecision(fail=fail, hang=True)
        edge += self.loss_rate
        if primary < edge:
            return FaultDecision(fail=fail, lost=True)
        edge += self.straggler_rate
        if primary < edge:
            return FaultDecision(fail=fail, straggler_factor=self.straggler_factor)
        if fail:
            return FaultDecision(fail=True)
        return _HEALTHY


def make_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Normalise a fault-plan argument: inactive plans collapse to ``None``.

    Evaluators call this once at construction so their hot paths can gate all
    fault handling on a single ``is None`` check — a constructed-but-inert
    plan costs the fault-free path nothing.
    """
    if plan is None or not plan.active:
        return None
    return plan
