"""Shared resources for the discrete-event simulation kernel.

Three resource flavours are provided, mirroring the abstractions needed by the
Mochi/HEPnOS simulators:

* :class:`Resource` — a capacity-limited resource with FIFO queueing.  Used to
  model CPU cores, execution streams, network links and database locks.
* :class:`PriorityResource` — same, but requests carry a priority and the
  queue is served lowest-priority-value first (used for ``prio_wait``
  Argobots pools).
* :class:`Store` — an unbounded or bounded buffer of Python objects with
  blocking ``get``/``put`` (used for work queues, RPC mailboxes and the data
  loader's shared file list).
* :class:`Container` — a continuous level (used for memory budgets).

All blocking operations return :class:`~repro.sim.engine.Event` objects that a
process must ``yield``.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Deque, List, Optional

from repro.sim.engine import Environment, Event, SimulationError

__all__ = ["Request", "Release", "Resource", "PriorityResource", "Store", "Container"]


class Request(Event):
    """Event representing a pending or granted resource request.

    Supports use as a context manager inside a process::

        with resource.request() as req:
            yield req
            yield env.timeout(1.0)
    """

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._add_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)


class Release(Event):
    """Event representing a resource release (fires immediately)."""

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        resource._do_release(request)
        self.succeed()


class Resource:
    """A capacity-limited resource with FIFO queueing.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of simultaneous users (must be >= 1).
    name:
        Optional label used in ``repr`` and statistics.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self.name = name
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()
        # statistics
        self._busy_time = 0.0
        self._last_change = env.now
        self._granted = 0

    # ------------------------------------------------------------- properties
    @property
    def count(self) -> int:
        """Number of users currently holding the resource."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting."""
        return len(self.queue)

    @property
    def granted(self) -> int:
        """Total number of requests granted so far."""
        return self._granted

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of capacity-time used since creation.

        Parameters
        ----------
        horizon:
            Time window to normalise against.  Defaults to the elapsed
            simulation time since the resource was created.
        """
        self._account()
        elapsed = horizon if horizon is not None else (self.env.now - 0.0)
        if elapsed <= 0:
            return 0.0
        return self._busy_time / (elapsed * self.capacity)

    # ----------------------------------------------------------------- public
    def request(self, priority: int = 0) -> Request:
        """Request one unit of the resource (returns a yieldable event)."""
        return Request(self, priority)

    def release(self, request: Request) -> Release:
        """Release a previously granted request."""
        return Release(self, request)

    # --------------------------------------------------------------- internal
    def _account(self) -> None:
        now = self.env.now
        self._busy_time += len(self.users) * (now - self._last_change)
        self._last_change = now

    def _add_request(self, request: Request) -> None:
        self._account()
        if len(self.users) < self.capacity:
            self.users.append(request)
            self._granted += 1
            request.succeed()
        else:
            self._enqueue(request)

    def _enqueue(self, request: Request) -> None:
        self.queue.append(request)

    def _dequeue(self) -> Optional[Request]:
        if self.queue:
            return self.queue.popleft()
        return None

    def _do_release(self, request: Request) -> None:
        self._account()
        try:
            self.users.remove(request)
        except ValueError:
            raise SimulationError(
                "released a request that does not hold the resource"
            ) from None
        nxt = self._dequeue()
        if nxt is not None:
            self.users.append(nxt)
            self._granted += 1
            nxt.succeed()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Resource{label} capacity={self.capacity} "
            f"count={self.count} queue={self.queue_length}>"
        )


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is served by ascending priority value."""

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        super().__init__(env, capacity, name)
        self._pqueue: List[tuple] = []
        self._counter = itertools.count()

    @property
    def queue_length(self) -> int:
        return len(self._pqueue)

    def _enqueue(self, request: Request) -> None:
        heapq.heappush(self._pqueue, (request.priority, next(self._counter), request))

    def _dequeue(self) -> Optional[Request]:
        if self._pqueue:
            return heapq.heappop(self._pqueue)[2]
        return None


class StorePut(Event):
    """Pending put into a :class:`Store`."""

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Pending get from a :class:`Store`."""

    def __init__(self, store: "Store", filter_fn=None):
        super().__init__(store.env)
        self.filter_fn = filter_fn
        store._get_queue.append(self)
        store._trigger()


class Store:
    """A buffer of Python objects with blocking ``put``/``get``.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of buffered items (``float('inf')`` for unbounded).
    """

    def __init__(self, env: Environment, capacity: float = float("inf"), name: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    # ------------------------------------------------------------- properties
    @property
    def level(self) -> int:
        """Number of items currently buffered."""
        return len(self.items)

    # ----------------------------------------------------------------- public
    def put(self, item: Any) -> StorePut:
        """Put ``item`` into the store (blocks while full)."""
        return StorePut(self, item)

    def get(self, filter_fn=None) -> StoreGet:
        """Get the oldest item (optionally the oldest matching ``filter_fn``)."""
        return StoreGet(self, filter_fn)

    def try_get(self) -> Any:
        """Non-blocking get.

        Returns the oldest item, or raises :class:`SimulationError` if empty.
        """
        if not self.items:
            raise SimulationError("store is empty")
        item = self.items.popleft()
        self._trigger()
        return item

    # --------------------------------------------------------------- internal
    def _trigger(self) -> None:
        # Serve puts while space remains.
        progressed = True
        while progressed:
            progressed = False
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Serve gets while items remain.
            remaining: Deque[StoreGet] = deque()
            while self._get_queue and self.items:
                get = self._get_queue.popleft()
                if get.filter_fn is None:
                    item = self.items.popleft()
                    get.succeed(item)
                    progressed = True
                else:
                    for idx, candidate in enumerate(self.items):
                        if get.filter_fn(candidate):
                            del self.items[idx]
                            get.succeed(candidate)
                            progressed = True
                            break
                    else:
                        remaining.append(get)
            while self._get_queue:
                remaining.append(self._get_queue.popleft())
            self._get_queue = remaining

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        label = f" {self.name!r}" if self.name else ""
        return f"<Store{label} level={self.level}/{self.capacity}>"


class ContainerPut(Event):
    """Pending put of an amount into a :class:`Container`."""

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    """Pending get of an amount from a :class:`Container`."""

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """A continuous-level container (e.g. a memory budget in bytes)."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "",
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._level = float(init)
        self._put_queue: Deque[ContainerPut] = deque()
        self._get_queue: Deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        """Current fill level."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount`` (blocks while it would overflow)."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount`` (blocks until available)."""
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue:
                put = self._put_queue[0]
                if self._level + put.amount <= self.capacity:
                    self._put_queue.popleft()
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_queue:
                get = self._get_queue[0]
                if self._level >= get.amount:
                    self._get_queue.popleft()
                    self._level -= get.amount
                    get.succeed()
                    progressed = True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        label = f" {self.name!r}" if self.name else ""
        return f"<Container{label} level={self._level}/{self.capacity}>"
