"""Generator-based simulated processes.

A :class:`Process` drives a Python generator: every value the generator yields
must be an :class:`~repro.sim.engine.Event`; the process suspends until that
event fires and is then resumed with the event's value (or, if the event
failed, the exception is thrown into the generator).

A process is itself an event: it fires with the generator's return value when
the generator finishes, so processes can wait for each other simply by
yielding them.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.engine import Event, Interrupt, SimulationError

__all__ = ["Process"]


class Process(Event):
    """A running simulated activity backed by a generator.

    Parameters
    ----------
    env:
        Owning environment.
    generator:
        A generator yielding :class:`Event` instances.

    Notes
    -----
    The process starts automatically: an initialisation event is scheduled at
    the current simulation time, so the generator body begins executing on the
    next :meth:`Environment.step`.
    """

    def __init__(self, env, generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        # Kick-start: schedule an immediate init event whose callback resumes us.
        init = Event(env)
        init._ok = True
        init._value = None
        init._triggered = True
        env._schedule(init, delay=0.0)
        init.add_callback(self._resume)

    # -------------------------------------------------------------- interface
    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process, raising :class:`Interrupt` inside it.

        Interrupting a finished process raises :class:`SimulationError`.
        """
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        exc = Interrupt(cause)
        # Deliver asynchronously via a failed event so ordering stays with
        # the event heap.
        event = Event(self.env)
        event._ok = False
        event._value = exc
        event._defused = True
        event._triggered = True
        self.env._schedule(event, delay=0.0)
        event.add_callback(self._resume)

    # -------------------------------------------------------------- internals
    def _resume(self, event: Event) -> None:
        if self._triggered:
            # The process already finished (e.g. it returned after handling an
            # interrupt); ignore stale wake-ups from events it used to wait on.
            return
        if self._target is not None and event is not self._target:
            # Only the event we are waiting on — or an interrupt — may resume
            # the process.  Anything else is a stale callback.
            is_interrupt = event._ok is False and isinstance(event._value, Interrupt)
            if not is_interrupt:
                return
        self.env._active_process = self
        target = event
        while True:
            if target._ok is False:
                # The failure is being delivered to this process, so it must
                # not escalate out of Environment.step() as unhandled.
                target._defused = True
            try:
                if target._ok:
                    next_event = self._generator.send(target._value)
                else:
                    next_event = self._generator.throw(target._value)
            except StopIteration as stop:
                self.env._active_process = None
                self._target = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.env._active_process = None
                self._target = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                self.env._active_process = None
                error = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                self.fail(error)
                return

            if next_event.processed:
                # The event already fired and ran callbacks; loop synchronously.
                target = next_event
                continue

            self._target = next_event
            next_event.add_callback(self._resume)
            self.env._active_process = None
            return
