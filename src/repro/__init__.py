"""repro — reproduction of VAE-guided asynchronous Bayesian optimization for
HPC storage service autotuning (CLUSTER 2022).

The package is organised as follows:

* :mod:`repro.sim` — discrete-event simulation kernel.
* :mod:`repro.mochi` — simulated Mochi components (Mercury, Argobots, Margo,
  Yokan, Bedrock).
* :mod:`repro.hepnos` — HEPnOS storage service model built on Mochi.
* :mod:`repro.hep` — the NOvA event-selection workflow (data loader + parallel
  event processing) and its parameter space.
* :mod:`repro.core` — the autotuning library: parameter spaces, surrogate
  models, asynchronous Bayesian optimization, the tabular VAE and the
  VAE-guided transfer-learning search (VAE-ABO).
* :mod:`repro.frameworks` — comparator autotuning frameworks (random search,
  DeepHyper-like, GPtune-like, HiPerBOt-like).
* :mod:`repro.analysis` — effectiveness metrics, campaign runner and
  figure-series generation.

Quickstart
----------
>>> from repro.hep import HEPWorkflowProblem
>>> from repro.core import VAEABOSearch
>>> problem = HEPWorkflowProblem.from_setup("4n-2s-20p", seed=0)
>>> search = VAEABOSearch(problem.space, problem.evaluate, num_workers=8, seed=0)
>>> result = search.run(max_time=300.0)
>>> result.best_objective is not None
True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
