"""The distributed HEPnOS service: all servers across all HEPnOS nodes.

The service aggregates every server's event and product databases into two
flat, globally indexed lists and implements the data-distribution policy the
paper describes: all the events coming from the same input file end up in the
same event database (and likewise for products), selected by hashing the file
identifier.  The PEP application later assigns one listing process per event
database.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence, Tuple

from repro.sim import Environment
from repro.mochi.bedrock import ServiceConfig
from repro.mochi.yokan import Database, YokanCostModel
from repro.mochi.argobots import Pool
from repro.hepnos.server import HEPnOSServer
from repro.platform import Node

__all__ = ["HEPnOSService"]


def _stable_hash(text: str) -> int:
    """Deterministic (process-independent) hash used for data distribution."""
    return int.from_bytes(hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big")


class HEPnOSService:
    """A running HEPnOS deployment.

    Parameters
    ----------
    env:
        Simulation environment.
    nodes:
        The HEPnOS nodes of the allocation.
    config:
        Bedrock configuration applied to every server process.
    servers_per_node:
        Number of HEPnOS server processes per node (the paper's server-side
        ``PESperNode`` parameter, extended space only; defaults to 1).
    yokan_costs:
        Shared Yokan cost model.
    """

    def __init__(
        self,
        env: Environment,
        nodes: Sequence[Node],
        config: ServiceConfig,
        servers_per_node: int = 1,
        yokan_costs: Optional[YokanCostModel] = None,
    ):
        if not nodes:
            raise ValueError("the service needs at least one node")
        if servers_per_node < 1:
            raise ValueError("servers_per_node must be >= 1")
        self.env = env
        self.nodes = list(nodes)
        self.config = config
        self.servers_per_node = int(servers_per_node)

        self.servers: List[HEPnOSServer] = []
        server_id = 0
        for node in self.nodes:
            for _ in range(self.servers_per_node):
                self.servers.append(
                    HEPnOSServer(
                        env,
                        node=node,
                        config=config,
                        server_id=server_id,
                        yokan_costs=yokan_costs,
                    )
                )
                server_id += 1

        # Global database indices: (server, database) pairs.
        self.event_databases: List[Tuple[HEPnOSServer, Database]] = [
            (srv, db) for srv in self.servers for db in srv.event_databases
        ]
        self.product_databases: List[Tuple[HEPnOSServer, Database]] = [
            (srv, db) for srv in self.servers for db in srv.product_databases
        ]
        if not self.event_databases or not self.product_databases:
            raise ValueError("the service must expose event and product databases")

    # ------------------------------------------------------------- distribution
    @property
    def num_event_databases(self) -> int:
        """Total number of event databases across the whole service."""
        return len(self.event_databases)

    @property
    def num_product_databases(self) -> int:
        """Total number of product databases across the whole service."""
        return len(self.product_databases)

    def event_db_for_file(self, file_name: str) -> int:
        """Global index of the event database all of ``file_name``'s events go to."""
        return _stable_hash(file_name) % self.num_event_databases

    def product_db_for_file(self, file_name: str) -> int:
        """Global index of the product database all of ``file_name``'s products go to."""
        return _stable_hash("products:" + file_name) % self.num_product_databases

    def event_db(self, index: int) -> Tuple[HEPnOSServer, Database]:
        """The (server, database) pair of event database ``index``."""
        return self.event_databases[index]

    def product_db(self, index: int) -> Tuple[HEPnOSServer, Database]:
        """The (server, database) pair of product database ``index``."""
        return self.product_databases[index]

    def handler_pool_for_event_db(self, index: int) -> Pool:
        """The Argobots pool servicing requests for event database ``index``."""
        server, db = self.event_databases[index]
        return server.pool_for(db)

    def handler_pool_for_product_db(self, index: int) -> Pool:
        """The Argobots pool servicing requests for product database ``index``."""
        server, db = self.product_databases[index]
        return server.pool_for(db)

    # ------------------------------------------------------------------ stats
    def total_entries(self) -> int:
        """Total number of key/value entries stored across all databases."""
        return sum(len(db) for _, db in self.event_databases) + sum(
            len(db) for _, db in self.product_databases
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<HEPnOSService servers={len(self.servers)} "
            f"event_dbs={self.num_event_databases} "
            f"product_dbs={self.num_product_databases}>"
        )
