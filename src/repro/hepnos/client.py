"""HEPnOS client API used by the data loader and the PEP application.

The client is bound to the Margo engine of the *calling* application process
and to the :class:`~repro.hepnos.service.HEPnOSService` it talks to.  Its
methods are discrete-event generators that application processes ``yield
from``; each method issues the RPCs a real HEPnOS client would issue, with
the batch structure dictated by the tuning parameters (``WriteBatchSize``,
``InputBatchSize``, ``UsePreloading``, ``UseRDMA``).

Chunking
--------
A single input file holds thousands of events; storing it with a batch size of
1 would mean thousands of RPCs, each a handful of microseconds.  To keep the
simulation tractable the client *coalesces* consecutive same-destination RPCs
into at most ``max_chunks_per_call`` chunk-RPCs whose cost is exactly the sum
of the coalesced RPCs' costs (per-RPC progress latency, handler dispatch and
Yokan time are all charged per logical RPC).  The chunking only coarsens the
interleaving granularity, never the total work.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.mochi.margo import MargoEngine
from repro.hepnos.service import HEPnOSService

__all__ = ["HEPnOSClient", "StoredBlock", "StoreStats", "LoadStats"]

#: Approximate serialised size of one event descriptor (key + metadata), bytes.
EVENT_ENTRY_BYTES = 64
#: Approximate size of an RPC request/response header, bytes.
RPC_HEADER_BYTES = 256


@dataclass(frozen=True)
class StoredBlock:
    """Summary record describing one stored file's events (the PEP work unit)."""

    file_name: str
    num_events: int
    product_bytes: int
    event_db: int
    product_db: int

    def to_value(self) -> bytes:
        """Serialise to the bytes stored in the event database."""
        return json.dumps(
            {
                "file": self.file_name,
                "events": self.num_events,
                "product_bytes": self.product_bytes,
                "event_db": self.event_db,
                "product_db": self.product_db,
            }
        ).encode("utf-8")

    @classmethod
    def from_value(cls, value: bytes) -> "StoredBlock":
        """Inverse of :meth:`to_value`."""
        data = json.loads(value.decode("utf-8"))
        return cls(
            file_name=data["file"],
            num_events=int(data["events"]),
            product_bytes=int(data["product_bytes"]),
            event_db=int(data["event_db"]),
            product_db=int(data["product_db"]),
        )


@dataclass
class StoreStats:
    """Outcome of storing one file."""

    file_name: str
    num_events: int
    bytes_stored: int
    num_rpcs: int
    elapsed: float


@dataclass
class LoadStats:
    """Outcome of loading the products of one block."""

    num_events: int
    bytes_loaded: int
    num_rpcs: int
    elapsed: float


class HEPnOSClient:
    """Client handle bound to one application process.

    Parameters
    ----------
    engine:
        The Margo engine of the calling process.
    service:
        The HEPnOS service to talk to.
    use_rdma:
        Whether bulk payloads may use RDMA (the paper's ``UseRDMA``).
    max_chunks_per_call:
        Upper bound on the number of chunk-RPCs a single client call issues
        (see module docstring).
    """

    def __init__(
        self,
        engine: MargoEngine,
        service: HEPnOSService,
        use_rdma: bool = True,
        max_chunks_per_call: int = 8,
    ):
        if max_chunks_per_call < 1:
            raise ValueError("max_chunks_per_call must be >= 1")
        self.engine = engine
        self.service = service
        self.use_rdma = bool(use_rdma)
        self.max_chunks = int(max_chunks_per_call)

    # ------------------------------------------------------------------ store
    def store_file(
        self,
        file_name: str,
        num_events: int,
        product_bytes_per_event: int,
        write_batch_size: int,
        dataset: str = "nova",
    ):
        """DES generator: store one file's events and products into HEPnOS.

        Events from one file all land in a single event database and their
        products in a single product database (hash of the file name), as in
        the real HEPnOS data loader.  Returns a :class:`StoreStats`.
        """
        if num_events <= 0:
            return StoreStats(file_name, 0, 0, 0, 0.0)
        if write_batch_size < 1:
            raise ValueError("write_batch_size must be >= 1")
        start = self.engine.env.now

        event_db_idx = self.service.event_db_for_file(file_name)
        product_db_idx = self.service.product_db_for_file(file_name)
        event_server, event_db = self.service.event_db(event_db_idx)
        product_server, product_db = self.service.product_db(product_db_idx)
        event_pool = event_server.pool_for(event_db)
        product_pool = product_server.pool_for(product_db)

        num_batches = math.ceil(num_events / write_batch_size)
        total_product_bytes = num_events * product_bytes_per_event
        total_event_bytes = num_events * EVENT_ENTRY_BYTES

        block = StoredBlock(
            file_name=file_name,
            num_events=num_events,
            product_bytes=total_product_bytes,
            event_db=event_db_idx,
            product_db=product_db_idx,
        )

        # --- products: the bulk of the payload ------------------------------
        num_rpcs = 0
        chunks = _chunk_counts(num_batches, self.max_chunks)
        events_left = num_events
        for i, batches_in_chunk in enumerate(chunks):
            events_in_chunk = min(events_left, batches_in_chunk * write_batch_size)
            events_left -= events_in_chunk
            chunk_product_bytes = events_in_chunk * product_bytes_per_event
            # Extra fixed cost of the coalesced RPCs (all but the one we issue).
            extra = (batches_in_chunk - 1) * self._per_rpc_fixed_cost(product_server.engine)
            if extra > 0:
                yield self.engine.env.timeout(extra)
            handler = product_db.bulk_put_accounted(
                count=events_in_chunk,
                total_bytes=chunk_product_bytes,
                record_key=b"PBLOCK|" + f"{file_name}|{i}".encode(),
                record_value=b"%d" % events_in_chunk,
            )
            yield from self.engine.call(
                product_server.engine,
                product_pool,
                request_size=RPC_HEADER_BYTES + chunk_product_bytes,
                response_size=RPC_HEADER_BYTES,
                handler=handler,
                use_rdma=self.use_rdma,
            )
            num_rpcs += batches_in_chunk

        # --- events: small descriptors + the block summary record -----------
        extra = (num_batches - 1) * self._per_rpc_fixed_cost(event_server.engine)
        if extra > 0:
            yield self.engine.env.timeout(extra)
        handler = event_db.bulk_put_accounted(
            count=num_events,
            total_bytes=total_event_bytes,
            record_key=b"BLOCK|" + file_name.encode(),
            record_value=block.to_value(),
        )
        yield from self.engine.call(
            event_server.engine,
            event_pool,
            request_size=RPC_HEADER_BYTES + total_event_bytes,
            response_size=RPC_HEADER_BYTES,
            handler=handler,
            use_rdma=self.use_rdma,
        )
        num_rpcs += num_batches

        elapsed = self.engine.env.now - start
        return StoreStats(
            file_name=file_name,
            num_events=num_events,
            bytes_stored=total_product_bytes + total_event_bytes,
            num_rpcs=num_rpcs,
            elapsed=elapsed,
        )

    # ------------------------------------------------------------------- list
    def list_event_blocks(self, event_db_index: int):
        """DES generator: list the stored blocks of one event database.

        This is the PEP application's "listing" phase: one process per event
        database enumerates the events it holds.  Returns a list of
        :class:`StoredBlock`.
        """
        server, db = self.service.event_db(event_db_index)
        pool = server.pool_for(db)

        def handler():
            keys = yield from db.list_keys(prefix=b"BLOCK|")
            values = yield from db.get_multi(keys)
            return [StoredBlock.from_value(v) for v in values if v is not None]

        _, blocks = yield from self.engine.call(
            server.engine,
            pool,
            request_size=RPC_HEADER_BYTES,
            response_size=RPC_HEADER_BYTES
            + sum(len(db.value_of(k)) for k in db.keys() if k.startswith(b"BLOCK|")),
            handler=handler(),
            use_rdma=self.use_rdma,
        )
        return blocks

    # ------------------------------------------------------------------- load
    def load_products(
        self,
        block: StoredBlock,
        input_batch_size: int,
        preloading: bool,
        events: Optional[int] = None,
    ):
        """DES generator: load the products of (part of) a stored block.

        Parameters
        ----------
        block:
            The block whose products are read.
        input_batch_size:
            Number of events fetched per logical request (``InputBatchSize``).
        preloading:
            If True, products are prefetched in per-batch bulk requests
            (``UsePreloading``); otherwise every product is a separate RPC.
        events:
            Number of events to load (defaults to the whole block).

        Returns a :class:`LoadStats`.
        """
        if input_batch_size < 1:
            raise ValueError("input_batch_size must be >= 1")
        num_events = block.num_events if events is None else min(events, block.num_events)
        if num_events <= 0:
            return LoadStats(0, 0, 0, 0.0)
        start = self.engine.env.now

        server, db = self.service.product_db(block.product_db)
        pool = server.pool_for(db)
        bytes_per_event = (
            block.product_bytes // block.num_events if block.num_events else 0
        )
        total_bytes = num_events * bytes_per_event

        if preloading:
            num_requests = math.ceil(num_events / input_batch_size)
        else:
            num_requests = num_events

        chunks = _chunk_counts(num_requests, self.max_chunks)
        events_per_request = num_events / num_requests
        num_rpcs = 0
        for requests_in_chunk in chunks:
            events_in_chunk = int(round(requests_in_chunk * events_per_request))
            events_in_chunk = max(1, min(events_in_chunk, num_events))
            chunk_bytes = events_in_chunk * bytes_per_event
            extra = (requests_in_chunk - 1) * self._per_rpc_fixed_cost(server.engine)
            if not preloading:
                # Per-product loads also pay the single-get overhead per event
                # instead of the amortised batched cost.
                extra += events_in_chunk * (
                    db.cost_model.get_overhead - db.cost_model.batch_per_item
                )
            if extra > 0:
                yield self.engine.env.timeout(extra)
            handler = db.bulk_get_accounted(count=events_in_chunk, total_bytes=chunk_bytes)
            yield from self.engine.call(
                server.engine,
                pool,
                request_size=RPC_HEADER_BYTES,
                response_size=RPC_HEADER_BYTES + chunk_bytes,
                handler=handler,
                use_rdma=self.use_rdma,
            )
            num_rpcs += requests_in_chunk

        return LoadStats(
            num_events=num_events,
            bytes_loaded=total_bytes,
            num_rpcs=num_rpcs,
            elapsed=self.engine.env.now - start,
        )

    # -------------------------------------------------------------- internals
    def _per_rpc_fixed_cost(self, server_engine: MargoEngine) -> float:
        """Fixed cost of one coalesced logical RPC (progress + wire latency)."""
        model = self.service.nodes[0].platform.network if self.service.nodes else None
        latency = model.latency if model is not None else 2.0e-6
        return (
            2 * self.engine.progress_latency()
            + 2 * server_engine.progress_latency()
            + 2 * latency
        )


def _chunk_counts(total: int, max_chunks: int) -> List[int]:
    """Split ``total`` logical operations into at most ``max_chunks`` chunks."""
    if total <= 0:
        return []
    n_chunks = min(total, max_chunks)
    base, rem = divmod(total, n_chunks)
    return [base + (1 if i < rem else 0) for i in range(n_chunks)]
