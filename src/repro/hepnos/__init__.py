"""HEPnOS: a simulated in-memory object store for high-energy physics data.

HEPnOS (https://hepnos.readthedocs.io) is the distributed storage service the
paper autotunes.  It stores a hierarchy of datasets, runs, subruns, events and
products in a flat key/value namespace spread over many Yokan databases, and
is assembled from the Mochi components modelled in :mod:`repro.mochi`.

This subpackage provides:

* :mod:`repro.hepnos.datamodel` — the dataset/run/subrun/event/product
  descriptors and their binary key encoding.
* :mod:`repro.hepnos.server` — one HEPnOS server process (Margo engine,
  provider pools, event/product databases), built from a Bedrock
  :class:`~repro.mochi.bedrock.ServiceConfig`.
* :mod:`repro.hepnos.service` — the whole distributed service (all servers on
  all HEPnOS nodes) plus the data-distribution policy.
* :mod:`repro.hepnos.client` — the client API used by the data loader and the
  PEP application (batch stores, event listing, product loads), expressed as
  discrete-event processes.
"""

from repro.hepnos.datamodel import DataSetID, EventID, ProductID, RunID, SubRunID
from repro.hepnos.server import HEPnOSServer
from repro.hepnos.service import HEPnOSService
from repro.hepnos.client import HEPnOSClient

__all__ = [
    "DataSetID",
    "EventID",
    "HEPnOSClient",
    "HEPnOSServer",
    "HEPnOSService",
    "ProductID",
    "RunID",
    "SubRunID",
]
