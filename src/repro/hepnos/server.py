"""One HEPnOS server process.

A server process is bootstrapped by Bedrock from a
:class:`~repro.mochi.bedrock.ServiceConfig`: it instantiates a Margo engine
(progress loop), the configured Argobots pools, the Yokan providers and their
event/product databases, and registers its CPU footprint with the node it runs
on (dedicated progress threads and busy-spinning pools pin cores; the RPC
execution streams count as worker threads).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim import Environment
from repro.mochi.argobots import Pool, PoolKind
from repro.mochi.bedrock import ServiceConfig
from repro.mochi.margo import MargoEngine, ProgressMode
from repro.mochi.yokan import Database, DatabaseType, Provider, YokanCostModel
from repro.platform import Node

__all__ = ["HEPnOSServer"]


class HEPnOSServer:
    """A single HEPnOS server process built from a Bedrock configuration.

    Parameters
    ----------
    env:
        Simulation environment.
    node:
        The :class:`~repro.platform.Node` hosting the process.
    config:
        Validated Bedrock service configuration.
    server_id:
        Index of this server within the whole service.
    yokan_costs:
        Cost model shared by all databases of this server.
    """

    def __init__(
        self,
        env: Environment,
        node: Node,
        config: ServiceConfig,
        server_id: int = 0,
        yokan_costs: Optional[YokanCostModel] = None,
    ):
        config.validate()
        self.env = env
        self.node = node
        self.config = config
        self.server_id = int(server_id)
        self.yokan_costs = yokan_costs or YokanCostModel()

        # --- Margo engine (progress loop) ---------------------------------
        self.engine = MargoEngine(
            env,
            nic=node.nic,
            progress_mode=ProgressMode(config.margo.progress_mode),
            dedicated_progress_thread=config.margo.dedicated_progress_thread,
            name=f"hepnos-server-{server_id}",
        )

        # --- Argobots pools -------------------------------------------------
        self.pools: Dict[str, Pool] = {}
        for pool_cfg in config.pools:
            self.pools[pool_cfg.name] = Pool(
                env,
                kind=PoolKind(pool_cfg.kind),
                num_xstreams=pool_cfg.num_xstreams,
                name=f"srv{server_id}:{pool_cfg.name}",
            )
        self.engine.handler_pool = self.pools[config.margo.rpc_pool]

        # --- Providers and databases ----------------------------------------
        self.providers: List[Provider] = []
        self.event_databases: List[Database] = []
        self.product_databases: List[Database] = []
        for prov_cfg in config.providers:
            pool = self.pools[prov_cfg.pool]
            provider = Provider(prov_cfg.provider_id, pool)
            for db_cfg in prov_cfg.databases:
                db = Database(
                    env,
                    name=f"srv{server_id}:{db_cfg.name}",
                    db_type=DatabaseType(db_cfg.db_type),
                    cost_model=self.yokan_costs,
                )
                provider.add_database(db)
                if db_cfg.role == "events":
                    self.event_databases.append(db)
                elif db_cfg.role == "products":
                    self.product_databases.append(db)
            self.providers.append(provider)

        self._provider_of_db: Dict[str, Provider] = {}
        for provider in self.providers:
            for db in provider.databases:
                self._provider_of_db[db.name] = provider

        # --- CPU footprint ----------------------------------------------------
        node.register_pinned(self.engine.pinned_cores())
        for pool in self.pools.values():
            node.register_pinned(pool.cpu_occupancy())
        # RPC execution streams of blocking pools count as workers (they are
        # busy only while requests are being serviced).
        node.register_workers(
            sum(
                p.num_xstreams
                for p in self.pools.values()
                if not p.busy_spins_when_idle
            )
        )

    # ----------------------------------------------------------------- lookup
    def provider_for(self, database: Database) -> Provider:
        """The provider serving ``database`` (determines the handler pool)."""
        return self._provider_of_db[database.name]

    def pool_for(self, database: Database) -> Pool:
        """The Argobots pool in which requests for ``database`` execute."""
        return self.provider_for(database).pool

    @property
    def num_databases(self) -> int:
        """Total number of databases hosted by this server."""
        return len(self.event_databases) + len(self.product_databases)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<HEPnOSServer {self.server_id} node={self.node.name!r} "
            f"events={len(self.event_databases)} products={len(self.product_databases)}>"
        )
