"""HEPnOS data model: datasets, runs, subruns, events and products.

HEPnOS organises HEP data hierarchically::

    DataSet -> Run -> SubRun -> Event -> Product

and maps every level onto a flat key/value namespace.  Keys are constructed so
that the lexicographic byte order of the keys matches the numeric order of the
identifiers, which is what allows efficient prefix listing of, say, all events
of a subrun.  Products carry the actual payload (serialised C++ objects in the
real system) and are keyed by the owning event plus a product label.

These descriptors are plain immutable value objects; the binary encoding is
exercised directly by the Yokan databases of the simulated service, so the
round-trip (encode → store → list → decode) is tested for correctness.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import total_ordering
from typing import Tuple

__all__ = [
    "DataSetID",
    "RunID",
    "SubRunID",
    "EventID",
    "ProductID",
]

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")


def _encode_u32(value: int) -> bytes:
    if value < 0 or value > 0xFFFFFFFF:
        raise ValueError(f"value {value} out of range for u32")
    return _U32.pack(value)


def _encode_u64(value: int) -> bytes:
    if value < 0 or value > 0xFFFFFFFFFFFFFFFF:
        raise ValueError(f"value {value} out of range for u64")
    return _U64.pack(value)


@total_ordering
@dataclass(frozen=True)
class DataSetID:
    """A named dataset (the root of the hierarchy)."""

    name: str

    def key(self) -> bytes:
        """Binary key of the dataset itself."""
        return b"DS|" + self.name.encode("utf-8")

    def __lt__(self, other: "DataSetID") -> bool:
        return self.name < other.name


@total_ordering
@dataclass(frozen=True)
class RunID:
    """A run within a dataset."""

    dataset: DataSetID
    run: int

    def key(self) -> bytes:
        """Binary key; sorts by (dataset, run)."""
        return self.dataset.key() + b"|R|" + _encode_u32(self.run)

    def _tuple(self) -> Tuple:
        return (self.dataset.name, self.run)

    def __lt__(self, other: "RunID") -> bool:
        return self._tuple() < other._tuple()


@total_ordering
@dataclass(frozen=True)
class SubRunID:
    """A subrun within a run."""

    run: RunID
    subrun: int

    def key(self) -> bytes:
        """Binary key; sorts by (dataset, run, subrun)."""
        return self.run.key() + b"|S|" + _encode_u32(self.subrun)

    def _tuple(self) -> Tuple:
        return (self.run.dataset.name, self.run.run, self.subrun)

    def __lt__(self, other: "SubRunID") -> bool:
        return self._tuple() < other._tuple()


@total_ordering
@dataclass(frozen=True)
class EventID:
    """An event within a subrun — the unit of work of the PEP application."""

    subrun: SubRunID
    event: int

    def key(self) -> bytes:
        """Binary key; sorts by (dataset, run, subrun, event)."""
        return self.subrun.key() + b"|E|" + _encode_u64(self.event)

    @property
    def dataset(self) -> DataSetID:
        """The dataset this event ultimately belongs to."""
        return self.subrun.run.dataset

    def as_tuple(self) -> Tuple[str, int, int, int]:
        """``(dataset, run, subrun, event)`` tuple, as used by the PEP queues."""
        return (
            self.subrun.run.dataset.name,
            self.subrun.run.run,
            self.subrun.subrun,
            self.event,
        )

    @classmethod
    def from_numbers(
        cls, dataset: str, run: int, subrun: int, event: int
    ) -> "EventID":
        """Convenience constructor from plain numbers."""
        return cls(
            subrun=SubRunID(run=RunID(dataset=DataSetID(dataset), run=run), subrun=subrun),
            event=event,
        )

    def _tuple(self) -> Tuple:
        return self.as_tuple()

    def __lt__(self, other: "EventID") -> bool:
        return self._tuple() < other._tuple()


@total_ordering
@dataclass(frozen=True)
class ProductID:
    """A data product attached to an event (the payload-carrying object)."""

    event: EventID
    label: str

    def key(self) -> bytes:
        """Binary key; products of an event share the event-key prefix."""
        return self.event.key() + b"|P|" + self.label.encode("utf-8")

    def _tuple(self) -> Tuple:
        return self.event.as_tuple() + (self.label,)

    def __lt__(self, other: "ProductID") -> bool:
        return self._tuple() < other._tuple()


def parse_event_key(key: bytes) -> Tuple[str, int, int, int]:
    """Decode an event key back into ``(dataset, run, subrun, event)``.

    Raises
    ------
    ValueError
        If the key is not a well-formed event key.
    """
    try:
        if not key.startswith(b"DS|"):
            raise ValueError("missing dataset prefix")
        rest = key[3:]
        name, _, rest = rest.partition(b"|R|")
        run_bytes, _, rest = rest.partition(b"|S|")
        subrun_bytes, _, event_bytes = rest.partition(b"|E|")
        if len(run_bytes) != 4 or len(subrun_bytes) != 4 or len(event_bytes) != 8:
            raise ValueError("malformed numeric fields")
        return (
            name.decode("utf-8"),
            _U32.unpack(run_bytes)[0],
            _U32.unpack(subrun_bytes)[0],
            _U64.unpack(event_bytes)[0],
        )
    except (ValueError, struct.error) as exc:
        raise ValueError(f"not a valid event key: {key!r}") from exc
