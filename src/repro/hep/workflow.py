"""End-to-end HEP workflow evaluation: configuration → run time.

This module ties the substrate together.  Evaluating one configuration means:

1. creating a fresh simulation environment and node allocation for the setup
   (1:3 split between HEPnOS and application nodes, as in the paper),
2. bootstrapping a HEPnOS service from the configuration's HEPnOS parameters
   (via a Bedrock :class:`~repro.mochi.bedrock.ServiceConfig`),
3. running the data-loading step and, for two-step setups, the parallel
   event-processing step, each under the paper's 300 s per-step limit, and
4. returning the total run time — or NaN when a step exceeds its limit (the
   paper kills such runs and reports NaN).

:class:`HEPWorkflowProblem` packages a setup as an autotuning problem: a
search space plus an ``evaluate(configuration) -> run time`` callable, with
the paper's ``-log(runtime)`` objective available through
:meth:`HEPWorkflowProblem.objective`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.sim import Environment
from repro.mochi.bedrock import ServiceConfig
from repro.hepnos.service import HEPnOSService
from repro.hep.costs import WorkflowCostModel, DEFAULT_COSTS
from repro.hep.dataloader import DataLoaderConfig, DataLoaderRun
from repro.hep.hdf5 import SyntheticEventFiles
from repro.hep.parameters import (
    WorkflowSetup,
    complete_configuration,
    get_setup,
)
from repro.hep.pep import PEPConfig, PEPRun
from repro.platform import THETA, NodeAllocation, Platform

__all__ = ["WorkflowResult", "HEPWorkflow", "HEPWorkflowProblem"]


@dataclass(frozen=True)
class WorkflowResult:
    """Outcome of evaluating one configuration.

    ``runtime`` is NaN when the run failed or exceeded a step time limit.
    """

    runtime: float
    loader_time: float
    pep_time: float
    timed_out: bool
    events_stored: int
    events_processed: int

    @property
    def failed(self) -> bool:
        """True when the evaluation did not produce a valid run time."""
        return not math.isfinite(self.runtime)


class HEPWorkflow:
    """Simulator of the full HEP workflow for one setup.

    Parameters
    ----------
    setup:
        A :class:`~repro.hep.parameters.WorkflowSetup` or its name.
    platform:
        Platform model (defaults to the Theta-like platform).
    costs:
        Workflow cost constants.
    seed:
        Seed of the synthetic input-file population.
    noise:
        Relative standard deviation of the multiplicative run-to-run noise
        applied to finite run times (the real workflow is not perfectly
        deterministic).  Set to 0 for a deterministic simulator.
    """

    def __init__(
        self,
        setup: Union[str, WorkflowSetup],
        platform: Platform = THETA,
        costs: WorkflowCostModel = DEFAULT_COSTS,
        seed: int = 0,
        noise: float = 0.02,
    ):
        self.setup = get_setup(setup) if isinstance(setup, str) else setup
        self.platform = platform
        self.costs = costs
        self.seed = int(seed)
        self.noise = float(noise)
        if self.noise < 0:
            raise ValueError("noise must be non-negative")
        self.files = SyntheticEventFiles(self.setup.num_files, seed=seed)

    # -------------------------------------------------------------- evaluation
    def run(
        self,
        configuration: Dict,
        rng: Optional[np.random.Generator] = None,
    ) -> WorkflowResult:
        """Evaluate one configuration and return its :class:`WorkflowResult`.

        ``configuration`` may be restricted to the setup's tuned parameters;
        missing parameters take their default values.
        """
        config = complete_configuration(configuration)
        env = Environment()
        allocation = NodeAllocation.create(env, self.platform, self.setup.num_nodes)

        service_config = ServiceConfig.from_tuning_parameters(
            num_event_dbs=config["hepnos_num_event_databases"],
            num_product_dbs=config["hepnos_num_product_databases"],
            num_providers=config["hepnos_num_providers"],
            num_rpc_threads=config["hepnos_num_rpc_threads"],
            pool_type=config["hepnos_pool_type"],
            progress_thread=config["hepnos_progress_thread"],
            busy_spin=config["busy_spin"],
        )
        service = HEPnOSService(
            env,
            nodes=allocation.hepnos_nodes,
            config=service_config,
            servers_per_node=config["hepnos_pes_per_node"],
            yokan_costs=self.costs.yokan,
        )

        limit = self.costs.step_time_limit

        # ------------------------------------------------------------- step 1
        loader = DataLoaderRun(
            env,
            app_nodes=allocation.app_nodes,
            service=service,
            files=list(self.files),
            config=DataLoaderConfig.from_configuration(config),
            costs=self.costs,
        )
        loader_proc = env.process(loader.run())
        env.run(until=limit)
        if not loader_proc.triggered:
            return WorkflowResult(
                runtime=float("nan"),
                loader_time=float("nan"),
                pep_time=float("nan"),
                timed_out=True,
                events_stored=loader.stats.events_stored,
                events_processed=0,
            )
        loader_time = loader.stats.elapsed

        pep_time = 0.0
        events_processed = 0
        if self.setup.num_steps >= 2:
            # --------------------------------------------------------- step 2
            for node in allocation.app_nodes:
                node.reset_accounting()
            pep = PEPRun(
                env,
                app_nodes=allocation.app_nodes,
                service=service,
                config=PEPConfig.from_configuration(config),
                costs=self.costs,
            )
            pep_start = env.now
            pep_proc = env.process(pep.run())
            env.run(until=pep_start + limit)
            if not pep_proc.triggered:
                return WorkflowResult(
                    runtime=float("nan"),
                    loader_time=loader_time,
                    pep_time=float("nan"),
                    timed_out=True,
                    events_stored=loader.stats.events_stored,
                    events_processed=pep.stats.events_processed,
                )
            pep_time = pep.stats.elapsed
            events_processed = pep.stats.events_processed

        runtime = loader_time + pep_time
        if self.noise > 0 and rng is not None:
            runtime *= float(rng.lognormal(mean=0.0, sigma=self.noise))
        return WorkflowResult(
            runtime=runtime,
            loader_time=loader_time,
            pep_time=pep_time,
            timed_out=False,
            events_stored=loader.stats.events_stored,
            events_processed=events_processed,
        )


class HEPWorkflowProblem:
    """A workflow setup packaged as an autotuning problem.

    Attributes
    ----------
    space:
        The setup's :class:`~repro.core.space.SearchSpace`.
    workflow:
        The underlying :class:`HEPWorkflow` simulator.
    """

    def __init__(
        self,
        workflow: HEPWorkflow,
        seed: int = 0,
    ):
        self.workflow = workflow
        self.space = workflow.setup.space()
        self._rng = np.random.default_rng(seed)
        self.num_evaluations = 0

    @classmethod
    def from_setup(
        cls,
        name: str,
        seed: int = 0,
        platform: Platform = THETA,
        costs: WorkflowCostModel = DEFAULT_COSTS,
        noise: float = 0.02,
    ) -> "HEPWorkflowProblem":
        """Build a problem for one of the paper's setups by name."""
        workflow = HEPWorkflow(name, platform=platform, costs=costs, seed=seed, noise=noise)
        return cls(workflow, seed=seed)

    @property
    def setup(self) -> WorkflowSetup:
        """The underlying workflow setup."""
        return self.workflow.setup

    # -------------------------------------------------------------- evaluation
    def evaluate(self, configuration: Dict) -> float:
        """Run time (seconds) of ``configuration``; NaN on timeout/failure."""
        self.num_evaluations += 1
        result = self.workflow.run(configuration, rng=self._rng)
        return result.runtime

    def objective(self, configuration: Dict) -> float:
        """The paper's maximisation objective, ``-log(runtime)``."""
        runtime = self.evaluate(configuration)
        if not math.isfinite(runtime) or runtime <= 0:
            return float("nan")
        return -math.log(runtime)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<HEPWorkflowProblem setup={self.setup.name!r}>"
