"""The NOvA event-selection workflow (HEPnOS's motivating use case).

This subpackage models the two-step HEP workflow of the paper (Fig. 1):

1. **Data loading** (:mod:`repro.hep.dataloader`): a parallel application
   reads HDF5 event files from a shared list, converts them into objects and
   stores them into HEPnOS.
2. **Parallel event processing** (:mod:`repro.hep.pep`): the PEP benchmark
   lists the stored events (one process per event database), exchanges event
   batches between processes, loads the associated products and "processes"
   them.

Supporting modules:

* :mod:`repro.hep.hdf5` — the synthetic population of input HDF5 files
  (the Fermilab files are not public; see DESIGN.md, Substitutions).
* :mod:`repro.hep.parameters` — the 20-parameter search space of Fig. 1 and
  the five experimental setups (``4n-1s-11p`` … ``16n-2s-20p``).
* :mod:`repro.hep.workflow` — ties everything together: evaluates one
  configuration by deploying a simulated HEPnOS instance and running both
  steps, returning the end-to-end run time (or NaN on timeout/failure).
* :mod:`repro.hep.surrogate_runtime` — a learned surrogate of the workflow
  run time used for the fully-reproducible framework comparison (Fig. 5).
"""

from repro.hep.hdf5 import FileInfo, SyntheticEventFiles
from repro.hep.parameters import (
    ALL_PARAMETERS,
    DEFAULT_CONFIGURATION,
    SETUPS,
    WorkflowSetup,
    build_space,
    get_setup,
)
from repro.hep.workflow import HEPWorkflow, HEPWorkflowProblem, WorkflowResult
from repro.hep.surrogate_runtime import SurrogateRuntime

__all__ = [
    "ALL_PARAMETERS",
    "DEFAULT_CONFIGURATION",
    "FileInfo",
    "HEPWorkflow",
    "HEPWorkflowProblem",
    "SETUPS",
    "SurrogateRuntime",
    "SyntheticEventFiles",
    "WorkflowResult",
    "WorkflowSetup",
    "build_space",
    "get_setup",
]
