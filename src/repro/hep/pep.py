"""Simulation of the parallel event processing (PEP) benchmark (step 2).

The PEP application reads back the events stored by the data loader, loads
the products attached to them and runs a (simulated) selection computation.
Following §II-B2 of the paper:

* one process per event database performs the *listing* phase, filling a
  local queue of event descriptors;
* all processes then pull work either from their own local queue or by
  requesting batches of ``pep_obatch_size`` events from other processes;
* each event is processed by loading its products (optionally prefetched in
  batches of ``pep_ibatch_size`` via ``pep_use_preloading``) and running the
  per-event computation on ``pep_num_threads`` threads.

The tunable behaviour reproduced: ``pep_pes_per_node``, ``pep_num_threads``,
``pep_ibatch_size``, ``pep_obatch_size``, ``pep_use_preloading``,
``pep_use_rdma``, ``pep_progress_thread`` and the common ``busy_spin``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim import Environment, Store
from repro.mochi.margo import MargoEngine, ProgressMode
from repro.hepnos.client import HEPnOSClient, StoredBlock
from repro.hepnos.service import HEPnOSService
from repro.hep.costs import WorkflowCostModel, DEFAULT_COSTS
from repro.platform import Node

__all__ = ["PEPConfig", "PEPStats", "PEPRun"]


@dataclass(frozen=True)
class PEPConfig:
    """PEP tuning parameters (a typed view of the Fig. 1 names)."""

    pes_per_node: int = 8
    num_threads: int = 15
    input_batch_size: int = 128
    output_batch_size: int = 128
    use_preloading: bool = True
    use_rdma: bool = True
    progress_thread: bool = False
    busy_spin: bool = False

    @classmethod
    def from_configuration(cls, config: Dict) -> "PEPConfig":
        """Extract the PEP parameters from a full workflow configuration."""
        return cls(
            pes_per_node=int(config["pep_pes_per_node"]),
            num_threads=int(config["pep_num_threads"]),
            input_batch_size=int(config["pep_ibatch_size"]),
            output_batch_size=int(config["pep_obatch_size"]),
            use_preloading=bool(config["pep_use_preloading"]),
            use_rdma=bool(config["pep_use_rdma"]),
            progress_thread=bool(config["pep_progress_thread"]),
            busy_spin=bool(config["busy_spin"]),
        )

    def __post_init__(self) -> None:
        if self.pes_per_node < 1:
            raise ValueError("pes_per_node must be >= 1")
        if self.num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if self.input_batch_size < 1 or self.output_batch_size < 1:
            raise ValueError("batch sizes must be >= 1")


@dataclass
class PEPStats:
    """Aggregate outcome of the event-processing step."""

    events_processed: int = 0
    bytes_loaded: int = 0
    blocks_processed: int = 0
    remote_blocks: int = 0
    exchange_rpcs: int = 0
    elapsed: float = 0.0
    listing_time: float = 0.0


class PEPRun:
    """One execution of the parallel event-processing step.

    Parameters
    ----------
    env:
        Simulation environment.
    app_nodes:
        Application nodes the PEP processes run on.
    service:
        The HEPnOS service holding the loaded events.
    config:
        PEP tuning parameters.
    costs:
        Workflow cost constants.
    """

    def __init__(
        self,
        env: Environment,
        app_nodes: List[Node],
        service: HEPnOSService,
        config: PEPConfig,
        costs: WorkflowCostModel = DEFAULT_COSTS,
    ):
        if not app_nodes:
            raise ValueError("PEP needs at least one application node")
        self.env = env
        self.app_nodes = list(app_nodes)
        self.service = service
        self.config = config
        self.costs = costs
        self.stats = PEPStats()

        self._num_processes = config.pes_per_node * len(self.app_nodes)
        self._work = Store(env, name="pep-work")
        self._register_core_demand()

    # ------------------------------------------------------------- deployment
    def _register_core_demand(self) -> None:
        for node in self.app_nodes:
            procs = self.config.pes_per_node
            node.register_workers(procs * (1.0 + self.config.num_threads))
            if self.config.progress_thread:
                node.register_pinned(procs * (1.0 if self.config.busy_spin else 0.05))
            elif self.config.busy_spin:
                node.register_pinned(procs * 0.5)

    def _make_engine(self, node: Node, rank: int) -> MargoEngine:
        return MargoEngine(
            self.env,
            nic=node.nic,
            progress_mode=(
                ProgressMode.BUSY_SPIN if self.config.busy_spin else ProgressMode.EPOLL
            ),
            dedicated_progress_thread=self.config.progress_thread,
            name=f"pep-{rank}",
        )

    # -------------------------------------------------------------- simulation
    def run(self):
        """DES process generator: execute the whole event-processing step.

        Returns the populated :class:`PEPStats`.
        """
        start = self.env.now
        num_event_dbs = self.service.num_event_databases

        # Assign processes to nodes round-robin; event databases to processes
        # round-robin (a process may list zero or several databases).
        process_nodes: List[Node] = [
            self.app_nodes[i % len(self.app_nodes)] for i in range(self._num_processes)
        ]
        db_owner: Dict[int, int] = {
            db_idx: db_idx % self._num_processes for db_idx in range(num_event_dbs)
        }

        listers = []
        for rank in range(self._num_processes):
            dbs = [d for d, owner in db_owner.items() if owner == rank]
            listers.append(
                self.env.process(self._lister(process_nodes[rank], rank, dbs))
            )

        consumers = [
            self.env.process(self._consumer(process_nodes[rank], rank))
            for rank in range(self._num_processes)
        ]

        # When every lister has finished, close the work queue with sentinels.
        yield self.env.all_of(listers)
        self.stats.listing_time = self.env.now - start
        for _ in range(self._num_processes):
            yield self._work.put((None, None))

        yield self.env.all_of(consumers)
        self.stats.elapsed = self.env.now - start
        return self.stats

    # ----------------------------------------------------------------- phases
    def _lister(self, node: Node, rank: int, db_indices: List[int]):
        """Listing phase of one process: enumerate blocks of its databases."""
        if not db_indices:
            return
        engine = self._make_engine(node, rank)
        client = HEPnOSClient(engine, self.service, use_rdma=self.config.use_rdma)
        for db_idx in db_indices:
            blocks = yield from client.list_event_blocks(db_idx)
            for block in blocks:
                yield self._work.put((rank, block))

    def _consumer(self, node: Node, rank: int):
        """Processing phase of one process: pull blocks and process them."""
        engine = self._make_engine(node, rank)
        client = HEPnOSClient(engine, self.service, use_rdma=self.config.use_rdma)
        slowdown = node.slowdown()
        effective_threads = self._effective_threads(node)

        while True:
            owner, block = yield self._work.get()
            if block is None:
                break
            if owner != rank:
                # The block's event descriptors are pulled from the owning
                # process in batches of ``output_batch_size``.
                yield from self._exchange(engine, node, block)
                self.stats.remote_blocks += 1
            yield from self._process_block(client, block, slowdown, effective_threads)

    def _exchange(self, engine: MargoEngine, node: Node, block: StoredBlock):
        """Inter-process transfer of a block's event descriptors."""
        n_rpcs = max(1, -(-block.num_events // self.config.output_batch_size))
        descriptor_bytes = block.num_events * self.costs.event_descriptor_bytes
        network = node.platform.network
        per_rpc = (
            self.costs.pep_exchange_rpc_overhead
            + 2 * engine.progress_latency()
            + 2 * network.latency
        )
        transfer = descriptor_bytes / network.bandwidth
        self.stats.exchange_rpcs += n_rpcs
        yield self.env.timeout(n_rpcs * per_rpc + transfer)

    def _process_block(
        self,
        client: HEPnOSClient,
        block: StoredBlock,
        slowdown: float,
        effective_threads: float,
    ):
        """Load products and run the per-event computation for one block."""
        # Client-side cost of issuing the load requests.
        if self.config.use_preloading:
            n_requests = max(1, -(-block.num_events // self.config.input_batch_size))
        else:
            n_requests = block.num_events
        yield self.env.timeout(
            n_requests * self.costs.rpc_client_overhead * slowdown / effective_threads
        )

        load = yield from client.load_products(
            block,
            input_batch_size=self.config.input_batch_size,
            preloading=self.config.use_preloading,
        )

        compute = (
            block.num_events * self.costs.pep_compute_per_event
            + load.bytes_loaded * self.costs.pep_deserialize_per_byte
        ) * slowdown / effective_threads
        yield self.env.timeout(compute)

        self.stats.events_processed += block.num_events
        self.stats.bytes_loaded += load.bytes_loaded
        self.stats.blocks_processed += 1

    # ---------------------------------------------------------------- helpers
    def _effective_threads(self, node: Node) -> float:
        """Per-process parallel speedup of the processing threads.

        Threads cannot give more speedup than the share of physical cores
        available to the process on its node.
        """
        cores = node.platform.cores_per_node
        procs_on_node = self.config.pes_per_node
        fair_share = max(1.0, cores * node.available_core_fraction() / procs_on_node)
        return float(min(self.config.num_threads, fair_share))
