"""Synthetic population of NOvA HDF5 event files.

The paper uses 200 HDF5 files (26.5 GiB in total) provided by Fermilab, which
could not be made public.  This module generates a synthetic population with
the properties that matter to the workflow:

* heterogeneous per-file event counts (the data loader balances work through a
  shared file list precisely because files differ in size),
* realistic per-event product payloads (products carry most of the bytes), and
* a total volume consistent with the paper (≈ 26.5 GiB / 200 files ≈ 135 MiB
  per file), scaled by the number of files used at each node count
  (50 files on 4 nodes, 100 on 8, 200 on 16 — weak scaling).

The population is fully determined by its seed, so every experiment is
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

__all__ = ["FileInfo", "SyntheticEventFiles"]

#: Mean number of events per file (chosen so that 200 files ≈ 26.5 GiB with
#: the default product size).
DEFAULT_MEAN_EVENTS_PER_FILE = 10_000
#: Mean serialised product payload per event, bytes.
DEFAULT_MEAN_PRODUCT_BYTES = 14_000
#: Log-normal shape parameter of the per-file event count distribution.
DEFAULT_EVENT_COUNT_SIGMA = 0.45


@dataclass(frozen=True)
class FileInfo:
    """One synthetic HDF5 input file."""

    name: str
    num_events: int
    product_bytes_per_event: int

    @property
    def total_bytes(self) -> int:
        """Approximate on-disk size of the file."""
        return self.num_events * self.product_bytes_per_event

    def __post_init__(self) -> None:
        if self.num_events < 1:
            raise ValueError("a file must contain at least one event")
        if self.product_bytes_per_event < 1:
            raise ValueError("product payload must be at least one byte")


class SyntheticEventFiles:
    """A reproducible synthetic file population.

    Parameters
    ----------
    num_files:
        Number of files to generate.
    seed:
        Seed of the generating RNG (population is a pure function of it).
    mean_events_per_file:
        Mean of the per-file event count distribution.
    mean_product_bytes:
        Mean serialised product size per event.
    sigma:
        Log-normal sigma of the per-file event count (controls skew).
    """

    def __init__(
        self,
        num_files: int,
        seed: int = 0,
        mean_events_per_file: int = DEFAULT_MEAN_EVENTS_PER_FILE,
        mean_product_bytes: int = DEFAULT_MEAN_PRODUCT_BYTES,
        sigma: float = DEFAULT_EVENT_COUNT_SIGMA,
    ):
        if num_files < 1:
            raise ValueError("num_files must be >= 1")
        if mean_events_per_file < 1 or mean_product_bytes < 1:
            raise ValueError("means must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.num_files = int(num_files)
        self.seed = int(seed)
        self.mean_events_per_file = int(mean_events_per_file)
        self.mean_product_bytes = int(mean_product_bytes)
        self.sigma = float(sigma)
        self._files = self._generate()

    def _generate(self) -> List[FileInfo]:
        rng = np.random.default_rng(self.seed)
        # Log-normal event counts with the requested mean: mean of LN(mu, s) is
        # exp(mu + s^2/2), so mu = log(mean) - s^2/2.
        mu = np.log(self.mean_events_per_file) - self.sigma**2 / 2.0
        counts = rng.lognormal(mean=mu, sigma=self.sigma, size=self.num_files)
        counts = np.maximum(1, np.round(counts)).astype(int)
        # Product sizes vary mildly between files (different detector periods).
        sizes = rng.normal(
            loc=self.mean_product_bytes,
            scale=0.1 * self.mean_product_bytes,
            size=self.num_files,
        )
        sizes = np.maximum(512, np.round(sizes)).astype(int)
        return [
            FileInfo(
                name=f"nova-{self.seed:04d}-{i:05d}.h5",
                num_events=int(counts[i]),
                product_bytes_per_event=int(sizes[i]),
            )
            for i in range(self.num_files)
        ]

    # ------------------------------------------------------------- collection
    @property
    def files(self) -> Sequence[FileInfo]:
        """The generated files (stable order)."""
        return tuple(self._files)

    def __len__(self) -> int:
        return len(self._files)

    def __iter__(self) -> Iterator[FileInfo]:
        return iter(self._files)

    def __getitem__(self, idx: int) -> FileInfo:
        return self._files[idx]

    # ------------------------------------------------------------------ stats
    @property
    def total_events(self) -> int:
        """Total number of events across all files."""
        return sum(f.num_events for f in self._files)

    @property
    def total_bytes(self) -> int:
        """Total payload volume across all files."""
        return sum(f.total_bytes for f in self._files)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        gib = self.total_bytes / 2**30
        return (
            f"<SyntheticEventFiles n={self.num_files} events={self.total_events} "
            f"volume={gib:.1f}GiB>"
        )
