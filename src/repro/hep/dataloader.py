"""Simulation of the HEPnOS data loader (workflow step 1).

The data loader is an MPI application that reads HDF5 files, converts their
tables into C++ objects and stores them into HEPnOS.  Work is distributed
dynamically: a single shared list of files is consumed by all processes (the
paper, §II-B1).  The tunable behaviour reproduced here:

* ``loader_pes_per_node`` — number of loader processes per application node;
* ``loader_batch_size`` (``WriteBatchSize``) — events per store RPC;
* ``loader_async`` / ``loader_async_threads`` — overlap reading the next file
  with storing the previous one using a bounded pool of store threads;
* ``loader_progress_thread`` / ``busy_spin`` — Margo progress configuration
  of each loader process.

Each loader process is a discrete-event process; the shared file list is a
:class:`~repro.sim.resources.Store`; stores go through the
:class:`~repro.hepnos.client.HEPnOSClient`, so server-side queueing and
database contention emerge from the HEPnOS model rather than being assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim import Environment, Resource, Store
from repro.mochi.margo import MargoEngine, ProgressMode
from repro.hepnos.client import HEPnOSClient, StoreStats
from repro.hepnos.service import HEPnOSService
from repro.hep.costs import WorkflowCostModel, DEFAULT_COSTS
from repro.hep.hdf5 import FileInfo
from repro.platform import Node

__all__ = ["DataLoaderConfig", "DataLoaderStats", "DataLoaderRun"]


@dataclass(frozen=True)
class DataLoaderConfig:
    """Data-loader tuning parameters (a typed view of the Fig. 1 names)."""

    pes_per_node: int = 8
    batch_size: int = 512
    use_async: bool = False
    async_threads: int = 1
    progress_thread: bool = False
    busy_spin: bool = False

    @classmethod
    def from_configuration(cls, config: Dict) -> "DataLoaderConfig":
        """Extract the loader parameters from a full workflow configuration."""
        return cls(
            pes_per_node=int(config["loader_pes_per_node"]),
            batch_size=int(config["loader_batch_size"]),
            use_async=bool(config["loader_async"]),
            async_threads=int(config["loader_async_threads"]),
            progress_thread=bool(config["loader_progress_thread"]),
            busy_spin=bool(config["busy_spin"]),
        )

    def __post_init__(self) -> None:
        if self.pes_per_node < 1:
            raise ValueError("pes_per_node must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.async_threads < 1:
            raise ValueError("async_threads must be >= 1")


@dataclass
class DataLoaderStats:
    """Aggregate outcome of the data-loading step."""

    files_loaded: int = 0
    events_stored: int = 0
    bytes_stored: int = 0
    rpcs_issued: int = 0
    elapsed: float = 0.0
    per_process_busy: Dict[str, float] = field(default_factory=dict)


class DataLoaderRun:
    """One execution of the data-loading step.

    Parameters
    ----------
    env:
        Simulation environment.
    app_nodes:
        Application nodes the loader processes run on.
    service:
        The HEPnOS service instance to store into.
    files:
        Input files to load.
    config:
        Loader tuning parameters.
    costs:
        Workflow cost constants.
    """

    def __init__(
        self,
        env: Environment,
        app_nodes: List[Node],
        service: HEPnOSService,
        files: List[FileInfo],
        config: DataLoaderConfig,
        costs: WorkflowCostModel = DEFAULT_COSTS,
    ):
        if not app_nodes:
            raise ValueError("the loader needs at least one application node")
        if not files:
            raise ValueError("the loader needs at least one input file")
        self.env = env
        self.app_nodes = list(app_nodes)
        self.service = service
        self.files = list(files)
        self.config = config
        self.costs = costs
        self.stats = DataLoaderStats()

        # Shared dynamic work list (one process holds it in the real loader;
        # the pull protocol's cost is folded into the store RPC overheads).
        self._file_list = Store(env, name="loader-files")

        self._num_processes = config.pes_per_node * len(self.app_nodes)
        self._register_core_demand()

    # ------------------------------------------------------------- deployment
    def _register_core_demand(self) -> None:
        """Register per-node CPU demand of the loader processes."""
        for node in self.app_nodes:
            procs = self.config.pes_per_node
            # Async store threads are I/O bound (they wait on RPC completion),
            # so they only weakly contribute to CPU pressure.
            workers = 1.0 + (0.15 * self.config.async_threads if self.config.use_async else 0.0)
            node.register_workers(procs * workers)
            # Dedicated progress threads pin cores (fully when busy spinning).
            if self.config.progress_thread:
                node.register_pinned(procs * (1.0 if self.config.busy_spin else 0.05))
            elif self.config.busy_spin:
                # Busy spinning without a dedicated thread keeps the main
                # thread polling between operations: count half a core.
                node.register_pinned(procs * 0.5)

    def _make_engine(self, node: Node, rank: int) -> MargoEngine:
        return MargoEngine(
            self.env,
            nic=node.nic,
            progress_mode=(
                ProgressMode.BUSY_SPIN if self.config.busy_spin else ProgressMode.EPOLL
            ),
            dedicated_progress_thread=self.config.progress_thread,
            name=f"loader-{rank}",
        )

    # -------------------------------------------------------------- simulation
    def run(self):
        """DES process generator: execute the whole data-loading step.

        Returns the populated :class:`DataLoaderStats`.
        """
        start = self.env.now
        for info in self.files:
            yield self._file_list.put(info)
        # Sentinels: one per process so every worker loop terminates.
        for _ in range(self._num_processes):
            yield self._file_list.put(None)

        workers = []
        rank = 0
        for node in self.app_nodes:
            for _ in range(self.config.pes_per_node):
                workers.append(self.env.process(self._worker(node, rank)))
                rank += 1
        yield self.env.all_of(workers)
        self.stats.elapsed = self.env.now - start
        return self.stats

    def _worker(self, node: Node, rank: int):
        """One loader process: pull files, read, convert, store."""
        engine = self._make_engine(node, rank)
        client = HEPnOSClient(engine, self.service, use_rdma=True)
        slowdown = node.slowdown()
        read_bandwidth = min(
            node.platform.pfs_per_process_bandwidth,
            node.platform.pfs_read_bandwidth / max(1, self.config.pes_per_node),
        )

        async_slots: Optional[Resource] = None
        pending: List = []
        if self.config.use_async:
            async_slots = Resource(
                self.env, capacity=self.config.async_threads, name=f"loader-async-{rank}"
            )

        busy_start = self.env.now
        while True:
            item = yield self._file_list.get()
            if item is None:
                break
            info: FileInfo = item

            # Read the HDF5 file from the parallel file system.
            read_time = info.total_bytes / read_bandwidth
            yield self.env.timeout(read_time)

            # Convert tables into C++ objects (CPU bound, subject to
            # oversubscription on the node).
            convert_time = (
                info.num_events * self.costs.loader_convert_per_event
                + info.total_bytes * self.costs.loader_serialize_per_byte
            ) * slowdown
            yield self.env.timeout(convert_time)

            if async_slots is None:
                stats = yield from self._store_file(client, info, slowdown)
                self._account(stats)
            else:
                pending.append(self.env.process(self._async_store(async_slots, client, info, slowdown)))

        if pending:
            yield self.env.all_of(pending)
        self.stats.per_process_busy[f"rank-{rank}"] = self.env.now - busy_start

    def _async_store(self, slots: Resource, client: HEPnOSClient, info: FileInfo, slowdown: float):
        """Background store task bounded by the async thread pool."""
        with slots.request() as req:
            yield req
            stats = yield from self._store_file(client, info, slowdown)
        self._account(stats)

    def _store_file(self, client: HEPnOSClient, info: FileInfo, slowdown: float):
        """Store one file's events and products through the HEPnOS client."""
        # Client-side cost of issuing the store RPCs (scales with their number).
        num_rpcs = max(1, -(-info.num_events // self.config.batch_size))
        yield self.env.timeout(num_rpcs * self.costs.rpc_client_overhead * slowdown)
        stats: StoreStats = yield from client.store_file(
            file_name=info.name,
            num_events=info.num_events,
            product_bytes_per_event=info.product_bytes_per_event,
            write_batch_size=self.config.batch_size,
        )
        return stats

    def _account(self, stats: StoreStats) -> None:
        self.stats.files_loaded += 1
        self.stats.events_stored += stats.num_events
        self.stats.bytes_stored += stats.bytes_stored
        self.stats.rpcs_issued += stats.num_rpcs
