"""Calibration constants of the HEP workflow simulation.

All application-level cost constants live here (the network and key/value
store constants live with their components in :mod:`repro.mochi`).  The
defaults are calibrated so that the simulated workflow lands in the regime the
paper reports on Theta: roughly 90 s per step with a sensibly chosen
configuration on 4 nodes, around 10–20 s for the best configurations, and
beyond the 300 s per-step limit (therefore NaN) for pathological ones.

The constants are deliberately exposed as a dataclass so that tests and
ablation benchmarks can explore their influence without monkey-patching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mochi.yokan import YokanCostModel

__all__ = ["WorkflowCostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class WorkflowCostModel:
    """Application-level cost constants.

    Attributes
    ----------
    loader_convert_per_event:
        CPU time to convert one HDF5 row into a C++ object, seconds.
    loader_serialize_per_byte:
        CPU time per byte of product serialisation in the loader, seconds.
    pep_compute_per_event:
        Simulated per-event computation of the PEP benchmark, seconds.
    pep_deserialize_per_byte:
        CPU time per byte of product deserialisation in PEP, seconds.
    pep_exchange_rpc_overhead:
        Fixed cost of one inter-PEP-process batch request, seconds.
    event_descriptor_bytes:
        Size of one event descriptor exchanged between PEP processes, bytes.
    rpc_client_overhead:
        Client-side CPU cost of issuing one RPC (argument serialisation,
        callback handling), seconds.
    yokan:
        Cost model of the Yokan databases backing HEPnOS.
    step_time_limit:
        Per-step wall-clock limit; beyond it the step is killed and the
        evaluation returns NaN (600 s total / 300 s per step in the paper).
    """

    loader_convert_per_event: float = 3.0e-4
    loader_serialize_per_byte: float = 2.0e-9
    pep_compute_per_event: float = 1.2e-3
    pep_deserialize_per_byte: float = 3.0e-9
    pep_exchange_rpc_overhead: float = 120.0e-6
    event_descriptor_bytes: int = 64
    rpc_client_overhead: float = 25.0e-6
    yokan: YokanCostModel = field(
        default_factory=lambda: YokanCostModel(
            put_overhead=140.0e-6,
            get_overhead=120.0e-6,
            per_byte=8.0e-10,
            batch_overhead=180.0e-6,
            batch_per_item=12.0e-6,
            list_overhead=200.0e-6,
            list_per_key=2.0e-6,
        )
    )
    step_time_limit: float = 300.0

    def __post_init__(self) -> None:
        numeric = (
            self.loader_convert_per_event,
            self.loader_serialize_per_byte,
            self.pep_compute_per_event,
            self.pep_deserialize_per_byte,
            self.pep_exchange_rpc_overhead,
            self.rpc_client_overhead,
            self.step_time_limit,
        )
        if any(v < 0 for v in numeric):
            raise ValueError("cost constants must be non-negative")
        if self.step_time_limit <= 0:
            raise ValueError("step_time_limit must be positive")


#: Default calibration used by the experiments.
DEFAULT_COSTS = WorkflowCostModel()
