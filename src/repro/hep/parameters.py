"""The HEP workflow parameter space (Fig. 1) and the experimental setups.

Twenty parameters are tuned in the paper, spread over the three workflow
components plus one parameter common to all of them:

=====================  =============================  =========================
Component              Parameter (paper name)          Name used in this repo
=====================  =============================  =========================
Data loader            ProgressThread                  ``loader_progress_thread``
Data loader            WriteBatchSize                  ``loader_batch_size``
Data loader            PESperNode                      ``loader_pes_per_node``
Data loader            LoaderAsync                     ``loader_async``
Data loader            LoaderAsyncThreads              ``loader_async_threads``
HEPnOS                 ProgressThread                  ``hepnos_progress_thread``
HEPnOS                 NumRPCthreads                   ``hepnos_num_rpc_threads``
HEPnOS                 NumEventDBs                     ``hepnos_num_event_databases``
HEPnOS                 NumProductDBs                   ``hepnos_num_product_databases``
HEPnOS                 NumProviders                    ``hepnos_num_providers``
HEPnOS (*)             ThreadPoolType                  ``hepnos_pool_type``
HEPnOS (*)             PESperNode                      ``hepnos_pes_per_node``
PEP                    ProgressThread                  ``pep_progress_thread``
PEP                    NumThreads                      ``pep_num_threads``
PEP                    InputBatchSize                  ``pep_ibatch_size``
PEP                    OuputBatchSize                  ``pep_obatch_size``
PEP                    PESperNode                      ``pep_pes_per_node``
PEP (*)                UsePreloading                   ``pep_use_preloading``
PEP (*)                UseRDMA                         ``pep_use_rdma``
Common                 BusySpin                        ``busy_spin``
=====================  =============================  =========================

Parameters marked (*) belong to the *extended* search space only (the 20p
setups).  The five experimental setups follow the paper's nomenclature
``<nodes>n-<steps>s-<params>p``:

* ``4n-1s-11p`` — 4 nodes, data-loading step only, 11 parameters
  (data loader + HEPnOS base + BusySpin);
* ``4n-2s-16p`` — both steps, 16 parameters (adds the 5 base PEP parameters);
* ``4n-2s-20p`` — both steps, the full 20-parameter space;
* ``8n-2s-20p`` / ``16n-2s-20p`` — the same space at 8 and 16 nodes per
  workflow instance (weak scaling: 100 and 200 input files).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.space import (
    CategoricalParameter,
    Configuration,
    IntegerParameter,
    OrdinalParameter,
    Parameter,
    SearchSpace,
)

__all__ = [
    "ALL_PARAMETERS",
    "DEFAULT_CONFIGURATION",
    "SETUPS",
    "WorkflowSetup",
    "build_space",
    "get_setup",
    "complete_configuration",
]

#: Allowed processes-per-node values (Fig. 1).
PES_PER_NODE_VALUES = (1, 2, 4, 8, 16, 32)


def _make_parameters() -> Dict[str, Parameter]:
    """Construct the full 20-parameter dictionary (insertion order = Fig. 1)."""
    params: List[Parameter] = [
        # ----------------------------------------------------------- data loader
        CategoricalParameter.boolean("loader_progress_thread"),
        IntegerParameter("loader_batch_size", 1, 2048, log=True),
        OrdinalParameter("loader_pes_per_node", PES_PER_NODE_VALUES),
        CategoricalParameter.boolean("loader_async"),
        IntegerParameter("loader_async_threads", 1, 63, log=True),
        # ---------------------------------------------------------------- HEPnOS
        CategoricalParameter.boolean("hepnos_progress_thread"),
        IntegerParameter("hepnos_num_rpc_threads", 0, 63),
        IntegerParameter("hepnos_num_event_databases", 1, 16),
        IntegerParameter("hepnos_num_product_databases", 1, 16),
        IntegerParameter("hepnos_num_providers", 1, 32),
        CategoricalParameter("hepnos_pool_type", ("fifo", "fifo_wait", "prio_wait")),
        OrdinalParameter("hepnos_pes_per_node", PES_PER_NODE_VALUES),
        # ------------------------------------------------------------------- PEP
        CategoricalParameter.boolean("pep_progress_thread"),
        IntegerParameter("pep_num_threads", 1, 31),
        IntegerParameter("pep_ibatch_size", 8, 1024, log=True),
        IntegerParameter("pep_obatch_size", 8, 1024, log=True),
        OrdinalParameter("pep_pes_per_node", PES_PER_NODE_VALUES),
        CategoricalParameter.boolean("pep_use_preloading"),
        CategoricalParameter.boolean("pep_use_rdma"),
        # ---------------------------------------------------------------- common
        CategoricalParameter.boolean("busy_spin"),
    ]
    return {p.name: p for p in params}


#: All twenty tunable parameters, keyed by name.
ALL_PARAMETERS: Dict[str, Parameter] = _make_parameters()

#: Names of the data-loader parameters.
LOADER_PARAMETERS: Tuple[str, ...] = (
    "loader_progress_thread",
    "loader_batch_size",
    "loader_pes_per_node",
    "loader_async",
    "loader_async_threads",
)

#: Names of the base (non-extended) HEPnOS parameters.
HEPNOS_BASE_PARAMETERS: Tuple[str, ...] = (
    "hepnos_progress_thread",
    "hepnos_num_rpc_threads",
    "hepnos_num_event_databases",
    "hepnos_num_product_databases",
    "hepnos_num_providers",
)

#: HEPnOS parameters only present in the extended (20p) space.
HEPNOS_EXTENDED_PARAMETERS: Tuple[str, ...] = (
    "hepnos_pool_type",
    "hepnos_pes_per_node",
)

#: Names of the base (non-extended) PEP parameters.
PEP_BASE_PARAMETERS: Tuple[str, ...] = (
    "pep_progress_thread",
    "pep_num_threads",
    "pep_ibatch_size",
    "pep_obatch_size",
    "pep_pes_per_node",
)

#: PEP parameters only present in the extended (20p) space.
PEP_EXTENDED_PARAMETERS: Tuple[str, ...] = (
    "pep_use_preloading",
    "pep_use_rdma",
)

#: The common parameter (network polling strategy).
COMMON_PARAMETERS: Tuple[str, ...] = ("busy_spin",)


#: Values assumed for any parameter not present in a restricted search space.
DEFAULT_CONFIGURATION: Configuration = {
    "loader_progress_thread": False,
    "loader_batch_size": 512,
    "loader_pes_per_node": 8,
    "loader_async": False,
    "loader_async_threads": 1,
    "hepnos_progress_thread": True,
    "hepnos_num_rpc_threads": 4,
    "hepnos_num_event_databases": 4,
    "hepnos_num_product_databases": 4,
    "hepnos_num_providers": 4,
    "hepnos_pool_type": "fifo_wait",
    "hepnos_pes_per_node": 1,
    "pep_progress_thread": False,
    "pep_num_threads": 15,
    "pep_ibatch_size": 128,
    "pep_obatch_size": 128,
    "pep_pes_per_node": 8,
    "pep_use_preloading": True,
    "pep_use_rdma": True,
    "busy_spin": False,
}


@dataclass(frozen=True)
class WorkflowSetup:
    """One of the paper's experimental setups.

    Attributes
    ----------
    name:
        Setup nomenclature, e.g. ``"4n-2s-20p"``.
    num_nodes:
        Nodes per workflow instance (HEPnOS + application nodes).
    num_steps:
        1 = data loading only, 2 = data loading + event selection.
    parameter_names:
        Names of the tuned parameters (order follows Fig. 1).
    num_files:
        Number of synthetic HDF5 files loaded (weak scaling with nodes).
    """

    name: str
    num_nodes: int
    num_steps: int
    parameter_names: Tuple[str, ...]
    num_files: int

    @property
    def num_parameters(self) -> int:
        """Number of tuned parameters."""
        return len(self.parameter_names)

    def space(self) -> SearchSpace:
        """The :class:`~repro.core.space.SearchSpace` of this setup."""
        return build_space(self.parameter_names, name=self.name)


def _setup_table() -> Dict[str, WorkflowSetup]:
    p11 = LOADER_PARAMETERS + HEPNOS_BASE_PARAMETERS + COMMON_PARAMETERS
    p16 = p11 + PEP_BASE_PARAMETERS
    p20 = (
        LOADER_PARAMETERS
        + HEPNOS_BASE_PARAMETERS
        + HEPNOS_EXTENDED_PARAMETERS
        + PEP_BASE_PARAMETERS
        + PEP_EXTENDED_PARAMETERS
        + COMMON_PARAMETERS
    )
    return {
        "4n-1s-11p": WorkflowSetup("4n-1s-11p", 4, 1, p11, num_files=50),
        "4n-2s-16p": WorkflowSetup("4n-2s-16p", 4, 2, p16, num_files=50),
        "4n-2s-20p": WorkflowSetup("4n-2s-20p", 4, 2, p20, num_files=50),
        "8n-2s-20p": WorkflowSetup("8n-2s-20p", 8, 2, p20, num_files=100),
        "16n-2s-20p": WorkflowSetup("16n-2s-20p", 16, 2, p20, num_files=200),
    }


#: The five experimental setups of Section IV-A2, keyed by name.
SETUPS: Dict[str, WorkflowSetup] = _setup_table()

#: Transfer-learning chain used in the paper (source -> target).
TRANSFER_CHAIN: Tuple[Tuple[str, str], ...] = (
    ("4n-1s-11p", "4n-2s-16p"),
    ("4n-2s-16p", "4n-2s-20p"),
    ("4n-2s-20p", "8n-2s-20p"),
    ("8n-2s-20p", "16n-2s-20p"),
)


def get_setup(name: str) -> WorkflowSetup:
    """Look up a setup by its ``<nodes>n-<steps>s-<params>p`` name."""
    try:
        return SETUPS[name]
    except KeyError:
        raise KeyError(
            f"unknown setup {name!r}; available: {sorted(SETUPS)}"
        ) from None


def build_space(parameter_names, name: str = "") -> SearchSpace:
    """Build a :class:`SearchSpace` from a list of Fig. 1 parameter names."""
    unknown = [n for n in parameter_names if n not in ALL_PARAMETERS]
    if unknown:
        raise KeyError(f"unknown parameters: {unknown}; known: {sorted(ALL_PARAMETERS)}")
    return SearchSpace([ALL_PARAMETERS[n] for n in parameter_names], name=name)


def complete_configuration(config: Configuration) -> Configuration:
    """Fill missing parameters with their defaults.

    Restricted setups (11p, 16p) tune a subset of the parameters; the
    remaining ones take the values of :data:`DEFAULT_CONFIGURATION`, exactly
    like the fixed values the paper's restricted experiments used.
    """
    unknown = [n for n in config if n not in ALL_PARAMETERS]
    if unknown:
        raise KeyError(f"unknown parameters in configuration: {unknown}")
    full = dict(DEFAULT_CONFIGURATION)
    full.update(config)
    return full
