"""Learned surrogate of the HEP workflow run time (the Fig. 5 methodology).

For the framework comparison the paper replaces the real workflow with "a
surrogate model of its performance, obtained by training a random forest
regressor on the data from the preceding section's RAND runs.  This surrogate
model will estimate the run time for an input configuration and then sleep for
this amount of time before returning it", making the whole experiment
reproducible on a laptop.

This module does exactly that against *our* simulator: train a random forest
on (configuration → run time) pairs collected from random sampling, then act
as a drop-in ``run_function`` that returns the predicted run time (the
"sleeping" is the virtual-time duration handled by the evaluator).  Failed
evaluations are learned through a run-time ceiling: configurations predicted
to exceed it return NaN, as the real killed runs do.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.history import SearchHistory
from repro.core.space import Configuration, SearchSpace
from repro.core.surrogate import RandomForestSurrogate
from repro.hep.workflow import HEPWorkflowProblem

__all__ = ["SurrogateRuntime", "SurrogateRuntimeFleet"]


class SurrogateRuntime:
    """A random-forest run-time model usable as a search ``run_function``.

    Parameters
    ----------
    space:
        The configuration space the model was trained on.
    forest:
        The fitted random forest (regressing ``log(runtime)``).
    failure_runtime:
        Run-time ceiling: training failures are imputed at this value and
        predictions at or above ``0.9 ×`` this value are reported as NaN.
    noise:
        Relative standard deviation of multiplicative prediction noise (keeps
        repeated evaluations of one configuration from being identical, like
        the real workflow).
    seed:
        Seed of the noise generator.
    """

    def __init__(
        self,
        space: SearchSpace,
        forest: RandomForestSurrogate,
        failure_runtime: float = 600.0,
        noise: float = 0.02,
        seed: int = 0,
    ):
        self.space = space
        self.forest = forest
        self.failure_runtime = float(failure_runtime)
        self.noise = float(noise)
        self._rng = np.random.default_rng(seed)
        self.num_calls = 0

    # ------------------------------------------------------------ construction
    @classmethod
    def train(
        cls,
        problem: HEPWorkflowProblem,
        num_samples: int = 600,
        n_estimators: int = 24,
        failure_runtime: float = 600.0,
        noise: float = 0.02,
        seed: int = 0,
    ) -> "SurrogateRuntime":
        """Train a surrogate by random sampling of the simulated workflow."""
        if num_samples < 10:
            raise ValueError("num_samples must be >= 10")
        rng = np.random.default_rng(seed)
        configs = problem.space.sample(num_samples, rng)
        runtimes = np.asarray([problem.evaluate(c) for c in configs], dtype=float)
        return cls.from_data(
            problem.space,
            configs,
            runtimes,
            n_estimators=n_estimators,
            failure_runtime=failure_runtime,
            noise=noise,
            seed=seed,
        )

    @classmethod
    def from_history(
        cls,
        history: SearchHistory,
        n_estimators: int = 24,
        failure_runtime: float = 600.0,
        noise: float = 0.02,
        seed: int = 0,
    ) -> "SurrogateRuntime":
        """Train a surrogate from an existing search history (e.g. RAND runs)."""
        configs = history.configurations()
        runtimes = history.runtimes()
        return cls.from_data(
            history.space,
            configs,
            runtimes,
            n_estimators=n_estimators,
            failure_runtime=failure_runtime,
            noise=noise,
            seed=seed,
        )

    @classmethod
    def from_data(
        cls,
        space: SearchSpace,
        configurations: Sequence[Configuration],
        runtimes: Sequence[float],
        n_estimators: int = 24,
        failure_runtime: float = 600.0,
        noise: float = 0.02,
        seed: int = 0,
    ) -> "SurrogateRuntime":
        """Train a surrogate from explicit (configuration, run time) pairs."""
        if len(configurations) != len(runtimes):
            raise ValueError("configurations and runtimes must have equal length")
        if not configurations:
            raise ValueError("cannot train on an empty dataset")
        runtimes = np.asarray(runtimes, dtype=float)
        capped = np.where(
            np.isfinite(runtimes) & (runtimes > 0),
            np.minimum(runtimes, failure_runtime),
            failure_runtime,
        )
        X = space.to_numeric_array(configurations)
        y = np.log(capped)
        forest = RandomForestSurrogate(n_estimators=n_estimators, seed=seed)
        forest.fit(X, y)
        return cls(space, forest, failure_runtime=failure_runtime, noise=noise, seed=seed)

    # -------------------------------------------------------------- evaluation
    def predict(self, configurations: Sequence[Configuration]) -> np.ndarray:
        """Predicted run times (seconds) without noise or the NaN ceiling."""
        X = self.space.to_numeric_array(configurations)
        mean, _ = self.forest.predict(X)
        return np.exp(mean)

    def _finalize(self, predicted: float) -> float:
        """Noise and failure-ceiling post-processing of one prediction."""
        self.num_calls += 1
        runtime = float(predicted)
        if self.noise > 0:
            runtime *= float(self._rng.lognormal(mean=0.0, sigma=self.noise))
        if runtime >= 0.9 * self.failure_runtime:
            return float("nan")
        return runtime

    def __call__(self, configuration: Configuration) -> float:
        """Run-function interface: predicted run time with noise, NaN at ceiling."""
        return self._finalize(self.predict([configuration])[0])

    def run_many(self, configurations: Sequence[Configuration]) -> list:
        """Batch run-function calls: one vectorised predict, per-call noise.

        Bit-identical to calling the instance once per configuration in
        order — forest predictions are row-local and the noise draws consume
        the generator in the same sequence — at a fraction of the per-call
        overhead.
        """
        if not configurations:
            return []
        predicted = self.predict(configurations)
        return [self._finalize(value) for value in predicted]


class SurrogateRuntimeFleet:
    """Service-style batch evaluation across many campaigns' runtime models.

    The multi-campaign batch runner collects every campaign's submissions of
    one tick; this fleet scores them together — requests whose
    :class:`SurrogateRuntime` instances share one underlying forest (the
    common case: N campaigns autotuning the same application model, each with
    its own noise stream) are fused into a single vectorised forest predict,
    the rest fall back to the per-instance :meth:`SurrogateRuntime.run_many`.
    Results are bit-identical to per-configuration calls either way, because
    forest predictions are row-local and each instance's noise generator is
    consumed in its own request order.

    ``fleet.run_batch`` plugs directly into
    ``CampaignRunner(run_batcher=...)``; request indices refer to positions
    in ``runtimes``, i.e. the campaign/spec order.
    """

    def __init__(self, runtimes: Sequence[SurrogateRuntime]):
        if not runtimes:
            raise ValueError("need at least one runtime model")
        self.runtimes = list(runtimes)

    def run_batch(self, requests: Sequence[tuple]) -> list:
        """Evaluate ``[(runtime_index, configurations), ...]`` submissions."""
        results: list = [None] * len(requests)
        groups: dict = {}
        for pos, (idx, _) in enumerate(requests):
            groups.setdefault(id(self.runtimes[idx].forest), []).append(pos)
        for positions in groups.values():
            if len(positions) == 1:
                pos = positions[0]
                idx, configs = requests[pos]
                results[pos] = self.runtimes[idx].run_many(configs)
                continue
            # One fused inference over every request sharing this forest.
            matrices = []
            for pos in positions:
                idx, configs = requests[pos]
                model = self.runtimes[idx]
                matrices.append(model.space.to_numeric_array(configs))
            forest = self.runtimes[requests[positions[0]][0]].forest
            mean, _ = forest.predict(np.vstack(matrices))
            values = np.exp(mean)
            offset = 0
            for pos, X in zip(positions, matrices):
                idx, _ = requests[pos]
                model = self.runtimes[idx]
                chunk = values[offset : offset + X.shape[0]]
                offset += X.shape[0]
                results[pos] = [model._finalize(value) for value in chunk]
        return results
