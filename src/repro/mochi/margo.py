"""Margo: binds Mercury (networking) and Argobots (threading).

Margo drives Mercury's network progress loop from an Argobots execution
stream and dispatches incoming RPCs to handler pools.  Two of the paper's
parameters live here:

* ``ProgressThread`` (one per component: data loader, HEPnOS servers, PEP
  processes) — whether a *dedicated* execution stream runs the progress loop.
  With a dedicated thread, RPC progress is serviced promptly but one core is
  permanently occupied; without it, progress shares the handler/main stream
  and every RPC pays an extra scheduling delay.
* ``BusySpin`` (common to all components) — whether the progress loop busy
  spins on the network (low latency, core always occupied) or blocks in
  ``epoll`` (higher per-RPC latency, core released while idle).

The :class:`MargoEngine` exposes the resulting per-RPC progress latencies and
the number of cores the engine pins, which feed the node-level contention
model, plus an ``rpc`` process generator that runs a full round trip against a
remote engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.sim import Environment
from repro.mochi.argobots import Pool, PoolKind
from repro.mochi.mercury import NetworkInterface, NetworkModel

__all__ = ["ProgressMode", "ProgressCostModel", "MargoEngine"]


class ProgressMode(str, Enum):
    """How the Mercury progress loop waits for network events."""

    #: Busy polling: minimal latency, permanently occupies a core.
    BUSY_SPIN = "busy_spin"
    #: Blocking ``epoll``: releases the core, pays a wake-up latency per event.
    EPOLL = "epoll"


@dataclass(frozen=True)
class ProgressCostModel:
    """Progress-loop cost constants.

    Attributes
    ----------
    busy_poll_latency:
        Added latency per network event when busy spinning, seconds.
    epoll_latency:
        Added latency per network event when blocking in ``epoll``, seconds.
    shared_progress_penalty:
        Additional delay per RPC when no dedicated progress thread exists and
        the progress loop competes with RPC handlers / application work,
        seconds.
    """

    busy_poll_latency: float = 1.0e-6
    epoll_latency: float = 30.0e-6
    shared_progress_penalty: float = 50.0e-6

    def per_event_latency(self, mode: ProgressMode, dedicated_thread: bool) -> float:
        """Progress latency charged per network event on one side of an RPC."""
        base = (
            self.busy_poll_latency
            if mode is ProgressMode.BUSY_SPIN
            else self.epoll_latency
        )
        if not dedicated_thread:
            base += self.shared_progress_penalty
        return base


class MargoEngine:
    """One Margo instance: a process's networking + threading runtime.

    Parameters
    ----------
    env:
        Simulation environment.
    nic:
        The node's :class:`~repro.mochi.mercury.NetworkInterface`.
    progress_mode:
        Busy spin or ``epoll`` (the paper's ``BusySpin`` parameter).
    dedicated_progress_thread:
        Whether a dedicated execution stream runs the progress loop (the
        paper's ``ProgressThread`` parameters).
    handler_pool:
        Optional default pool RPC handlers run in (servers register provider
        pools instead).
    name:
        Label used for debugging.
    cost_model:
        Progress cost constants.
    """

    def __init__(
        self,
        env: Environment,
        nic: NetworkInterface,
        progress_mode: ProgressMode = ProgressMode.EPOLL,
        dedicated_progress_thread: bool = False,
        handler_pool: Optional[Pool] = None,
        name: str = "",
        cost_model: Optional[ProgressCostModel] = None,
    ):
        self.env = env
        self.nic = nic
        self.progress_mode = ProgressMode(progress_mode)
        self.dedicated_progress_thread = bool(dedicated_progress_thread)
        self.handler_pool = handler_pool
        self.name = name
        self.cost_model = cost_model or ProgressCostModel()
        self.rpcs_issued = 0
        self.rpcs_handled = 0

    # --------------------------------------------------------------- contention
    def pinned_cores(self) -> float:
        """Cores permanently occupied by this engine's progress loop.

        A dedicated busy-spinning progress thread pins a full core; a
        dedicated ``epoll`` thread is mostly asleep (counted as a small
        fraction); a shared progress loop pins nothing on its own.
        """
        if not self.dedicated_progress_thread:
            return 0.0
        if self.progress_mode is ProgressMode.BUSY_SPIN:
            return 1.0
        return 0.05

    def progress_latency(self) -> float:
        """Per-network-event progress latency on this engine."""
        return self.cost_model.per_event_latency(
            self.progress_mode, self.dedicated_progress_thread
        )

    # --------------------------------------------------------------------- rpc
    def rpc(
        self,
        target: "MargoEngine",
        handler_pool: Optional[Pool],
        request_size: int,
        response_size: int,
        handler_time: float,
        use_rdma: bool = True,
        priority: int = 0,
        network: Optional[NetworkModel] = None,
    ):
        """DES process generator: one full RPC round trip.

        Sequence: client progress latency, request transfer through the client
        NIC, server progress latency, handler execution in ``handler_pool`` on
        the target, response transfer through the target NIC, client progress
        latency for completion.

        Returns the total round-trip time.
        """
        if handler_pool is None:
            handler_pool = target.handler_pool
        if handler_pool is None:
            raise ValueError("no handler pool available on the target engine")
        start = self.env.now
        self.rpcs_issued += 1

        # Client side: issue the request.
        yield self.env.timeout(self.progress_latency())
        yield from self.nic.transfer(request_size, use_rdma)

        # Server side: progress notices the request, handler runs in the pool.
        yield self.env.timeout(target.progress_latency())
        yield from handler_pool.execute(handler_time, priority=priority)
        target.rpcs_handled += 1

        # Response travels back through the server NIC.
        yield from target.nic.transfer(response_size, use_rdma)
        yield self.env.timeout(self.progress_latency())
        return self.env.now - start

    def call(
        self,
        target: "MargoEngine",
        handler_pool: Optional[Pool],
        request_size: int,
        response_size: int,
        handler,
        use_rdma: bool = True,
        priority: int = 0,
    ):
        """DES process generator: RPC whose handler is itself a DES generator.

        Like :meth:`rpc`, but the server-side work is the nested generator
        ``handler`` (e.g. a Yokan ``put_multi`` that must also acquire the
        database write lock), executed while holding one execution stream of
        ``handler_pool``.

        Returns ``(round_trip_time, handler_result)``.
        """
        if handler_pool is None:
            handler_pool = target.handler_pool
        if handler_pool is None:
            raise ValueError("no handler pool available on the target engine")
        start = self.env.now
        self.rpcs_issued += 1

        yield self.env.timeout(self.progress_latency())
        yield from self.nic.transfer(request_size, use_rdma)

        yield self.env.timeout(target.progress_latency())
        result = yield from handler_pool.run(handler, priority=priority)
        target.rpcs_handled += 1

        yield from target.nic.transfer(response_size, use_rdma)
        yield self.env.timeout(self.progress_latency())
        return self.env.now - start, result

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<MargoEngine {self.name!r} mode={self.progress_mode.value} "
            f"dedicated={self.dedicated_progress_thread}>"
        )
