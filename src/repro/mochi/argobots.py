"""Argobots: execution streams and thread pools.

Argobots is Mochi's lightweight user-level threading runtime.  HEPnOS exposes
two of its knobs in the paper's parameter space:

* the number of RPC-handling execution streams (``NumRPCthreads``), and
* the pool type each provider uses (``ThreadPoolType`` in
  {``fifo``, ``fifo_wait``, ``prio_wait``}).

The simulation models a pool as a capacity-limited resource whose capacity is
the number of execution streams attached to it.  The pool kind changes two
things:

* the per-work-item dispatch overhead (``prio_wait`` pays a small extra cost
  for priority handling; ``*_wait`` kinds pay a wake-up latency when the pool
  was idle), and
* whether the execution streams *busy-wait* when the pool is empty (``fifo``)
  — busy-waiting streams occupy CPU cores all the time, which matters for the
  node-level core-contention model in :mod:`repro.hep.platform`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.sim import Environment, PriorityResource, Resource

__all__ = ["PoolKind", "PoolCostModel", "Pool"]


class PoolKind(str, Enum):
    """Argobots pool flavours exposed by HEPnOS's configuration."""

    #: Busy-polling FIFO pool: lowest dispatch latency, burns idle cores.
    FIFO = "fifo"
    #: Blocking FIFO pool: sleeps when idle, pays a wake-up latency.
    FIFO_WAIT = "fifo_wait"
    #: Blocking priority pool: like ``fifo_wait`` plus priority ordering.
    PRIO_WAIT = "prio_wait"


@dataclass(frozen=True)
class PoolCostModel:
    """Scheduling cost constants for the Argobots pools.

    Attributes
    ----------
    dispatch_overhead:
        Cost to pop and dispatch one work item, seconds.
    wakeup_latency:
        Latency to wake a sleeping execution stream (``*_wait`` pools only),
        seconds.
    priority_overhead:
        Extra per-item cost of maintaining the priority queue
        (``prio_wait`` only), seconds.
    """

    dispatch_overhead: float = 1.0e-6
    wakeup_latency: float = 8.0e-6
    priority_overhead: float = 0.5e-6

    def per_item_overhead(self, kind: PoolKind, was_idle: bool) -> float:
        """Scheduling overhead charged to one work item."""
        cost = self.dispatch_overhead
        if kind in (PoolKind.FIFO_WAIT, PoolKind.PRIO_WAIT) and was_idle:
            cost += self.wakeup_latency
        if kind is PoolKind.PRIO_WAIT:
            cost += self.priority_overhead
        return cost


class Pool:
    """An Argobots pool executing work items on a set of execution streams.

    Parameters
    ----------
    env:
        Simulation environment.
    kind:
        :class:`PoolKind` (the paper's ``ThreadPoolType``).
    num_xstreams:
        Number of execution streams pulling from this pool (its concurrency).
    name:
        Optional label.
    cost_model:
        Scheduling cost constants.
    """

    def __init__(
        self,
        env: Environment,
        kind: PoolKind = PoolKind.FIFO_WAIT,
        num_xstreams: int = 1,
        name: str = "",
        cost_model: Optional[PoolCostModel] = None,
    ):
        if num_xstreams < 1:
            raise ValueError("a pool needs at least one execution stream")
        self.env = env
        self.kind = PoolKind(kind)
        self.num_xstreams = int(num_xstreams)
        self.name = name
        self.cost_model = cost_model or PoolCostModel()
        if self.kind is PoolKind.PRIO_WAIT:
            self._resource: Resource = PriorityResource(
                env, capacity=self.num_xstreams, name=f"pool:{name}"
            )
        else:
            self._resource = Resource(env, capacity=self.num_xstreams, name=f"pool:{name}")
        self.items_executed = 0
        self.busy_time = 0.0

    # ------------------------------------------------------------- properties
    @property
    def queue_length(self) -> int:
        """Number of work items waiting for an execution stream."""
        return self._resource.queue_length

    @property
    def active(self) -> int:
        """Number of work items currently executing."""
        return self._resource.count

    @property
    def busy_spins_when_idle(self) -> bool:
        """Whether this pool's execution streams occupy cores while idle."""
        return self.kind is PoolKind.FIFO

    def cpu_occupancy(self) -> float:
        """Number of cores this pool permanently pins (for contention models).

        A busy-polling ``fifo`` pool pins all of its execution streams; the
        blocking pools only consume cores while actually running work, which
        the caller accounts for separately.
        """
        return float(self.num_xstreams) if self.busy_spins_when_idle else 0.0

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of stream-time spent executing work items."""
        elapsed = horizon if horizon is not None else self.env.now
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.num_xstreams)

    # -------------------------------------------------------------- execution
    def execute(self, work_time: float, priority: int = 0):
        """DES process generator: run one work item of ``work_time`` seconds.

        The item queues for an execution stream, pays the kind-dependent
        scheduling overhead and then holds the stream for ``work_time``.
        Returns the total time spent in the pool (queueing excluded).
        """
        if work_time < 0:
            raise ValueError("work_time must be non-negative")
        was_idle = self.active == 0 and self.queue_length == 0
        overhead = self.cost_model.per_item_overhead(self.kind, was_idle)
        with self._resource.request(priority=priority) as req:
            yield req
            total = overhead + work_time
            yield self.env.timeout(total)
        self.items_executed += 1
        self.busy_time += total
        return total

    def run(self, work, priority: int = 0):
        """DES process generator: execute a nested DES generator in this pool.

        Unlike :meth:`execute`, which charges a fixed ``work_time``, this
        variant holds one execution stream while the nested generator ``work``
        runs — including any further waiting it does (e.g. on a database
        write lock).  This is how RPC handlers that touch Yokan databases are
        modelled.

        Returns whatever the nested generator returns.
        """
        was_idle = self.active == 0 and self.queue_length == 0
        overhead = self.cost_model.per_item_overhead(self.kind, was_idle)
        with self._resource.request(priority=priority) as req:
            yield req
            start = self.env.now
            yield self.env.timeout(overhead)
            result = yield from work
            self.busy_time += self.env.now - start
        self.items_executed += 1
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Pool {self.name!r} kind={self.kind.value} xstreams={self.num_xstreams} "
            f"active={self.active} queued={self.queue_length}>"
        )
