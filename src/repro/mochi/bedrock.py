"""Bedrock: service configuration and bootstrapping.

Bedrock is Mochi's configuration/bootstrapping component: a whole service
(Margo runtime, Argobots pools, providers, databases) is described by a single
JSON document.  The paper leans on this ("all these parameters can easily be
provided from a single JSON file"), and the autotuner ultimately rewrites this
document for every evaluated configuration.

This module provides:

* dataclasses mirroring the relevant pieces of a Bedrock JSON document
  (:class:`PoolConfig`, :class:`MargoConfig`, :class:`DatabaseConfig`,
  :class:`ProviderConfig`, :class:`ServiceConfig`),
* JSON (de)serialisation and validation, and
* :meth:`ServiceConfig.from_tuning_parameters` which maps the paper's HEPnOS
  tuning parameters (Fig. 1) onto a concrete service description.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping

from repro.mochi.argobots import PoolKind
from repro.mochi.margo import ProgressMode
from repro.mochi.yokan import DatabaseType

__all__ = [
    "BedrockError",
    "PoolConfig",
    "MargoConfig",
    "DatabaseConfig",
    "ProviderConfig",
    "ServiceConfig",
]


class BedrockError(ValueError):
    """Raised when a service configuration document is invalid."""


@dataclass
class PoolConfig:
    """One Argobots pool in the service configuration."""

    name: str
    kind: str = PoolKind.FIFO_WAIT.value
    num_xstreams: int = 1

    def validate(self) -> None:
        if not self.name:
            raise BedrockError("pool name must not be empty")
        try:
            PoolKind(self.kind)
        except ValueError:
            raise BedrockError(
                f"pool {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {[k.value for k in PoolKind]})"
            ) from None
        if self.num_xstreams < 1:
            raise BedrockError(f"pool {self.name!r}: num_xstreams must be >= 1")


@dataclass
class MargoConfig:
    """Margo runtime configuration of one process."""

    progress_mode: str = ProgressMode.EPOLL.value
    dedicated_progress_thread: bool = False
    rpc_pool: str = "__primary__"

    def validate(self) -> None:
        try:
            ProgressMode(self.progress_mode)
        except ValueError:
            raise BedrockError(
                f"unknown progress_mode {self.progress_mode!r} "
                f"(expected one of {[m.value for m in ProgressMode]})"
            ) from None
        if not self.rpc_pool:
            raise BedrockError("rpc_pool must not be empty")


@dataclass
class DatabaseConfig:
    """One Yokan database."""

    name: str
    db_type: str = DatabaseType.MAP.value
    role: str = "events"

    VALID_ROLES = ("events", "products", "metadata")

    def validate(self) -> None:
        if not self.name:
            raise BedrockError("database name must not be empty")
        try:
            DatabaseType(self.db_type)
        except ValueError:
            raise BedrockError(f"database {self.name!r}: unknown type {self.db_type!r}") from None
        if self.role not in self.VALID_ROLES:
            raise BedrockError(
                f"database {self.name!r}: unknown role {self.role!r} "
                f"(expected one of {self.VALID_ROLES})"
            )


@dataclass
class ProviderConfig:
    """One Yokan provider: a pool plus the databases it serves."""

    provider_id: int
    pool: str
    databases: List[DatabaseConfig] = field(default_factory=list)

    def validate(self) -> None:
        if self.provider_id < 0:
            raise BedrockError("provider_id must be non-negative")
        if not self.pool:
            raise BedrockError(f"provider {self.provider_id}: pool must not be empty")
        for db in self.databases:
            db.validate()


@dataclass
class ServiceConfig:
    """A full Bedrock service description for one HEPnOS server process."""

    margo: MargoConfig = field(default_factory=MargoConfig)
    pools: List[PoolConfig] = field(default_factory=list)
    providers: List[ProviderConfig] = field(default_factory=list)

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Raise :class:`BedrockError` if the composition is inconsistent."""
        self.margo.validate()
        names = [p.name for p in self.pools]
        if len(set(names)) != len(names):
            raise BedrockError(f"duplicate pool names: {names}")
        for pool in self.pools:
            pool.validate()
        known_pools = set(names)
        if self.margo.rpc_pool not in known_pools:
            raise BedrockError(
                f"margo.rpc_pool {self.margo.rpc_pool!r} is not a declared pool"
            )
        provider_ids = [p.provider_id for p in self.providers]
        if len(set(provider_ids)) != len(provider_ids):
            raise BedrockError(f"duplicate provider ids: {provider_ids}")
        db_names: List[str] = []
        for provider in self.providers:
            provider.validate()
            if provider.pool not in known_pools:
                raise BedrockError(
                    f"provider {provider.provider_id}: pool {provider.pool!r} is not declared"
                )
            db_names.extend(db.name for db in provider.databases)
        if len(set(db_names)) != len(db_names):
            raise BedrockError(f"duplicate database names: {db_names}")

    # ------------------------------------------------------------------- json
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict representation (JSON-compatible)."""
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        """Serialise to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceConfig":
        """Build a configuration from a plain dict (inverse of :meth:`to_dict`)."""
        try:
            margo = MargoConfig(**data.get("margo", {}))
            pools = [PoolConfig(**p) for p in data.get("pools", [])]
            providers = []
            for p in data.get("providers", []):
                dbs = [DatabaseConfig(**d) for d in p.get("databases", [])]
                providers.append(
                    ProviderConfig(
                        provider_id=p["provider_id"], pool=p["pool"], databases=dbs
                    )
                )
        except (TypeError, KeyError) as exc:
            raise BedrockError(f"malformed service configuration: {exc}") from exc
        config = cls(margo=margo, pools=pools, providers=providers)
        config.validate()
        return config

    @classmethod
    def from_json(cls, text: str) -> "ServiceConfig":
        """Parse and validate a JSON service document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise BedrockError(f"invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    # --------------------------------------------------- paper parameter glue
    @classmethod
    def from_tuning_parameters(
        cls,
        num_event_dbs: int,
        num_product_dbs: int,
        num_providers: int,
        num_rpc_threads: int,
        pool_type: str = PoolKind.FIFO_WAIT.value,
        progress_thread: bool = False,
        busy_spin: bool = False,
    ) -> "ServiceConfig":
        """Build a server configuration from the paper's HEPnOS parameters.

        Parameters map one-to-one onto Fig. 1 of the paper:
        ``NumEventDBs``, ``NumProductDBs``, ``NumProviders``,
        ``NumRPCthreads``, ``ThreadPoolType``, ``ProgressThread`` and the
        common ``BusySpin``.

        Databases are assigned to providers round-robin, and the RPC execution
        streams are split across the provider pools (each provider gets at
        least one stream, mirroring HEPnOS's behaviour of never starving a
        provider).
        """
        if num_event_dbs < 1 or num_product_dbs < 1:
            raise BedrockError("need at least one event and one product database")
        if num_providers < 1:
            raise BedrockError("need at least one provider")
        if num_rpc_threads < 0:
            raise BedrockError("num_rpc_threads must be non-negative")

        margo = MargoConfig(
            progress_mode=(
                ProgressMode.BUSY_SPIN.value if busy_spin else ProgressMode.EPOLL.value
            ),
            dedicated_progress_thread=progress_thread,
            rpc_pool="__primary__",
        )

        pools = [PoolConfig(name="__primary__", kind=PoolKind.FIFO_WAIT.value, num_xstreams=1)]
        # Split the RPC execution streams across provider pools; zero RPC
        # threads means everything is handled by the primary (progress) pool,
        # which is the slow path the paper's NumRPCthreads=0 corresponds to.
        streams_per_provider = _split_streams(num_rpc_threads, num_providers)
        providers: List[ProviderConfig] = []
        for pid in range(num_providers):
            pool_name = f"__pool_{pid}__"
            if streams_per_provider[pid] > 0:
                pools.append(
                    PoolConfig(
                        name=pool_name,
                        kind=pool_type,
                        num_xstreams=streams_per_provider[pid],
                    )
                )
            else:
                pool_name = "__primary__"
            providers.append(ProviderConfig(provider_id=pid, pool=pool_name))

        # Round-robin database assignment across providers.
        for i in range(num_event_dbs):
            providers[i % num_providers].databases.append(
                DatabaseConfig(name=f"hepnos-events-{i}", role="events")
            )
        for i in range(num_product_dbs):
            providers[i % num_providers].databases.append(
                DatabaseConfig(name=f"hepnos-products-{i}", role="products")
            )

        config = cls(margo=margo, pools=pools, providers=providers)
        config.validate()
        return config

    # ---------------------------------------------------------------- queries
    def databases_with_role(self, role: str) -> List[DatabaseConfig]:
        """All databases with the given role, across all providers."""
        return [
            db
            for provider in self.providers
            for db in provider.databases
            if db.role == role
        ]

    def total_rpc_xstreams(self) -> int:
        """Total execution streams dedicated to provider pools."""
        provider_pools = {p.pool for p in self.providers} - {"__primary__"}
        return sum(p.num_xstreams for p in self.pools if p.name in provider_pools)


def _split_streams(total: int, buckets: int) -> List[int]:
    """Split ``total`` execution streams across ``buckets`` provider pools."""
    if buckets <= 0:
        return []
    base, rem = divmod(int(total), int(buckets))
    return [base + (1 if i < rem else 0) for i in range(buckets)]
