"""Yokan: key/value storage microservice.

HEPnOS stores every event and product as key/value pairs in a distributed set
of Yokan databases.  The paper's parameters ``NumEventDBs``, ``NumProductDBs``
and ``NumProviders`` control how many databases exist per server and how they
map onto Argobots pools.

The simulation keeps an actual in-memory dictionary per database — the HEPnOS
data-model tests exercise real reads and writes — and attaches a cost model
for the time each operation takes, including batch amortisation and
single-writer serialisation per database (which is what makes "more
databases" attractive up to a point).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim import Environment, Resource
from repro.mochi.argobots import Pool

__all__ = ["DatabaseType", "YokanCostModel", "Database", "Provider"]


class DatabaseType(str, Enum):
    """Backend type of a Yokan database (all in-memory here, as in HEPnOS)."""

    MAP = "map"
    UNORDERED_MAP = "unordered_map"


@dataclass(frozen=True)
class YokanCostModel:
    """Operation cost constants for a Yokan database.

    Attributes
    ----------
    put_overhead:
        Fixed CPU cost of a single put, seconds.
    get_overhead:
        Fixed CPU cost of a single get, seconds.
    per_byte:
        Cost per byte of value (de)serialisation, seconds/byte.
    batch_overhead:
        Fixed cost of a batched (multi) operation, seconds.
    batch_per_item:
        Marginal cost per item inside a batched operation, seconds — smaller
        than the single-op overhead, which is what makes batching worthwhile.
    list_overhead:
        Fixed cost of a key-listing operation, seconds.
    list_per_key:
        Marginal cost per key returned by a listing, seconds.
    """

    put_overhead: float = 6.0e-6
    get_overhead: float = 4.0e-6
    per_byte: float = 2.5e-10
    batch_overhead: float = 10.0e-6
    batch_per_item: float = 1.2e-6
    list_overhead: float = 20.0e-6
    list_per_key: float = 0.3e-6

    # ------------------------------------------------------------------ costs
    def put_time(self, value_size: int) -> float:
        """CPU time of a single put of ``value_size`` bytes."""
        return self.put_overhead + value_size * self.per_byte

    def get_time(self, value_size: int) -> float:
        """CPU time of a single get returning ``value_size`` bytes."""
        return self.get_overhead + value_size * self.per_byte

    def multi_put_time(self, count: int, total_bytes: int) -> float:
        """CPU time of a batched put of ``count`` items totalling ``total_bytes``."""
        if count <= 0:
            return 0.0
        return self.batch_overhead + count * self.batch_per_item + total_bytes * self.per_byte

    def multi_get_time(self, count: int, total_bytes: int) -> float:
        """CPU time of a batched get of ``count`` items totalling ``total_bytes``."""
        if count <= 0:
            return 0.0
        return self.batch_overhead + count * self.batch_per_item + total_bytes * self.per_byte

    def list_time(self, count: int) -> float:
        """CPU time of listing ``count`` keys."""
        return self.list_overhead + count * self.list_per_key


class Database:
    """A single Yokan key/value database.

    Writes are serialised through a single-writer lock (one request at a
    time), reads are assumed concurrent.  The stored mapping is real, so the
    HEPnOS data model on top of it can be tested for correctness, not just for
    timing.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Database name (HEPnOS uses e.g. ``hepnos-events-0``).
    db_type:
        Backend type (timing is identical; kept for configuration fidelity).
    cost_model:
        The operation cost model.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        db_type: DatabaseType = DatabaseType.MAP,
        cost_model: Optional[YokanCostModel] = None,
    ):
        self.env = env
        self.name = name
        self.db_type = DatabaseType(db_type)
        self.cost_model = cost_model or YokanCostModel()
        self._data: Dict[bytes, bytes] = {}
        self._write_lock = Resource(env, capacity=1, name=f"db:{name}")
        self.puts = 0
        self.gets = 0

    # ----------------------------------------------------------- direct state
    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def keys(self) -> List[bytes]:
        """All keys currently stored (sorted, as in Yokan's ``map`` backend)."""
        return sorted(self._data.keys())

    def value_of(self, key: bytes) -> bytes:
        """Direct (zero-cost) access to a stored value, for assertions."""
        return self._data[key]

    # -------------------------------------------------------------- processes
    def put(self, key: bytes, value: bytes):
        """DES generator: store one key/value pair."""
        cost = self.cost_model.put_time(len(value))
        with self._write_lock.request() as req:
            yield req
            yield self.env.timeout(cost)
            self._data[bytes(key)] = bytes(value)
        self.puts += 1
        return cost

    def put_multi(self, items: Iterable[Tuple[bytes, bytes]]):
        """DES generator: store a batch of key/value pairs atomically."""
        items = list(items)
        total_bytes = sum(len(v) for _, v in items)
        cost = self.cost_model.multi_put_time(len(items), total_bytes)
        with self._write_lock.request() as req:
            yield req
            yield self.env.timeout(cost)
            for key, value in items:
                self._data[bytes(key)] = bytes(value)
        self.puts += len(items)
        return cost

    def bulk_put_accounted(self, count: int, total_bytes: int, record_key: bytes, record_value: bytes):
        """DES generator: charge the cost of ``count`` puts, store one record.

        The HEP workflow stores hundreds of thousands of events per run; to
        keep the discrete-event simulation tractable, the workflow clients
        account whole *blocks* of puts (the time charged is exactly the cost
        of ``count`` items totalling ``total_bytes``) while materialising a
        single summary record that downstream steps read back.
        """
        if count < 0 or total_bytes < 0:
            raise ValueError("count and total_bytes must be non-negative")
        cost = self.cost_model.multi_put_time(count, total_bytes)
        with self._write_lock.request() as req:
            yield req
            yield self.env.timeout(cost)
            self._data[bytes(record_key)] = bytes(record_value)
        self.puts += count
        return cost

    def bulk_get_accounted(self, count: int, total_bytes: int):
        """DES generator: charge the cost of ``count`` gets totalling ``total_bytes``."""
        if count < 0 or total_bytes < 0:
            raise ValueError("count and total_bytes must be non-negative")
        cost = self.cost_model.multi_get_time(count, total_bytes)
        yield self.env.timeout(cost)
        self.gets += count
        return cost

    def get(self, key: bytes):
        """DES generator: fetch one value (returns ``None`` when missing)."""
        value = self._data.get(bytes(key))
        cost = self.cost_model.get_time(len(value) if value is not None else 0)
        yield self.env.timeout(cost)
        self.gets += 1
        return value

    def get_multi(self, keys: Iterable[bytes]):
        """DES generator: fetch a batch of values (missing keys yield ``None``)."""
        keys = [bytes(k) for k in keys]
        values = [self._data.get(k) for k in keys]
        total_bytes = sum(len(v) for v in values if v is not None)
        cost = self.cost_model.multi_get_time(len(keys), total_bytes)
        yield self.env.timeout(cost)
        self.gets += len(keys)
        return values

    def list_keys(self, prefix: bytes = b""):
        """DES generator: list all keys starting with ``prefix``."""
        matching = [k for k in sorted(self._data.keys()) if k.startswith(prefix)]
        cost = self.cost_model.list_time(len(matching))
        yield self.env.timeout(cost)
        return matching

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Database {self.name!r} entries={len(self._data)}>"


class Provider:
    """A Yokan provider: a set of databases served by one Argobots pool.

    HEPnOS spreads its databases over ``NumProviders`` providers per server;
    each provider's requests execute in that provider's pool, so the number of
    providers (together with the pool sizes) bounds the server-side request
    concurrency.
    """

    def __init__(self, provider_id: int, pool: Pool, databases: Optional[List[Database]] = None):
        if provider_id < 0:
            raise ValueError("provider_id must be non-negative")
        self.provider_id = int(provider_id)
        self.pool = pool
        self.databases: List[Database] = list(databases or [])

    def add_database(self, database: Database) -> None:
        """Attach a database to this provider."""
        self.databases.append(database)

    def database_by_name(self, name: str) -> Database:
        """Look up one of this provider's databases by name."""
        for db in self.databases:
            if db.name == name:
                return db
        raise KeyError(f"provider {self.provider_id} has no database named {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Provider {self.provider_id} dbs={len(self.databases)}>"
