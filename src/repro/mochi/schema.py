"""Search-space discovery from a Bedrock configuration schema.

The paper's conclusion sketches its follow-up work: "a generic framework
[for Mochi-based services] brings the challenge of discovering parameters
from a schema of a valid configuration file alongside a set of constraints."
This module implements that extension for the simulated stack:

* a **schema** is a JSON-compatible document shaped like a Bedrock service
  configuration in which any scalar value may be replaced by a *parameter
  descriptor* — ``{"__param__": {...}}`` — declaring its name, type and
  domain;
* :func:`discover_space` walks the schema and builds the corresponding
  :class:`~repro.core.space.SearchSpace`, together with optional cross-
  parameter **constraints** (expressed as named predicates over
  configurations);
* :func:`instantiate` substitutes a concrete configuration back into the
  schema, producing a plain document ready for
  :meth:`~repro.mochi.bedrock.ServiceConfig.from_dict`;
* :class:`ConstrainedPrior` wraps any joint prior with rejection sampling so
  the search only proposes configurations satisfying the constraints (the
  feasible set ``D`` of Eq. 1).
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.priors import IndependentPrior, JointPrior
from repro.core.space import (
    CategoricalParameter,
    Configuration,
    IntegerParameter,
    OrdinalParameter,
    Parameter,
    RealParameter,
    SearchSpace,
)

__all__ = [
    "SchemaError",
    "Constraint",
    "discover_space",
    "instantiate",
    "ConstrainedPrior",
]

#: Key marking a parameter descriptor inside a schema document.
PARAM_KEY = "__param__"


class SchemaError(ValueError):
    """Raised when a schema document or parameter descriptor is malformed."""


@dataclass(frozen=True)
class Constraint:
    """A named feasibility predicate over full configurations.

    Attributes
    ----------
    name:
        Short identifier (used in error messages and reports).
    predicate:
        Callable taking a configuration dict and returning True when the
        configuration is feasible.
    description:
        Human-readable explanation of the constraint.
    """

    name: str
    predicate: Callable[[Configuration], bool]
    description: str = ""

    def satisfied(self, configuration: Configuration) -> bool:
        """Whether ``configuration`` satisfies this constraint."""
        return bool(self.predicate(configuration))


def _parse_descriptor(name_hint: str, descriptor: Mapping[str, Any]) -> Parameter:
    """Build a :class:`Parameter` from one ``__param__`` descriptor."""
    if not isinstance(descriptor, Mapping):
        raise SchemaError(f"{name_hint}: parameter descriptor must be a mapping")
    name = descriptor.get("name", name_hint)
    kind = descriptor.get("type")
    if kind == "integer":
        try:
            low, high = descriptor["low"], descriptor["high"]
        except KeyError as exc:
            raise SchemaError(f"{name}: integer parameters need 'low' and 'high'") from exc
        return IntegerParameter(name, int(low), int(high), log=bool(descriptor.get("log", False)))
    if kind == "real":
        try:
            low, high = descriptor["low"], descriptor["high"]
        except KeyError as exc:
            raise SchemaError(f"{name}: real parameters need 'low' and 'high'") from exc
        return RealParameter(name, float(low), float(high), log=bool(descriptor.get("log", False)))
    if kind == "categorical":
        choices = descriptor.get("choices")
        if not choices:
            raise SchemaError(f"{name}: categorical parameters need 'choices'")
        return CategoricalParameter(name, tuple(choices))
    if kind == "ordinal":
        values = descriptor.get("values")
        if not values:
            raise SchemaError(f"{name}: ordinal parameters need 'values'")
        return OrdinalParameter(name, tuple(values))
    if kind == "boolean":
        return CategoricalParameter.boolean(name)
    raise SchemaError(
        f"{name}: unknown parameter type {kind!r} "
        "(expected integer, real, categorical, ordinal or boolean)"
    )


def _walk(node: Any, path: str, found: List[Tuple[str, Parameter]]) -> None:
    if isinstance(node, Mapping):
        if PARAM_KEY in node:
            if len(node) != 1:
                raise SchemaError(f"{path}: a parameter descriptor must be the only key")
            found.append((path, _parse_descriptor(_name_from_path(path), node[PARAM_KEY])))
            return
        for key, value in node.items():
            _walk(value, f"{path}.{key}" if path else str(key), found)
    elif isinstance(node, (list, tuple)):
        for index, value in enumerate(node):
            _walk(value, f"{path}[{index}]", found)


def _name_from_path(path: str) -> str:
    return path.replace(".", "_").replace("[", "_").replace("]", "")


def discover_space(
    schema: Union[str, Mapping[str, Any]],
    constraints: Optional[Sequence[Constraint]] = None,
    name: str = "",
) -> Tuple[SearchSpace, List[Constraint]]:
    """Discover the tunable parameters of a schema document.

    Parameters
    ----------
    schema:
        The schema as a dict or a JSON string.
    constraints:
        Optional feasibility constraints attached to the discovered space.
    name:
        Name given to the resulting :class:`SearchSpace`.

    Returns
    -------
    ``(space, constraints)`` — the discovered space (parameters appear in
    document order) and the validated constraint list.
    """
    document = json.loads(schema) if isinstance(schema, str) else schema
    if not isinstance(document, Mapping):
        raise SchemaError("the schema root must be a JSON object")
    found: List[Tuple[str, Parameter]] = []
    _walk(document, "", found)
    if not found:
        raise SchemaError("the schema declares no tunable parameters")
    names = [p.name for _, p in found]
    if len(set(names)) != len(names):
        raise SchemaError(f"duplicate parameter names discovered: {names}")
    space = SearchSpace([p for _, p in found], name=name)
    return space, list(constraints or [])


def instantiate(
    schema: Union[str, Mapping[str, Any]],
    configuration: Mapping[str, Any],
) -> Dict[str, Any]:
    """Substitute a configuration into a schema, yielding a concrete document.

    Every ``__param__`` descriptor is replaced by the configuration's value
    for that parameter; non-parameter content is deep-copied unchanged.
    """
    document = json.loads(schema) if isinstance(schema, str) else copy.deepcopy(schema)

    def substitute(node: Any, path: str) -> Any:
        if isinstance(node, Mapping):
            if PARAM_KEY in node:
                descriptor = node[PARAM_KEY]
                name = descriptor.get("name", _name_from_path(path))
                if name not in configuration:
                    raise SchemaError(f"configuration is missing parameter {name!r}")
                return configuration[name]
            return {
                key: substitute(value, f"{path}.{key}" if path else str(key))
                for key, value in node.items()
            }
        if isinstance(node, list):
            return [substitute(value, f"{path}[{i}]") for i, value in enumerate(node)]
        return node

    return substitute(document, "")


class ConstrainedPrior(JointPrior):
    """Rejection-sampling wrapper enforcing feasibility constraints (Eq. 1's D).

    Parameters
    ----------
    base:
        The underlying joint prior (uninformative or transfer-learned).
    constraints:
        Constraints every returned configuration must satisfy.
    max_attempts:
        Upper bound on resampling rounds before giving up and returning the
        feasible configurations found so far (a safeguard against infeasible
        constraint systems).
    """

    def __init__(
        self,
        base: JointPrior,
        constraints: Sequence[Constraint],
        max_attempts: int = 50,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.base = base
        self.constraints = list(constraints)
        self.max_attempts = int(max_attempts)
        self.space = base.space

    @classmethod
    def uniform(cls, space: SearchSpace, constraints: Sequence[Constraint]) -> "ConstrainedPrior":
        """Constrained version of the space's default independent prior."""
        return cls(IndependentPrior(space), constraints)

    def feasible(self, configuration: Configuration) -> bool:
        """Whether a configuration satisfies every constraint."""
        return all(c.satisfied(configuration) for c in self.constraints)

    def violated(self, configuration: Configuration) -> List[str]:
        """Names of the constraints a configuration violates."""
        return [c.name for c in self.constraints if not c.satisfied(configuration)]

    def sample_configurations(self, n: int, rng: np.random.Generator) -> List[Configuration]:
        if n <= 0:
            return []
        accepted: List[Configuration] = []
        attempts = 0
        while len(accepted) < n and attempts < self.max_attempts:
            batch = self.base.sample_configurations(max(n - len(accepted), 4), rng)
            accepted.extend(c for c in batch if self.feasible(c))
            attempts += 1
        if not accepted:
            raise SchemaError(
                "could not draw any feasible configuration; the constraints may be "
                "unsatisfiable under the given prior"
            )
        # Top up with repeats of feasible samples if rejection was very harsh.
        while len(accepted) < n:
            accepted.append(dict(accepted[len(accepted) % max(1, len(accepted))]))
        return accepted[:n]
