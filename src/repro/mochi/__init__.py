"""Simulated Mochi software stack.

HEPnOS (the storage service autotuned in the paper) is built from the Mochi
components (Ross et al., JCST 2020).  This subpackage provides discrete-event
models of each component, faithful to the *performance-relevant* behaviour the
paper's parameters control:

* :mod:`repro.mochi.mercury` — Mercury: RPC and RDMA transfer cost model plus
  per-node network interface contention.
* :mod:`repro.mochi.argobots` — Argobots: execution streams and thread pools
  (``fifo``, ``fifo_wait``, ``prio_wait``) with kind-dependent dispatch
  overhead and CPU occupancy.
* :mod:`repro.mochi.margo` — Margo: binds Mercury and Argobots, models the
  network progress loop (dedicated progress thread or not, busy spinning or
  blocking ``epoll``).
* :mod:`repro.mochi.yokan` — Yokan: key/value databases with put/get/list
  cost models and per-database write serialisation.
* :mod:`repro.mochi.bedrock` — Bedrock: JSON service configuration and
  bootstrapping (validation + instantiation helpers).
"""

from repro.mochi.mercury import NetworkInterface, NetworkModel, TransferKind
from repro.mochi.argobots import Pool, PoolKind
from repro.mochi.margo import MargoEngine, ProgressMode
from repro.mochi.yokan import Database, DatabaseType, Provider, YokanCostModel
from repro.mochi.bedrock import (
    BedrockError,
    DatabaseConfig,
    MargoConfig,
    PoolConfig,
    ProviderConfig,
    ServiceConfig,
)

__all__ = [
    "BedrockError",
    "Database",
    "DatabaseConfig",
    "DatabaseType",
    "MargoConfig",
    "MargoEngine",
    "NetworkInterface",
    "NetworkModel",
    "Pool",
    "PoolConfig",
    "PoolKind",
    "ProgressMode",
    "Provider",
    "ProviderConfig",
    "ServiceConfig",
    "TransferKind",
    "YokanCostModel",
]
