"""Mercury: RPC / RDMA transfer model.

Mercury is Mochi's RPC and remote-direct-memory-access (RDMA) layer.  For the
purpose of autotuning, what matters is the *cost* of moving bytes and issuing
RPCs, and how those costs depend on the configuration parameters:

* small payloads travel "eagerly" inside the RPC message (per-message latency
  dominated),
* large payloads use RDMA pull/push (bandwidth dominated, cheaper per byte,
  controlled by the ``UseRDMA`` parameter of the PEP application),
* every RPC pays a progress cost on both sides that depends on the progress
  mode (busy spinning vs. blocking ``epoll``) — that part is modelled by
  :mod:`repro.mochi.margo`.

The per-node :class:`NetworkInterface` serialises transfers through a
capacity-limited resource so that many concurrent senders on one node contend
for injection bandwidth, which is what makes "more processes per node" a
non-trivial choice in the paper's parameter space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.sim import Environment, Resource

__all__ = ["TransferKind", "NetworkModel", "NetworkInterface"]


class TransferKind(str, Enum):
    """How a payload is moved."""

    #: Payload embedded in the RPC message (small messages).
    EAGER = "eager"
    #: Payload moved by RDMA after an RPC handshake (bulk transfers).
    RDMA = "rdma"


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth model of the interconnect (Cray Aries-like defaults).

    Attributes
    ----------
    latency:
        One-way message latency in seconds.
    bandwidth:
        Point-to-point bandwidth for eager (send/recv) payloads, bytes/s.
    rdma_bandwidth:
        Bandwidth achieved by RDMA bulk transfers, bytes/s.
    rdma_setup:
        Fixed handshake cost for registering/exposing a bulk region, seconds.
    eager_threshold:
        Payloads at or below this size are always sent eagerly, bytes.
    injection_bandwidth:
        Per-node injection bandwidth shared by all processes on the node,
        bytes/s (models NIC contention).
    """

    latency: float = 2.0e-6
    bandwidth: float = 6.0e9
    rdma_bandwidth: float = 10.0e9
    rdma_setup: float = 3.0e-6
    eager_threshold: int = 4 * 1024
    injection_bandwidth: float = 12.0e9

    def __post_init__(self) -> None:
        if min(self.latency, self.bandwidth, self.rdma_bandwidth, self.rdma_setup) < 0:
            raise ValueError("network model constants must be non-negative")
        if self.bandwidth <= 0 or self.rdma_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")

    # ------------------------------------------------------------------ costs
    def transfer_kind(self, size: int, use_rdma: bool) -> TransferKind:
        """Which mechanism a payload of ``size`` bytes uses."""
        if size <= self.eager_threshold or not use_rdma:
            return TransferKind.EAGER
        return TransferKind.RDMA

    def transfer_time(self, size: int, use_rdma: bool = True) -> float:
        """Wire time for moving ``size`` bytes one way.

        Parameters
        ----------
        size:
            Payload size in bytes (>= 0).
        use_rdma:
            Whether RDMA is allowed for large payloads (the paper's
            ``UseRDMA`` parameter).  When False, large payloads pay the
            (slower) eager bandwidth.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        kind = self.transfer_kind(size, use_rdma)
        if kind is TransferKind.RDMA:
            return self.latency + self.rdma_setup + size / self.rdma_bandwidth
        return self.latency + size / self.bandwidth

    def rpc_round_trip(self, request_size: int, response_size: int, use_rdma: bool = True) -> float:
        """Wire time of a full request/response exchange (no progress costs)."""
        return self.transfer_time(request_size, use_rdma) + self.transfer_time(
            response_size, use_rdma
        )


class NetworkInterface:
    """Per-node NIC: serialises concurrent transfers through injection bandwidth.

    Parameters
    ----------
    env:
        Simulation environment.
    model:
        The shared :class:`NetworkModel`.
    node_name:
        Label of the node owning this interface.
    channels:
        Number of transfers that can be injected concurrently at full speed.
        Additional concurrent transfers queue (a coarse model of NIC/HSN
        serialisation).
    """

    def __init__(
        self,
        env: Environment,
        model: NetworkModel,
        node_name: str = "",
        channels: int = 4,
    ):
        if channels < 1:
            raise ValueError("channels must be >= 1")
        self.env = env
        self.model = model
        self.node_name = node_name
        self._resource = Resource(env, capacity=channels, name=f"nic:{node_name}")
        self.bytes_sent = 0
        self.transfers = 0

    # ------------------------------------------------------------------ stats
    @property
    def queue_length(self) -> int:
        """Transfers currently waiting for an injection channel."""
        return self._resource.queue_length

    # -------------------------------------------------------------- processes
    def transfer(self, size: int, use_rdma: bool = True):
        """DES process generator: occupy one injection channel for the wire time.

        Yields
        ------
        Events driving the transfer; the generator returns the wire time.
        """
        wire = self.model.transfer_time(size, use_rdma)
        with self._resource.request() as req:
            yield req
            yield self.env.timeout(wire)
        self.bytes_sent += int(size)
        self.transfers += 1
        return wire

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<NetworkInterface {self.node_name!r} transfers={self.transfers}>"
