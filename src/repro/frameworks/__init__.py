"""Comparator autotuning frameworks (Section IV-D).

The paper compares its DeepHyper-based VAE-ABO implementation against two
state-of-the-art HPC autotuning frameworks with transfer-learning support,
plus plain random sampling.  All of them are re-implemented here to their
*published behaviour* (the properties the comparison depends on), behind a
common :class:`~repro.frameworks.base.Framework` interface:

* :class:`~repro.frameworks.random_search.RandomSearch` — the RAND baseline:
  uniform sampling, no model.
* :class:`~repro.frameworks.deephyper_like.DeepHyperSearch` — our asynchronous
  BO framework (RF surrogate, constant liar) with a configurable number of
  workers (DH1W / DH10W in Fig. 5) and optional VAE-ABO transfer learning.
* :class:`~repro.frameworks.gptune_like.GPTuneLike` — a two-phase sequential
  tuner: random sampling phase followed by a Gaussian-process modelling phase
  with expected-improvement selection; transfer learning pools the source
  task's evaluations into the GP (multitask-style).  Evaluations are strictly
  sequential (the published version could not parallelise its modelling
  phase).
* :class:`~repro.frameworks.hiperbot_like.HiPerBOtLike` — a sequential
  Tree-Parzen-Estimator BO; transfer learning mixes the source-data "good"
  density into the acquisition as a weighted prior, as described in the
  HiPerBOt paper.
"""

from repro.frameworks.base import Framework, FrameworkResult, run_framework_suite
from repro.frameworks.random_search import RandomSearch
from repro.frameworks.deephyper_like import DeepHyperSearch
from repro.frameworks.gptune_like import GPTuneLike
from repro.frameworks.hiperbot_like import HiPerBOtLike

__all__ = [
    "DeepHyperSearch",
    "Framework",
    "FrameworkResult",
    "GPTuneLike",
    "HiPerBOtLike",
    "RandomSearch",
    "run_framework_suite",
]
