"""Random search (the RAND baseline).

Uniform (or log-uniform, following each parameter's declared distribution)
sampling with no model.  It can run with any number of parallel workers: the
Fig. 4 experiments use it with 128 workers inside DeepHyper, the Fig. 5
comparison uses it sequentially.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.history import SearchHistory
from repro.core.objective import Objective
from repro.core.search import CBOSearch
from repro.core.space import Configuration, SearchSpace
from repro.frameworks.base import Framework, FrameworkResult

__all__ = ["RandomSearch"]


class RandomSearch(Framework):
    """Model-free random sampling.

    Parameters
    ----------
    num_workers:
        Number of parallel evaluation workers (1 = sequential).
    failure_duration:
        Worker time consumed by failed evaluations.
    """

    name = "RAND"

    def __init__(
        self,
        space: SearchSpace,
        run_function: Callable[[Configuration], float],
        num_workers: int = 1,
        failure_duration: float = 600.0,
        objective: Optional[Objective] = None,
        seed: int = 0,
    ):
        super().__init__(space, run_function, objective=objective, seed=seed)
        self.num_workers = int(num_workers)
        self.failure_duration = float(failure_duration)

    def build_search(self, source_history: Optional[SearchHistory] = None) -> CBOSearch:
        """The underlying random-sampling search (multi-campaign-runner hook).

        ``source_history`` is ignored — random search has no transfer mode.
        """
        return CBOSearch(
            self.space,
            self.run_function,
            num_workers=self.num_workers,
            surrogate="RAND",
            random_sampling=True,
            failure_duration=self.failure_duration,
            objective=self.objective,
            seed=self.seed,
        )

    def run(
        self,
        max_time: float,
        initial_configurations: Optional[Sequence[Configuration]] = None,
        source_history: Optional[SearchHistory] = None,
    ) -> FrameworkResult:
        """Run random sampling; ``source_history`` is ignored (no TL support)."""
        search = self.build_search()
        result = search.run(max_time=max_time, initial_configurations=initial_configurations)
        return FrameworkResult.from_history(
            self.name,
            result.history,
            search_time=max_time,
            worker_utilization=result.worker_utilization,
        )
