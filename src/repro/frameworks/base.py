"""Common interface of the compared autotuning frameworks.

Every framework is driven the same way in the Fig. 5 experiments:

* it receives the search space, the run function (the surrogate runtime model
  of the workflow in the paper's laptop experiment), a search-time budget and
  the *same* 10 initial random samples as every other framework;
* it may receive source data (a previous run's history) for transfer
  learning;
* it returns a :class:`FrameworkResult` with its history, from which the
  best-configuration, mean-best and number-of-evaluations metrics are
  computed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.history import SearchHistory
from repro.core.objective import Objective
from repro.core.space import Configuration, SearchSpace

__all__ = ["Framework", "FrameworkResult"]


@dataclass
class FrameworkResult:
    """Outcome of one framework run (a thin, framework-agnostic view)."""

    name: str
    history: SearchHistory
    best_configuration: Optional[Configuration]
    best_runtime: float
    num_evaluations: int
    worker_utilization: float
    search_time: float

    @classmethod
    def from_history(
        cls,
        name: str,
        history: SearchHistory,
        search_time: float,
        worker_utilization: float = float("nan"),
    ) -> "FrameworkResult":
        """Build a result from a completed history."""
        best = history.best()
        return cls(
            name=name,
            history=history,
            best_configuration=best.configuration if best else None,
            best_runtime=best.runtime if best else float("nan"),
            num_evaluations=len(history),
            worker_utilization=worker_utilization,
            search_time=search_time,
        )


class Framework(ABC):
    """Base class for the compared autotuning frameworks.

    Parameters
    ----------
    space:
        The search space.
    run_function:
        Configuration → run time in seconds (NaN on failure).
    objective:
        Objective transform (defaults to the paper's ``-log(runtime)``).
    seed:
        RNG seed.
    """

    #: Human-readable name used in figures (overridden by subclasses).
    name: str = "framework"

    def __init__(
        self,
        space: SearchSpace,
        run_function: Callable[[Configuration], float],
        objective: Optional[Objective] = None,
        seed: int = 0,
    ):
        self.space = space
        self.run_function = run_function
        self.objective = objective or Objective()
        self.seed = int(seed)

    @abstractmethod
    def run(
        self,
        max_time: float,
        initial_configurations: Optional[Sequence[Configuration]] = None,
        source_history: Optional[SearchHistory] = None,
    ) -> FrameworkResult:
        """Run the framework within ``max_time`` seconds of search time.

        Parameters
        ----------
        max_time:
            Search-time budget (1 hour in the paper's comparison).
        initial_configurations:
            The shared initial samples every framework starts from.
        source_history:
            Optional source-task data enabling the framework's transfer
            learning mode (ignored by frameworks without TL support).
        """
