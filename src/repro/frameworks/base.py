"""Common interface of the compared autotuning frameworks.

Every framework is driven the same way in the Fig. 5 experiments:

* it receives the search space, the run function (the surrogate runtime model
  of the workflow in the paper's laptop experiment), a search-time budget and
  the *same* 10 initial random samples as every other framework;
* it may receive source data (a previous run's history) for transfer
  learning;
* it returns a :class:`FrameworkResult` with its history, from which the
  best-configuration, mean-best and number-of-evaluations metrics are
  computed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.history import SearchHistory
from repro.core.objective import Objective
from repro.core.space import Configuration, SearchSpace

__all__ = ["Framework", "FrameworkResult", "run_framework_suite"]


@dataclass
class FrameworkResult:
    """Outcome of one framework run (a thin, framework-agnostic view)."""

    name: str
    history: SearchHistory
    best_configuration: Optional[Configuration]
    best_runtime: float
    num_evaluations: int
    worker_utilization: float
    search_time: float

    @classmethod
    def from_history(
        cls,
        name: str,
        history: SearchHistory,
        search_time: float,
        worker_utilization: float = float("nan"),
    ) -> "FrameworkResult":
        """Build a result from a completed history."""
        best = history.best()
        return cls(
            name=name,
            history=history,
            best_configuration=best.configuration if best else None,
            best_runtime=best.runtime if best else float("nan"),
            num_evaluations=len(history),
            worker_utilization=worker_utilization,
            search_time=search_time,
        )


class Framework(ABC):
    """Base class for the compared autotuning frameworks.

    Parameters
    ----------
    space:
        The search space.
    run_function:
        Configuration → run time in seconds (NaN on failure).
    objective:
        Objective transform (defaults to the paper's ``-log(runtime)``).
    seed:
        RNG seed.
    """

    #: Human-readable name used in figures (overridden by subclasses).
    name: str = "framework"

    def __init__(
        self,
        space: SearchSpace,
        run_function: Callable[[Configuration], float],
        objective: Optional[Objective] = None,
        seed: int = 0,
    ):
        self.space = space
        self.run_function = run_function
        self.objective = objective or Objective()
        self.seed = int(seed)

    @abstractmethod
    def run(
        self,
        max_time: float,
        initial_configurations: Optional[Sequence[Configuration]] = None,
        source_history: Optional[SearchHistory] = None,
    ) -> FrameworkResult:
        """Run the framework within ``max_time`` seconds of search time.

        Parameters
        ----------
        max_time:
            Search-time budget (1 hour in the paper's comparison).
        initial_configurations:
            The shared initial samples every framework starts from.
        source_history:
            Optional source-task data enabling the framework's transfer
            learning mode (ignored by frameworks without TL support).
        """

    # ------------------------------------------------------- runner awareness
    def build_search(self, source_history: Optional[SearchHistory] = None):
        """The framework's underlying asynchronous search, if it has one.

        Frameworks that are thin wrappers around
        :class:`~repro.core.search.CBOSearch` return a freshly configured
        search here so a multi-campaign driver
        (:func:`run_framework_suite` with ``runner="batched"``) can advance
        several frameworks over one batch-tick loop.  Sequential two-phase
        algorithms return ``None`` and always execute through :meth:`run`.
        """
        return None

    def result_name(self, source_history: Optional[SearchHistory] = None) -> str:
        """The label under which this framework's result is reported."""
        return self.name


def run_framework_suite(
    frameworks: Sequence[Framework],
    max_time: float,
    initial_configurations: Optional[Sequence[Configuration]] = None,
    source_history: Optional[SearchHistory] = None,
    runner: str = "sequential",
) -> Dict[str, FrameworkResult]:
    """Run several frameworks on the same budget and shared initial samples.

    With ``runner="batched"``, frameworks that expose an underlying
    asynchronous search (:meth:`Framework.build_search`) are advanced
    concurrently by a :class:`~repro.service.CampaignRunner` — their
    surrogate refits fuse into per-tick fleet fits — while the remaining
    frameworks run sequentially.  Note the batched mode interleaves the
    frameworks' run-function calls; with a stateful shared run function
    (e.g. one noisy surrogate-runtime instance) results then differ from the
    sequential mode, which is why it is opt-in.

    Returns ``result name → FrameworkResult`` in framework order.
    """
    if runner not in ("sequential", "batched"):
        raise ValueError(f"unknown runner {runner!r} (expected 'sequential' or 'batched')")
    batched: Dict[int, object] = {}
    if runner == "batched":
        from repro.service import CampaignRunner, CampaignSpec

        pairs = [(f, f.build_search(source_history)) for f in frameworks]
        backed = [(f, search) for f, search in pairs if search is not None]
        if len(backed) > 1:
            specs = [
                CampaignSpec(
                    search=search,
                    max_time=max_time,
                    initial_configurations=initial_configurations,
                    label=framework.result_name(source_history),
                )
                for framework, search in backed
            ]
            search_results = CampaignRunner(specs).run()
            batched = {
                id(framework): search_result
                for (framework, _), search_result in zip(backed, search_results)
            }
        elif backed:
            # A single search-backed framework: run the already-built search
            # directly (re-building through framework.run would repeat any
            # expensive construction, e.g. VAE transfer-prior training).
            framework, search = backed[0]
            batched = {
                id(framework): search.run(
                    max_time=max_time, initial_configurations=initial_configurations
                )
            }
    results: Dict[str, FrameworkResult] = {}
    for framework in frameworks:
        search_result = batched.get(id(framework))
        if search_result is not None:
            name = framework.result_name(source_history)
            results[name] = FrameworkResult.from_history(
                name,
                search_result.history,
                search_time=max_time,
                worker_utilization=search_result.worker_utilization,
            )
        else:
            result = framework.run(
                max_time,
                initial_configurations=initial_configurations,
                source_history=source_history,
            )
            results[result.name] = result
    return results
