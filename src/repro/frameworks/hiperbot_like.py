"""HiPerBOt-like autotuner: sequential TPE Bayesian optimization.

HiPerBOt (Menon, Bhatele, Gamblin, IPDPS'20) tunes HPC application parameters
with Bayesian optimization built on a Tree Parzen Estimator; categorical
parameters use histogram densities and continuous parameters kernel density
estimates.  Its transfer-learning mode uses the *source data density as a
prior probability* that is weighted and combined with the target densities
when selecting the next configuration.

Reproduced behavioural properties the comparison relies on:

* strictly sequential evaluations (no concurrent evaluation support);
* TPE acquisition: candidates are ranked by the density ratio
  ``l(x)/g(x)`` between the good and bad observation densities;
* transfer learning by mixing the source-task good-configuration density into
  the acquisition with a fixed weight (the source prior can mislead the
  search when source and target optima differ — the effect visible in
  Fig. 5 where TL-HIPERBOT underperforms);
* like the real tool, it cannot transfer across different parameter spaces.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.history import SearchHistory
from repro.core.objective import Objective
from repro.core.overhead import AnalyticOverheadModel
from repro.core.priors import IndependentPrior
from repro.core.space import CategoricalParameter, Configuration, SearchSpace
from repro.core.surrogate import TreeParzenEstimator
from repro.frameworks.base import Framework, FrameworkResult

__all__ = ["HiPerBOtLike"]


class HiPerBOtLike(Framework):
    """Sequential TPE BO with source-density-weighted transfer learning.

    Parameters
    ----------
    gamma:
        Fraction of observations treated as "good" by the TPE.
    num_candidates:
        Candidates scored per iteration.
    source_weight:
        Weight of the source-data density in the combined acquisition when
        transfer learning is enabled.
    failure_duration:
        Search time consumed by failed evaluations.
    """

    name = "HIPERBOT"

    def __init__(
        self,
        space: SearchSpace,
        run_function: Callable[[Configuration], float],
        gamma: float = 0.15,
        num_candidates: int = 512,
        source_weight: float = 0.5,
        failure_duration: float = 600.0,
        objective: Optional[Objective] = None,
        seed: int = 0,
    ):
        super().__init__(space, run_function, objective=objective, seed=seed)
        if not (0.0 <= source_weight <= 1.0):
            raise ValueError("source_weight must be in [0, 1]")
        self.gamma = float(gamma)
        self.num_candidates = int(num_candidates)
        self.source_weight = float(source_weight)
        self.failure_duration = float(failure_duration)
        self.overhead = AnalyticOverheadModel()

    # --------------------------------------------------------------------- run
    def run(
        self,
        max_time: float,
        initial_configurations: Optional[Sequence[Configuration]] = None,
        source_history: Optional[SearchHistory] = None,
    ) -> FrameworkResult:
        if source_history is not None and source_history.space.parameter_names != self.space.parameter_names:
            raise ValueError(
                "HiPerBOtLike transfer learning requires identical source and target "
                "parameter spaces"
            )
        rng = np.random.default_rng(self.seed)
        prior = IndependentPrior(self.space)
        history = SearchHistory(self.space, objective=self.objective)
        categorical_cols = [
            j
            for j, p in enumerate(self.space.parameters)
            if isinstance(p, CategoricalParameter)
        ]
        now = 0.0

        # Source-density model (fitted once, on the source history).
        source_tpe: Optional[TreeParzenEstimator] = None
        if source_history is not None:
            ok = source_history.successful()
            if len(ok) >= 4:
                source_tpe = TreeParzenEstimator(
                    gamma=self.gamma, categorical_columns=categorical_cols
                )
                source_tpe.fit(
                    self.space.to_numeric_array([ev.configuration for ev in ok]),
                    np.asarray([ev.objective for ev in ok]),
                )

        # ------------------------------------------------------ initial samples
        pending: List[Configuration] = list(initial_configurations or [])
        if not pending:
            pending = prior.sample_configurations(10, rng)
        for config in pending:
            if now >= max_time:
                break
            now = self._evaluate(config, now, history)

        # --------------------------------------------------------- TPE BO loop
        target_tpe = TreeParzenEstimator(gamma=self.gamma, categorical_columns=categorical_cols)
        while now < max_time:
            ok = history.successful()
            if len(ok) < 4:
                config = prior.sample_configurations(1, rng)[0]
                now = self._evaluate(config, now, history)
                continue
            X = self.space.to_numeric_array([ev.configuration for ev in ok])
            y = np.asarray([ev.objective for ev in ok])
            target_tpe.fit(X, y)
            now += self.overhead.constant + self.overhead.tpe_per_point * len(ok)
            if now >= max_time:
                break

            candidates = self.space.sample(self.num_candidates, rng, prior=prior)
            C = self.space.to_numeric_array(candidates)
            score = target_tpe.score(C)
            if source_tpe is not None:
                score = (1.0 - self.source_weight) * score + self.source_weight * source_tpe.score(C)
            config = candidates[int(np.argmax(score))]
            now = self._evaluate(config, now, history)

        return FrameworkResult.from_history(
            self.name if source_history is None else f"TL-{self.name}",
            history,
            search_time=max_time,
        )

    # ----------------------------------------------------------------- helpers
    def _evaluate(self, config: Configuration, now: float, history: SearchHistory) -> float:
        runtime = float(self.run_function(config))
        duration = runtime if math.isfinite(runtime) and runtime > 0 else self.failure_duration
        completed = now + duration
        history.record(config, runtime=runtime, submitted=now, completed=completed)
        return completed
