"""The DeepHyper-based framework of the paper (this work's own method).

A thin wrapper around :class:`~repro.core.search.CBOSearch` /
:class:`~repro.core.search.VAEABOSearch` exposing the :class:`Framework`
interface used by the Fig. 5 comparison.  The number of workers is
configurable — the paper reports DH1W (one worker, for a fair sequential
comparison with GPtune/HiPerBOt) and DH10W (ten workers, showing the benefit
of asynchronous parallel evaluation even during modelling).  Transfer
learning, when a source history is supplied, is the VAE-ABO informative prior.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

from repro.core.history import SearchHistory
from repro.core.objective import Objective
from repro.core.search import VAEABOSearch
from repro.core.space import Configuration, SearchSpace
from repro.core.surrogate.base import Surrogate
from repro.frameworks.base import Framework, FrameworkResult

__all__ = ["DeepHyperSearch"]


class DeepHyperSearch(Framework):
    """Asynchronous BO with RF surrogate and optional VAE-ABO transfer learning.

    Parameters
    ----------
    num_workers:
        Number of parallel evaluation workers (1 → "DH1W", 10 → "DH10W").
    surrogate:
        Surrogate model or name ("RF" default, "GP", "RAND").
    quantile:
        Top-q fraction used when transfer learning is enabled.
    failure_duration:
        Worker time consumed by failed evaluations.
    refit_interval:
        Minimum number of new evaluations between surrogate refits (wall-clock
        optimisation of the reproduction; the charged search-time overhead is
        unchanged).
    """

    def __init__(
        self,
        space: SearchSpace,
        run_function: Callable[[Configuration], float],
        num_workers: int = 10,
        surrogate: Union[str, Surrogate] = "RF",
        quantile: float = 0.10,
        vae_epochs: int = 300,
        failure_duration: float = 600.0,
        refit_interval: int = 1,
        objective: Optional[Objective] = None,
        seed: int = 0,
    ):
        super().__init__(space, run_function, objective=objective, seed=seed)
        self.num_workers = int(num_workers)
        self.surrogate = surrogate
        self.quantile = float(quantile)
        self.vae_epochs = int(vae_epochs)
        self.failure_duration = float(failure_duration)
        self.refit_interval = int(refit_interval)
        self.name = f"DH{self.num_workers}W"

    def build_search(self, source_history: Optional[SearchHistory] = None) -> VAEABOSearch:
        """The underlying asynchronous search (multi-campaign-runner hook)."""
        return VAEABOSearch(
            self.space,
            self.run_function,
            source_history=source_history,
            quantile=self.quantile,
            vae_epochs=self.vae_epochs,
            num_workers=self.num_workers,
            surrogate=self.surrogate,
            failure_duration=self.failure_duration,
            refit_interval=self.refit_interval,
            objective=self.objective,
            seed=self.seed,
        )

    def result_name(self, source_history: Optional[SearchHistory] = None) -> str:
        return self.name if source_history is None else f"TL-{self.name}"

    def run(
        self,
        max_time: float,
        initial_configurations: Optional[Sequence[Configuration]] = None,
        source_history: Optional[SearchHistory] = None,
    ) -> FrameworkResult:
        """Run the asynchronous search, with VAE-ABO TL if a source is given."""
        search = self.build_search(source_history)
        result = search.run(max_time=max_time, initial_configurations=initial_configurations)
        return FrameworkResult.from_history(
            self.result_name(source_history),
            result.history,
            search_time=max_time,
            worker_utilization=result.worker_utilization,
        )
