"""GPtune-like autotuner: sequential two-phase Gaussian-process tuning.

GPtune (Liu et al., PPoPP'21) tunes exascale applications with multitask
Gaussian processes.  The properties the paper's comparison relies on, and
which are reproduced here, are:

* **two phases** — a *sampling phase* that evaluates randomly drawn
  configurations, followed by a *modelling phase* that fits a GP and picks the
  next configuration by maximising expected improvement over a sampled
  candidate set;
* **strictly sequential evaluations** — the published version could not
  evaluate configurations in parallel (and the GP modelling phase is
  inherently sequential), so with expensive evaluations the number of
  configurations explored in a fixed budget is small;
* **GP update cost** — charged in search time, growing as :math:`O(n^3)`;
* **transfer learning by multitask data pooling** — evaluations of the source
  task are added to the GP's training data (with a task-indicator column),
  which approximates GPtune's multitask LCM kernel well enough for the
  behavioural comparison;
* **identical parameter spaces required** — like the real package, transfer
  is only possible when the source space equals the target space (checked at
  run time).
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.acquisition import expected_improvement
from repro.core.history import SearchHistory
from repro.core.objective import Objective
from repro.core.overhead import AnalyticOverheadModel
from repro.core.priors import IndependentPrior
from repro.core.space import Configuration, SearchSpace
from repro.core.surrogate import GaussianProcessSurrogate
from repro.frameworks.base import Framework, FrameworkResult

__all__ = ["GPTuneLike"]


class GPTuneLike(Framework):
    """Sequential two-phase GP autotuner with multitask-style transfer learning.

    Parameters
    ----------
    num_sampling:
        Number of configurations evaluated in the random sampling phase (the
        shared initial samples count toward this).
    num_candidates:
        Candidates scored by expected improvement in each modelling step.
    failure_duration:
        Search time consumed by failed evaluations.
    """

    name = "GPTUNE"

    def __init__(
        self,
        space: SearchSpace,
        run_function: Callable[[Configuration], float],
        num_sampling: int = 10,
        num_candidates: int = 512,
        failure_duration: float = 600.0,
        objective: Optional[Objective] = None,
        seed: int = 0,
    ):
        super().__init__(space, run_function, objective=objective, seed=seed)
        self.num_sampling = int(num_sampling)
        self.num_candidates = int(num_candidates)
        self.failure_duration = float(failure_duration)
        self.overhead = AnalyticOverheadModel()

    # --------------------------------------------------------------------- run
    def run(
        self,
        max_time: float,
        initial_configurations: Optional[Sequence[Configuration]] = None,
        source_history: Optional[SearchHistory] = None,
    ) -> FrameworkResult:
        if source_history is not None and source_history.space.parameter_names != self.space.parameter_names:
            raise ValueError(
                "GPTuneLike transfer learning requires identical source and target "
                "parameter spaces (a limitation of the real package the paper works around)"
            )
        rng = np.random.default_rng(self.seed)
        prior = IndependentPrior(self.space)
        history = SearchHistory(self.space, objective=self.objective)
        now = 0.0

        # Source-task data pooled into the GP (with a task indicator column).
        source_X: Optional[np.ndarray] = None
        source_y: Optional[np.ndarray] = None
        if source_history is not None:
            ok = source_history.successful()
            if ok:
                source_X = self.space.to_one_hot_array([ev.configuration for ev in ok])
                source_y = np.asarray(
                    [self.objective.fill_failure(ev.objective) for ev in ok]
                )

        # ------------------------------------------------------ sampling phase
        pending: List[Configuration] = list(initial_configurations or [])
        while len(pending) < self.num_sampling:
            pending.extend(prior.sample_configurations(1, rng))
        for config in pending[: self.num_sampling]:
            if now >= max_time:
                break
            now = self._evaluate(config, now, history)

        # ------------------------------------------------------ modelling phase
        gp = GaussianProcessSurrogate()
        while now < max_time:
            ok = history.successful()
            if len(ok) < 2:
                config = prior.sample_configurations(1, rng)[0]
                now = self._evaluate(config, now, history)
                continue
            X = self.space.to_one_hot_array([ev.configuration for ev in ok])
            y = np.asarray([ev.objective for ev in ok])
            task_col = np.ones((X.shape[0], 1))
            if source_X is not None:
                X = np.vstack([X, source_X])
                y = np.concatenate([y, source_y])
                task_col = np.vstack([task_col, np.zeros((source_X.shape[0], 1))])
            X = np.hstack([X, task_col])
            gp.fit(X, y)
            # Charge the GP update to the (sequential) search clock.
            now += self.overhead.constant + self.overhead.gp_cubic * float(X.shape[0]) ** 3
            if now >= max_time:
                break

            candidates = self.space.sample(self.num_candidates, rng, prior=prior)
            C = np.hstack(
                [
                    self.space.to_one_hot_array(candidates),
                    np.ones((len(candidates), 1)),
                ]
            )
            mean, std = gp.predict(C)
            best = float(np.max(y[: len(ok)])) if len(ok) else 0.0
            ei = expected_improvement(mean, std, best)
            config = candidates[int(np.argmax(ei))]
            now = self._evaluate(config, now, history)

        return FrameworkResult.from_history(
            self.name if source_history is None else f"TL-{self.name}",
            history,
            search_time=max_time,
        )

    # ----------------------------------------------------------------- helpers
    def _evaluate(self, config: Configuration, now: float, history: SearchHistory) -> float:
        runtime = float(self.run_function(config))
        duration = runtime if math.isfinite(runtime) and runtime > 0 else self.failure_duration
        completed = now + duration
        history.record(config, runtime=runtime, submitted=now, completed=completed)
        return completed
