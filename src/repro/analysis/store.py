"""Catalog of journaled campaigns: cold-start analysis over a store root.

A long-running tuning service leaves behind one campaign-journal sidecar
directory per study (``root/<name>/`` — the layout
:class:`~repro.service.registry.CampaignRegistry` writes).  After thousands
of campaigns that root *is* the experimental corpus: the paper's Fig. 3
transfer tables and Fig. 4/5 comparisons are aggregations over exactly such
repeated campaigns, and related systems (STELLAR's mining of accumulated
tuning runs, DIAL's lightweight local metric reads) treat the stored-trial
corpus as a first-class, cheaply-queryable asset.

:class:`CampaignStore` makes it one here.  The directory scan is lazy (first
use, re-run with :meth:`CampaignStore.rescan`), every campaign is served
through the LRU-bounded memory-mapped reader cache
(:func:`repro.core.journal.open_journal_reader`), and the histories handed
out are read-only zero-copy views over the journals' column files — so a
cold process can sweep thousands of stored campaigns into
:func:`~repro.analysis.figures.fig3_table`/metric aggregations without
parsing a byte of CSV and without holding more than the cache bound's worth
of mappings alive.  :meth:`CampaignStore.peek` summarises a campaign without
even constructing its history (objective/runtime columns only).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.core.history import SearchHistory
from repro.core.journal import CampaignJournal, JournalReader, open_journal_reader
from repro.core.objective import Objective
from repro.core.space import SearchSpace
from repro.analysis.campaign import CampaignResult, result_from_history

__all__ = ["CampaignStore"]


class CampaignStore:
    """Lazily scanned catalog of the journaled campaigns under one root.

    Parameters
    ----------
    root:
        Directory whose immediate subdirectories are campaign journals
        (the registry's journal root, or a directory written by
        ``save_campaign(..., format="journal")``).  Non-journal children are
        ignored; a missing root reads as empty.
    space:
        The search space the stored campaigns share (validated against each
        journal's fingerprint on open).
    objective:
        Optional objective transform attached to the loaded histories.
    """

    def __init__(
        self,
        root: Union[str, Path],
        space: SearchSpace,
        objective: Optional[Objective] = None,
    ):
        self.root = Path(root)
        self.space = space
        self.objective = objective
        self._names: Optional[List[str]] = None

    # ------------------------------------------------------------------- scan
    def names(self) -> List[str]:
        """Sorted names of the journaled campaigns (scanned lazily, cached)."""
        if self._names is None:
            if self.root.is_dir():
                self._names = sorted(
                    child.name
                    for child in self.root.iterdir()
                    if child.is_dir() and CampaignJournal.exists(child)
                )
            else:
                self._names = []
        return list(self._names)

    def rescan(self) -> List[str]:
        """Drop the cached directory listing and re-scan the root."""
        self._names = None
        return self.names()

    def __len__(self) -> int:
        return len(self.names())

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __contains__(self, name: object) -> bool:
        return name in self.names()

    def directory(self, name: str) -> Path:
        """The journal directory of one stored campaign."""
        if name not in self.names():
            raise KeyError(f"no journaled campaign {name!r} under {self.root}")
        return self.root / name

    # ------------------------------------------------------------------ access
    def reader(self, name: str) -> JournalReader:
        """The (cached) memory-mapped reader of one stored campaign."""
        return open_journal_reader(
            self.directory(name), self.space, objective=self.objective
        )

    def history(self, name: str) -> SearchHistory:
        """One campaign's history as a read-only zero-copy view."""
        return self.reader(name).history()

    def histories(self, names: Optional[Sequence[str]] = None) -> List[SearchHistory]:
        """The histories of ``names`` (default: every stored campaign)."""
        return [self.history(name) for name in (self.names() if names is None else names)]

    def meta(self, name: str) -> Dict:
        """One campaign's journal meta record (fingerprint + campaign fields)."""
        return CampaignJournal.read_meta(self.directory(name))

    def peek(self, name: str) -> Dict:
        """Cheap status summary without constructing the history.

        Maps only the objective/runtime columns — see
        :meth:`repro.core.journal.JournalReader.peek`.
        """
        return JournalReader.peek(self.directory(name))

    def summary(self) -> List[Dict]:
        """:meth:`peek` of every stored campaign, with names attached."""
        rows = []
        for name in self.names():
            row = {"name": name}
            row.update(self.peek(name))
            rows.append(row)
        return rows

    # ----------------------------------------------------------- aggregation
    def campaign_result(
        self,
        names: Sequence[str],
        label: Optional[str] = None,
        setup: Optional[str] = None,
    ) -> CampaignResult:
        """Assemble stored campaigns into one :class:`CampaignResult`.

        Each name becomes one repetition; campaign-level fields default to
        the first journal's meta record (``label``/``setup``/``max_time``/
        ``num_workers``), matching how the figure tables group repeated runs.
        """
        if not names:
            raise ValueError("campaign_result needs at least one stored campaign")
        metas = [self.meta(name) for name in names]
        first = metas[0]
        max_time = float(first.get("max_time") or 0.0)
        num_workers = int(first.get("num_workers") or 1)
        campaign = CampaignResult(
            label=str(label if label is not None else (first.get("label") or names[0])),
            setup=str(setup if setup is not None else (first.get("setup") or "")),
            max_time=max_time,
            num_workers=num_workers,
        )
        for name, meta in zip(names, metas):
            reader = self.reader(name)
            recorded = meta.get("worker_utilization")
            campaign.results.append(
                result_from_history(
                    reader.history(),
                    max_time=float(meta.get("max_time") or max_time),
                    num_workers=int(meta.get("num_workers") or num_workers),
                    busy_intervals=reader.intervals(),
                    worker_utilization=None if recorded is None else float(recorded),
                )
            )
        return campaign

    def grouped(
        self,
        setup_key: str = "setup",
        label_key: str = "label",
    ) -> Dict[str, Dict[str, CampaignResult]]:
        """Stored campaigns grouped into ``setup → label → CampaignResult``.

        The mapping is exactly the shape
        :func:`~repro.analysis.figures.fig3_table` /
        :func:`~repro.analysis.figures.fig4_table` consume, so a figure over
        the whole store is ``fig3_table(store.grouped())`` — served entirely
        off the memory-mapped columns.  Campaigns whose meta lacks the group
        keys fall back to an empty setup and their directory name as label
        (each such campaign is its own single-repetition group).
        """
        groups: Dict[str, Dict[str, List[str]]] = {}
        for name in self.names():
            meta = self.meta(name)
            setup = str(meta.get(setup_key) or "")
            label = str(meta.get(label_key) or name)
            groups.setdefault(setup, {}).setdefault(label, []).append(name)
        return {
            setup: {
                label: self.campaign_result(members, label=label, setup=setup)
                for label, members in labels.items()
            }
            for setup, labels in groups.items()
        }
